//! Vision-transformer workloads: patch-grid tokens with spatial
//! redundancy.
//!
//! The paper's introduction motivates attention in computer vision as well
//! as NLP; the redundancy CTA exploits appears there as *uniform image
//! regions* — sky, walls, out-of-focus background — whose patches embed to
//! near-identical tokens. This generator produces ViT-style token
//! matrices with a segmentation-like structure: the patch grid is divided
//! into blocky regions (one feature vector per region), every patch takes
//! its region's vector plus tiny jitter, and a detail fraction of patches
//! (object boundaries, texture) gets unique features. Higher `smoothness`
//! means fewer, larger regions and fewer detail patches — and therefore a
//! more compressible sequence.

use cta_tensor::{Matrix, MatrixRng};

/// A ViT-like workload descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisionCase {
    /// Patch grid side; the sequence length is `grid²` (ViT-Base at 224²
    /// with 16-pixel patches gives a 14×14 grid = 196 tokens).
    pub grid: usize,
    /// Per-head token dimension (64, the hardware's SA height).
    pub head_dim: usize,
    /// How uniform the image is, in `(0, 1)`: controls both the region
    /// count (`≈ grid·(1 − smoothness)` per side) and the fraction of
    /// unique detail patches. 0.9 ≈ mostly-smooth photographs, 0.5 ≈
    /// high-detail texture.
    pub smoothness: f32,
}

impl VisionCase {
    /// ViT-Base-like: 14×14 patches, 64-dim heads, photographic
    /// smoothness.
    pub fn vit_base() -> Self {
        Self { grid: 14, head_dim: 64, smoothness: 0.85 }
    }

    /// Sequence length `grid²`.
    pub fn seq_len(&self) -> usize {
        self.grid * self.grid
    }
}

/// Generates one per-head patch-token matrix (`grid² × head_dim`).
///
/// Deterministic in `(case, seed)`.
///
/// # Panics
///
/// Panics if `grid < 2`, `head_dim == 0`, or `smoothness` is outside
/// `(0, 1)`.
pub fn generate_patch_tokens(case: &VisionCase, seed: u64) -> Matrix {
    assert!(case.grid >= 2, "patch grid must be at least 2x2");
    assert!(case.head_dim > 0, "head_dim must be positive");
    assert!(case.smoothness > 0.0 && case.smoothness < 1.0, "smoothness must be in (0, 1)");
    let g = case.grid;
    let d = case.head_dim;
    let mut rng = MatrixRng::new(seed);

    // Blocky region grid: smoother images have fewer, larger regions.
    let regions_per_side = ((g as f32 * (1.0 - case.smoothness)).round() as usize).clamp(2, g);
    let region_features = rng.normal_matrix(regions_per_side * regions_per_side, d, 0.0, 2.0);

    // Each patch inherits its region's feature plus tiny within-region
    // jitter (sensor noise, sub-patch variation).
    let mut tokens = Matrix::zeros(g * g, d);
    for y in 0..g {
        for x in 0..g {
            let ry = y * regions_per_side / g;
            let rx = x * regions_per_side / g;
            let feature = region_features.row(ry * regions_per_side + rx);
            tokens.row_mut(y * g + x).copy_from_slice(feature);
        }
    }
    let jitter = rng.normal_matrix(g * g, d, 0.0, 0.05);
    tokens.add_assign(&jitter);

    // Detail patches (boundaries, texture) get unique features.
    let detail_count = ((1.0 - case.smoothness) * (g * g) as f32 * 0.5).round() as usize;
    for _ in 0..detail_count {
        let pos = rng.index(g * g);
        let unique = rng.normal_matrix(1, d, 0.0, 2.0);
        tokens.row_mut(pos).copy_from_slice(unique.row(0));
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_lsh::{compress, LshFamily, LshParams};

    #[test]
    fn shape_and_determinism() {
        let case = VisionCase::vit_base();
        let a = generate_patch_tokens(&case, 3);
        let b = generate_patch_tokens(&case, 3);
        assert_eq!(a.shape(), (196, 64));
        assert_eq!(a, b);
    }

    #[test]
    fn neighbouring_patches_are_similar() {
        let case = VisionCase { smoothness: 0.9, ..VisionCase::vit_base() };
        let t = generate_patch_tokens(&case, 5);
        let g = case.grid;
        // Mean distance to the right neighbour vs to a far patch.
        let mut near = 0.0f64;
        let mut far = 0.0f64;
        let mut count = 0usize;
        for y in 0..g {
            for x in 0..g - 1 {
                let a = t.row(y * g + x);
                let b = t.row(y * g + x + 1);
                let c = t.row((g - 1 - y) * g + (g - 1 - x));
                near += dist(a, b);
                far += dist(a, c);
                count += 1;
            }
        }
        assert!(near / count as f64 * 2.0 < far / count as f64, "near {near} far {far}");
    }

    #[test]
    fn smoother_images_compress_better() {
        let fam = LshFamily::sample(64, LshParams::with_paper_length(6.0), 7);
        let smooth =
            generate_patch_tokens(&VisionCase { smoothness: 0.92, ..VisionCase::vit_base() }, 9);
        let detailed =
            generate_patch_tokens(&VisionCase { smoothness: 0.4, ..VisionCase::vit_base() }, 9);
        let k_smooth = compress(&smooth, &fam).k();
        let k_detail = compress(&detailed, &fam).k();
        assert!(k_smooth < k_detail, "smooth k={k_smooth}, detailed k={k_detail}");
    }

    #[test]
    fn tokens_fit_the_token_format() {
        let t = generate_patch_tokens(&VisionCase::vit_base(), 11);
        assert!(t.max_abs() < 31.0);
    }

    #[test]
    #[should_panic(expected = "smoothness")]
    fn out_of_range_smoothness_rejected() {
        let _ = generate_patch_tokens(&VisionCase { smoothness: 1.0, ..VisionCase::vit_base() }, 1);
    }

    fn dist(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt()
    }
}
