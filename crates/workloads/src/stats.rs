//! Workload diagnostics: does a generated sequence actually have the
//! redundancy structure its dataset spec promises?
//!
//! The entire CTA premise rests on the workload statistics, so the
//! generator is *validated*, not trusted: [`workload_stats`] measures the
//! achieved repetition fraction and near-neighbour geometry of a token
//! matrix, and tests (plus the `workload_validation` harness checks)
//! compare it against the configured [`DatasetSpec`] redundancy.

use cta_tensor::{Matrix, Summary};

/// Measured geometry of one token sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Fraction of tokens whose nearest *earlier* token lies within
    /// `epsilon` (relative, see [`workload_stats`]) — the measured
    /// repetition rate.
    pub measured_redundancy: f64,
    /// Mean distance from each token to its nearest earlier token,
    /// normalised by the mean token norm.
    pub mean_nearest_relative: f64,
    /// Summary of token L2 norms (scale sanity: must sit inside the Q6.7
    /// representable range).
    pub norm_summary: Summary,
}

/// Measures the repetition structure of `tokens`.
///
/// A token counts as a *repetition* when its nearest earlier token is
/// within `epsilon` × (mean token norm) — i.e. the repeats the CTA paper's
/// motivation describes, at a scale-free threshold.
///
/// # Panics
///
/// Panics if `tokens` is empty or `epsilon <= 0`.
pub fn workload_stats(tokens: &Matrix, epsilon: f32) -> WorkloadStats {
    assert!(tokens.rows() > 0, "at least one token");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = tokens.rows();

    let norms: Vec<f64> = (0..n)
        .map(|t| tokens.row(t).iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt())
        .collect();
    let mean_norm = norms.iter().sum::<f64>() / n as f64;
    let threshold = epsilon as f64 * mean_norm.max(1e-12);

    let mut repeats = 0usize;
    let mut nearest_sum = 0.0f64;
    let mut measured = 0usize;
    for t in 1..n {
        let mut best = f64::INFINITY;
        for s in 0..t {
            let d: f64 = tokens
                .row(t)
                .iter()
                .zip(tokens.row(s))
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            best = best.min(d);
        }
        if best < threshold {
            repeats += 1;
        }
        nearest_sum += best / mean_norm.max(1e-12);
        measured += 1;
    }

    WorkloadStats {
        measured_redundancy: repeats as f64 / measured.max(1) as f64,
        mean_nearest_relative: nearest_sum / measured.max(1) as f64,
        norm_summary: Summary::of(&norms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bert_large, generate_tokens, imdb, wikitext2, DatasetSpec};

    /// The scale-free repetition threshold used to validate the generator:
    /// a near-duplicate is within 10% of the mean token norm.
    const EPS: f32 = 0.10;

    #[test]
    fn generator_hits_configured_redundancy_ordering() {
        let model = bert_large();
        let high = generate_tokens(&model, &imdb().with_seq_len(256), 256, 3); // 0.80
        let low_spec = DatasetSpec { redundancy: 0.35, ..wikitext2() }.with_seq_len(256);
        let low = generate_tokens(&model, &low_spec, 256, 3);
        let sh = workload_stats(&high, EPS);
        let sl = workload_stats(&low, EPS);
        assert!(
            sh.measured_redundancy > sl.measured_redundancy + 0.1,
            "high {:.2} vs low {:.2}",
            sh.measured_redundancy,
            sl.measured_redundancy
        );
    }

    #[test]
    fn measured_redundancy_is_in_the_motivating_regime() {
        // Paper §II-B: "over half of the relations are redundant" at these
        // lengths — the generated sequences must put a substantial
        // fraction of tokens near an earlier one.
        let model = bert_large();
        let tokens = generate_tokens(&model, &imdb(), 512, 7);
        let s = workload_stats(&tokens, EPS);
        assert!(s.measured_redundancy > 0.5, "measured {:.2}", s.measured_redundancy);
    }

    #[test]
    fn all_identical_tokens_are_fully_redundant() {
        let tokens = Matrix::filled(20, 8, 1.0);
        let s = workload_stats(&tokens, EPS);
        assert_eq!(s.measured_redundancy, 1.0);
        assert!(s.mean_nearest_relative < 1e-9);
    }

    #[test]
    fn orthogonal_tokens_have_zero_redundancy() {
        let tokens = Matrix::identity(12).scale(10.0);
        let s = workload_stats(&tokens, EPS);
        assert_eq!(s.measured_redundancy, 0.0);
        assert!(s.mean_nearest_relative > 1.0);
    }

    #[test]
    fn norms_stay_inside_the_token_format() {
        let model = bert_large();
        let tokens = generate_tokens(&model, &imdb(), 512, 9);
        let s = workload_stats(&tokens, EPS);
        // Per-element |x| < 32 implies norm < 32·8 = 256 for d = 64; the
        // realistic check is that norms are far from the format cliff.
        assert!(s.norm_summary.max < 200.0, "max norm {}", s.norm_summary.max);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = workload_stats(&Matrix::zeros(2, 2), 0.0);
    }
}
