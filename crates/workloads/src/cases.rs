//! The evaluation test cases: the 10 model×dataset combinations of paper
//! Fig. 11.

use cta_attention::AttentionDims;

use crate::{
    albert_large, bert_large, gpt2_large, imdb, roberta_large, squad11, squad20, wikitext2,
    DatasetSpec, ModelSpec,
};

/// One model×dataset evaluation combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestCase {
    /// The evaluated model.
    pub model: ModelSpec,
    /// The evaluation dataset.
    pub dataset: DatasetSpec,
}

impl TestCase {
    /// Creates a test case.
    pub fn new(model: ModelSpec, dataset: DatasetSpec) -> Self {
        Self { model, dataset }
    }

    /// A human-readable name, e.g. `"BERT-large/SQuAD1.1"`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.model.name, self.dataset.name)
    }

    /// Per-head self-attention dimensions at the dataset's sequence
    /// length. The accelerator operates per head, so `token_dim =
    /// head_dim` (the paper's hardware assumption, §IV-C).
    pub fn dims(&self) -> AttentionDims {
        AttentionDims::self_attention(
            self.dataset.seq_len,
            self.model.head_dim,
            self.model.head_dim,
        )
    }

    /// A deterministic per-case seed for workload generation.
    pub fn seed(&self) -> u64 {
        // FNV-1a over the case name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The paper's 10 test cases (Fig. 11): the three discriminative models on
/// SQuAD 1.1 / SQuAD 2.0 / IMDB, plus GPT-2-large on WikiText-2.
pub fn paper_cases() -> Vec<TestCase> {
    let mut cases = Vec::with_capacity(10);
    for model in [bert_large(), roberta_large(), albert_large()] {
        for dataset in [squad11(), squad20(), imdb()] {
            cases.push(TestCase::new(model, dataset));
        }
    }
    cases.push(TestCase::new(gpt2_large(), wikitext2()));
    cases
}

/// A scaled-down case for fast unit tests: 64-token sequences, 16-dim
/// heads, SQuAD-like statistics.
pub fn mini_case() -> TestCase {
    let model = ModelSpec { head_dim: 16, ..bert_large() };
    let dataset = squad11().with_seq_len(64);
    TestCase::new(model, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_ten_cases() {
        let cases = paper_cases();
        assert_eq!(cases.len(), 10);
        assert_eq!(cases.iter().filter(|c| c.model.name == "GPT-2-large").count(), 1);
        assert_eq!(cases.iter().filter(|c| c.dataset.name == "IMDB").count(), 3);
    }

    #[test]
    fn names_are_unique() {
        let cases = paper_cases();
        let mut names: Vec<String> = cases.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let cases = paper_cases();
        let seeds: Vec<u64> = cases.iter().map(|c| c.seed()).collect();
        let mut unique = seeds.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(cases[0].seed(), paper_cases()[0].seed());
    }

    #[test]
    fn dims_reflect_dataset_length() {
        let case = TestCase::new(bert_large(), imdb());
        let dims = case.dims();
        assert_eq!(dims.num_keys, 512);
        assert_eq!(dims.head_dim, 64);
        assert_eq!(dims.token_dim, 64);
    }

    #[test]
    fn mini_case_is_small() {
        let c = mini_case();
        assert!(c.dataset.seq_len <= 64 && c.model.head_dim <= 16);
    }
}
