//! The clustered synthetic token generator.
//!
//! Per-head token matrices are drawn from a mixture model that reproduces
//! the property the CTA paper exploits (§II-B): attention-layer token
//! representations contain large numbers of *semantic feature repetitions*
//! — synonyms and recurring expressions map to nearly identical per-head
//! features. A sequence is generated as:
//!
//! 1. sample a few **topic** vectors, then `c` cluster centers around the
//!    topics with per-center spreads drawn from a range — this gives a
//!    *continuum* of pairwise center distances (some features are close
//!    paraphrases, some unrelated), so compression aggressiveness trades
//!    off smoothly against accuracy instead of falling off a cliff;
//! 2. assign each position a center with a Zipf-skewed distribution
//!    (frequent features recur more often, as word frequencies do);
//! 3. emit `center + jitter` where the jitter is small relative to center
//!    separation — repeated features are *near*-duplicates, which is what
//!    makes merging them nearly lossless;
//! 4. replace an `outlier_fraction` of positions with unclustered draws
//!    (rare words that cluster with nothing).

use cta_tensor::{Matrix, MatrixRng};

use crate::{DatasetSpec, ModelSpec, TestCase};

/// Spread of the topic/center distribution; together with the 13-bit Q6.7
/// token format (range ±32) this keeps generated tokens representable.
const CENTER_STD: f32 = 2.0;

/// Upper end of the per-token jitter range as a fraction of
/// [`CENTER_STD`], scaled by the model's `noise_scale`. Repetitions range
/// from exact duplicates (tiny jitter) to loose paraphrases (large
/// jitter), log-uniformly — so compression aggressiveness trades off
/// *smoothly* against accuracy as wider buckets absorb looser paraphrases.
const JITTER_MAX: f32 = 1.2;

/// Lower end of the per-token jitter range relative to [`JITTER_MAX`].
const JITTER_RANGE: f32 = 0.02;

/// Generates one per-head token matrix (`seq_len × head_dim`) for a
/// model/dataset pair.
///
/// Deterministic in `(model, dataset, seq_len, seed)`.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
pub fn generate_tokens(
    model: &ModelSpec,
    dataset: &DatasetSpec,
    seq_len: usize,
    seed: u64,
) -> Matrix {
    assert!(seq_len > 0, "sequence length must be positive");
    let d = model.head_dim;
    let clusters = dataset.semantic_clusters(seq_len);
    let mut rng = MatrixRng::new(seed);

    // Topics, then centers scattered around topics at varying spreads.
    let topics = (clusters / 8).max(2);
    let topic_matrix = rng.normal_matrix(topics, d, 0.0, CENTER_STD);
    let mut centers = Matrix::zeros(clusters, d);
    for c in 0..clusters {
        let spread = CENTER_STD * rng.uniform(0.08, 1.2);
        let offset = rng.normal_matrix(1, d, 0.0, spread);
        let topic = topic_matrix.row(c % topics);
        for (j, x) in centers.row_mut(c).iter_mut().enumerate() {
            *x = topic[j] + offset.row(0)[j];
        }
    }

    // Skewed cluster popularity: cluster c gets weight 1/(c+1) (Zipf-ish),
    // mirroring natural token-frequency skew.
    let weights: Vec<f64> = (0..clusters).map(|c| 1.0 / (c + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut assignment = Vec::with_capacity(seq_len);
    for _ in 0..seq_len {
        let mut u = rng.uniform(0.0, 1.0) as f64 * total;
        let mut chosen = clusters - 1;
        for (c, w) in weights.iter().enumerate() {
            if u < *w {
                chosen = c;
                break;
            }
            u -= w;
        }
        assignment.push(chosen);
    }

    let mut tokens = centers.gather_rows(&assignment);
    let max_jitter = model.noise_scale * JITTER_MAX * CENTER_STD;
    for t in 0..seq_len {
        // Most repetitions are tight duplicates (near-lossless to merge);
        // a log-uniform tail of looser paraphrases stretches the
        // merge/accuracy curve so the 0/0.5/1% budgets map to distinct
        // compression levels.
        let u = if rng.uniform(0.0, 1.0) < 0.72 {
            rng.uniform(JITTER_RANGE, 0.06)
        } else {
            (rng.uniform(0.06f32.ln(), 0.0f32)).exp()
        };
        let jitter = rng.normal_matrix(1, d, 0.0, max_jitter * u);
        let row = tokens.row_mut(t);
        for (x, &j) in row.iter_mut().zip(jitter.row(0)) {
            *x += j;
        }
    }

    // Outliers: unclustered draws at the topic scale.
    let outliers = (dataset.outlier_fraction * seq_len as f64).round() as usize;
    for _ in 0..outliers {
        let pos = rng.index(seq_len);
        let row = rng.normal_matrix(1, d, 0.0, CENTER_STD);
        tokens.row_mut(pos).copy_from_slice(row.row(0));
    }
    tokens
}

/// Convenience wrapper generating tokens for a [`TestCase`] at its
/// dataset's native sequence length.
pub fn generate_case_tokens(case: &TestCase, seed: u64) -> Matrix {
    generate_tokens(&case.model, &case.dataset, case.dataset.seq_len, seed)
}

/// Generates the token matrix seen by layer `layer` of a `total_layers`
/// stack.
///
/// Deeper attention layers see *more* redundant representations: each
/// layer extracts a narrower span of structure (the Tenney et al. finding
/// the paper's motivation cites, §II-B), so token clusters tighten with
/// depth. This variant interpolates the dataset's redundancy from
/// `0.8 × redundancy` at the first layer up to
/// `redundancy + 0.6 × (1 − redundancy)` at the last.
///
/// # Panics
///
/// Panics if `layer >= total_layers` or `total_layers == 0`.
pub fn generate_layer_tokens(
    model: &ModelSpec,
    dataset: &DatasetSpec,
    layer: usize,
    total_layers: usize,
    seed: u64,
) -> Matrix {
    assert!(total_layers > 0, "at least one layer");
    assert!(layer < total_layers, "layer {layer} out of range 0..{total_layers}");
    let t = if total_layers == 1 { 0.0 } else { layer as f64 / (total_layers - 1) as f64 };
    let low = 0.8 * dataset.redundancy;
    let high = dataset.redundancy + 0.6 * (1.0 - dataset.redundancy);
    let layered = DatasetSpec { redundancy: low + t * (high - low), ..*dataset };
    generate_tokens(model, &layered, dataset.seq_len, seed.wrapping_add((layer as u64) << 24))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bert_large, gpt2_large, imdb, squad11};

    #[test]
    fn shape_and_determinism() {
        let a = generate_tokens(&bert_large(), &squad11(), 128, 7);
        let b = generate_tokens(&bert_large(), &squad11(), 128, 7);
        assert_eq!(a.shape(), (128, 64));
        assert_eq!(a, b);
        let c = generate_tokens(&bert_large(), &squad11(), 128, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn tokens_fit_the_q67_range() {
        let t = generate_tokens(&gpt2_large(), &imdb(), 512, 3);
        assert!(t.max_abs() < 31.0, "max |token| = {}", t.max_abs());
    }

    #[test]
    fn tokens_compress_losslessly_at_moderate_widths() {
        // The defining property for CTA: a large fraction of tokens merge
        // with near-zero reconstruction error.
        use cta_lsh::{compress, LshFamily, LshParams};
        let t = generate_tokens(&bert_large(), &squad11(), 384, 11);
        let fam = LshFamily::sample(64, LshParams::with_paper_length(8.0), 42);
        let comp = compress(&t, &fam);
        assert!(comp.k() < 300, "k = {} of 384", comp.k());
        assert!(comp.approximation_error(&t) < 0.08, "err {}", comp.approximation_error(&t));
    }

    #[test]
    fn higher_redundancy_means_fewer_distinct_clusters() {
        use cta_lsh::{compress, LshFamily, LshParams};
        let fam = LshFamily::sample(64, LshParams::with_paper_length(8.0), 42);
        let redundant = generate_tokens(&bert_large(), &imdb().with_seq_len(256), 256, 5);
        let diverse_ds = crate::DatasetSpec { redundancy: 0.3, ..imdb() }.with_seq_len(256);
        let diverse = generate_tokens(&bert_large(), &diverse_ds, 256, 5);
        let k_red = compress(&redundant, &fam).k();
        let k_div = compress(&diverse, &fam).k();
        assert!(k_red < k_div, "redundant k={k_red}, diverse k={k_div}");
    }

    #[test]
    fn noise_scale_controls_cluster_tightness() {
        use cta_lsh::{compress, LshFamily, LshParams};
        let fam = LshFamily::sample(64, LshParams::with_paper_length(1.0), 43);
        let tight_model = ModelSpec { noise_scale: 0.05, ..bert_large() };
        let loose_model = ModelSpec { noise_scale: 0.6, ..bert_large() };
        let tight = generate_tokens(&tight_model, &squad11(), 256, 9);
        let loose = generate_tokens(&loose_model, &squad11(), 256, 9);
        // Tighter clusters ⇒ more tokens merge per LSH bucket ⇒ fewer
        // centroids at the same bucket width.
        let k_tight = compress(&tight, &fam).k();
        let k_loose = compress(&loose, &fam).k();
        assert!(k_tight < k_loose, "tight k={k_tight} loose k={k_loose}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = generate_tokens(&bert_large(), &squad11(), 0, 1);
    }

    #[test]
    fn deeper_layers_compress_better() {
        use cta_lsh::{compress, LshFamily, LshParams};
        let fam = LshFamily::sample(64, LshParams::with_paper_length(4.0), 55);
        let shallow = generate_layer_tokens(&bert_large(), &squad11(), 0, 24, 7);
        let deep = generate_layer_tokens(&bert_large(), &squad11(), 23, 24, 7);
        let k_shallow = compress(&shallow, &fam).k();
        let k_deep = compress(&deep, &fam).k();
        assert!(k_deep < k_shallow, "deep k={k_deep}, shallow k={k_shallow}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_index_bounds_checked() {
        let _ = generate_layer_tokens(&bert_large(), &squad11(), 24, 24, 1);
    }
}
