//! Brownout-ladder calibration: measuring what each degraded operating
//! point costs in accuracy and saves in compute.
//!
//! The serving fleet's overload controller (in `cta-serve`) walks a ladder
//! of operating points, each scaling the cluster budgets `k₀,k₁,k₂` down
//! from the baseline. The ladder's per-rung numbers — how much accuracy a
//! rung loses and how much compression it buys — come from here: each rung
//! widens the LSH bucket widths by a factor (wider buckets ⇒ coarser
//! clustering ⇒ fewer clusters, the paper's §VI-B dial), re-measures the
//! proxy accuracy loss with [`evaluate_case`], and reads the achieved
//! budget scale off the measured mean cluster counts.

use cta_attention::CtaConfig;

use crate::{evaluate_case, CaseEvaluation, TestCase};

/// One calibrated rung of the brownout ladder.
#[derive(Debug, Clone)]
pub struct BrownoutRung {
    /// Width multiplier applied to the baseline config (1.0 = baseline).
    pub width_factor: f32,
    /// Achieved cluster-budget scale relative to the baseline rung: the
    /// mean of the three `kᵢ` ratios, clamped to `(0, 1]`. This is the
    /// number `AttentionTask::with_budget_scale` consumes fleet-side.
    pub budget_scale: f64,
    /// Measured proxy accuracy loss at this rung, percent (absolute, not
    /// relative to the baseline rung).
    pub accuracy_loss_pct: f64,
    /// The full evaluation behind the two summary numbers.
    pub evaluation: CaseEvaluation,
}

/// A calibrated ladder: rung 0 is the baseline operating point.
#[derive(Debug, Clone)]
pub struct BrownoutCalibration {
    /// `"model/dataset"` of the calibrated case.
    pub case_name: String,
    /// Rungs in ladder order (baseline first, most degraded last).
    pub rungs: Vec<BrownoutRung>,
}

impl BrownoutCalibration {
    /// The `(budget_scale, accuracy_loss_pct)` pairs the serve-side ladder
    /// wants, in ladder order.
    pub fn ladder_points(&self) -> Vec<(f64, f64)> {
        self.rungs.iter().map(|r| (r.budget_scale, r.accuracy_loss_pct)).collect()
    }
}

/// Calibrates a brownout ladder on `case`: for each width factor in
/// `factors` (≥ 1.0, ascending — wider is more degraded), evaluates the
/// baseline config with all bucket widths scaled by the factor, over
/// `samples` generated sequences per rung.
///
/// The first factor should be `1.0` so rung 0 is the baseline the budget
/// scales are measured against; the function inserts it if missing.
///
/// # Panics
///
/// Panics if `samples == 0`, `factors` is empty, or any factor is below
/// 1.0 or not ascending.
pub fn calibrate_brownout_ladder(
    case: &TestCase,
    base: &CtaConfig,
    factors: &[f32],
    samples: usize,
) -> BrownoutCalibration {
    assert!(samples > 0, "at least one sample");
    assert!(!factors.is_empty(), "at least one width factor");
    assert!(factors.iter().all(|&f| f >= 1.0), "width factors must be ≥ 1.0");
    assert!(factors.windows(2).all(|w| w[0] < w[1]), "width factors must ascend");

    let mut all = Vec::with_capacity(factors.len() + 1);
    if factors[0] != 1.0 {
        all.push(1.0);
    }
    all.extend_from_slice(factors);

    let mut rungs: Vec<BrownoutRung> = Vec::with_capacity(all.len());
    let mut baseline_ks: Option<(f64, f64, f64)> = None;
    for &factor in &all {
        let config = base.scaled_widths(factor);
        let evaluation = evaluate_case(case, &config, samples);
        let ks = (evaluation.mean_k0, evaluation.mean_k1, evaluation.mean_k2);
        let (b0, b1, b2) = *baseline_ks.get_or_insert(ks);
        let ratio = |k: f64, b: f64| if b > 0.0 { (k / b).min(1.0) } else { 1.0 };
        let budget_scale =
            ((ratio(ks.0, b0) + ratio(ks.1, b1) + ratio(ks.2, b2)) / 3.0).max(f64::MIN_POSITIVE);
        rungs.push(BrownoutRung {
            width_factor: factor,
            budget_scale,
            accuracy_loss_pct: evaluation.accuracy_loss_pct,
            evaluation,
        });
    }
    BrownoutCalibration { case_name: rungs[0].evaluation.case_name.clone(), rungs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini_case;

    #[test]
    fn ladder_baseline_rung_is_scale_one() {
        let case = mini_case();
        let base = CtaConfig::uniform(2.0, case.seed());
        let cal = calibrate_brownout_ladder(&case, &base, &[1.0, 2.0, 4.0], 2);
        assert_eq!(cal.rungs.len(), 3);
        assert_eq!(cal.rungs[0].budget_scale, 1.0);
        assert_eq!(cal.rungs[0].width_factor, 1.0);
        assert_eq!(cal.ladder_points().len(), 3);
    }

    #[test]
    fn wider_rungs_shrink_the_budget() {
        let case = mini_case();
        let base = CtaConfig::uniform(1.0, case.seed());
        let cal = calibrate_brownout_ladder(&case, &base, &[1.0, 3.0, 9.0], 2);
        let scales: Vec<f64> = cal.rungs.iter().map(|r| r.budget_scale).collect();
        assert!(
            scales.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "budget scales must not grow with width: {scales:?}"
        );
        assert!(scales.last().unwrap() < &1.0, "the widest rung must actually compress harder");
    }

    #[test]
    fn missing_baseline_factor_is_inserted() {
        let case = mini_case();
        let base = CtaConfig::uniform(2.0, case.seed());
        let cal = calibrate_brownout_ladder(&case, &base, &[2.0], 1);
        assert_eq!(cal.rungs.len(), 2);
        assert_eq!(cal.rungs[0].width_factor, 1.0);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn factors_must_ascend() {
        let case = mini_case();
        let base = CtaConfig::uniform(2.0, case.seed());
        let _ = calibrate_brownout_ladder(&case, &base, &[2.0, 1.5], 1);
    }
}
