//! The proxy accuracy task and per-case evaluation.
//!
//! The paper measures end-to-end task metrics (F1, accuracy, perplexity)
//! on finetuned checkpoints; without models we measure the same *signal* —
//! "how much task-relevant information does the approximation destroy?" —
//! with a linear-probe classification task on the attention outputs: a
//! fixed random readout maps each query's output vector to one of `C`
//! classes; the exact attention output defines the label; the approximate
//! output scores the fraction of labels preserved. `accuracy loss` is the
//! disagreement percentage, playing the role of the paper's 0% / 0.5% /
//! 1% accuracy-loss budgets.

use cta_attention::{
    attention_exact, cta_forward, fidelity, report_from_counts, AttentionWeights, ComplexityReport,
    CtaConfig, FidelityReport,
};
use cta_tensor::{Matrix, MatrixRng};

use crate::{generate_tokens, TestCase};

/// The linear-probe readout of a test case.
#[derive(Debug, Clone)]
pub struct ProxyTask {
    readout: Matrix,
}

impl ProxyTask {
    /// Builds the (deterministic) readout for a case: `head_dim × classes`.
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2`.
    pub fn for_case(case: &TestCase, classes: usize) -> Self {
        assert!(classes >= 2, "a classification probe needs at least 2 classes");
        let mut rng = MatrixRng::new(case.seed() ^ 0x5EED_CAFE);
        Self { readout: rng.normal_matrix(case.model.head_dim, classes, 0.0, 1.0) }
    }

    /// Class labels of an output matrix: per row, the arg-max of
    /// `output · readout`.
    ///
    /// # Panics
    ///
    /// Panics if `outputs.cols() != head_dim`.
    pub fn labels(&self, outputs: &Matrix) -> Vec<usize> {
        let logits = outputs.matmul(&self.readout);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Fraction of rows whose labels agree between two output matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn agreement(&self, exact: &Matrix, approx: &Matrix) -> f64 {
        assert_eq!(exact.shape(), approx.shape(), "output shape mismatch");
        let a = self.labels(exact);
        let b = self.labels(approx);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len().max(1) as f64
    }
}

/// Aggregated measurement of one (case, config) pair over several sampled
/// sequences.
#[derive(Debug, Clone)]
pub struct CaseEvaluation {
    /// `"model/dataset"`.
    pub case_name: String,
    /// Proxy accuracy loss, percent (0 = lossless).
    pub accuracy_loss_pct: f64,
    /// Mean output-fidelity metrics.
    pub fidelity: FidelityReport,
    /// Complexity report at the mean cluster counts (RL, RA, effective
    /// relations).
    pub complexity: ComplexityReport,
    /// Per-sample accuracy losses (percent), for spread diagnostics.
    pub sample_losses: Vec<f64>,
    /// Mean cluster counts across samples.
    pub mean_k0: f64,
    /// Mean level-1 KV cluster count.
    pub mean_k1: f64,
    /// Mean level-2 KV cluster count.
    pub mean_k2: f64,
}

/// Evaluates a CTA configuration on a test case over `samples` generated
/// sequences.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn evaluate_case(case: &TestCase, config: &CtaConfig, samples: usize) -> CaseEvaluation {
    assert!(samples > 0, "at least one sample");
    let dims = case.dims();
    let weights =
        AttentionWeights::random(case.model.head_dim, case.model.head_dim, case.seed() ^ 0xBEEF);
    let probe = ProxyTask::for_case(case, 8);

    let mut sample_losses = Vec::with_capacity(samples);
    let mut err_sum = 0.0;
    let mut cos_sum = 0.0;
    let mut top1_sum = 0.0;
    let (mut k0_sum, mut k1_sum, mut k2_sum) = (0usize, 0usize, 0usize);

    for s in 0..samples {
        let tokens = generate_tokens(
            &case.model,
            &case.dataset,
            case.dataset.seq_len,
            case.seed().wrapping_add(s as u64),
        );
        let exact = attention_exact(&tokens, &tokens, &weights);
        let cta = cta_forward(&tokens, &tokens, &weights, config);
        let fid = fidelity(&cta, &exact);
        sample_losses.push((1.0 - probe.agreement(&exact.output, &cta.output)) * 100.0);
        err_sum += fid.output_relative_error;
        cos_sum += fid.mean_output_cosine;
        top1_sum += fid.top1_agreement;
        k0_sum += cta.k0();
        k1_sum += cta.k1();
        k2_sum += cta.k2();
    }

    let nf = samples as f64;
    let mean_k0 = k0_sum as f64 / nf;
    let mean_k1 = k1_sum as f64 / nf;
    let mean_k2 = k2_sum as f64 / nf;
    let complexity = report_from_counts(
        &dims,
        mean_k0.round().max(1.0) as usize,
        mean_k1.round().max(1.0) as usize,
        mean_k2.round().max(1.0) as usize,
        config.hash_length,
    );
    CaseEvaluation {
        case_name: case.name(),
        accuracy_loss_pct: sample_losses.iter().sum::<f64>() / nf,
        fidelity: FidelityReport {
            output_relative_error: err_sum / nf,
            mean_output_cosine: cos_sum / nf,
            top1_agreement: top1_sum / nf,
        },
        complexity,
        sample_losses,
        mean_k0,
        mean_k1,
        mean_k2,
    }
}

impl CaseEvaluation {
    /// Standard deviation of the per-sample accuracy losses (0 for a
    /// single sample).
    pub fn loss_stddev(&self) -> f64 {
        let n = self.sample_losses.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.accuracy_loss_pct;
        let var = self.sample_losses.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini_case;

    #[test]
    fn lossless_in_the_singleton_limit() {
        let case = mini_case();
        let cfg = CtaConfig::new(6, 1e-4, 1e-4, 1e-4, 1);
        let eval = evaluate_case(&case, &cfg, 2);
        assert!(eval.accuracy_loss_pct < 1e-9, "loss {}", eval.accuracy_loss_pct);
        assert!(eval.fidelity.output_relative_error < 1e-4);
        assert!((eval.complexity.rl - 1.0).abs() < 0.5); // near-uncompressed
    }

    #[test]
    fn aggressive_compression_loses_accuracy_but_gains_reduction() {
        let case = mini_case();
        let fine = evaluate_case(&case, &CtaConfig::uniform(0.5, 1), 2);
        let coarse = evaluate_case(&case, &CtaConfig::uniform(50.0, 1), 2);
        assert!(coarse.complexity.ra < fine.complexity.ra);
        assert!(coarse.accuracy_loss_pct >= fine.accuracy_loss_pct);
        assert!(coarse.mean_k0 < fine.mean_k0);
    }

    #[test]
    fn loss_spread_is_reported() {
        let case = mini_case();
        let e = evaluate_case(&case, &CtaConfig::uniform(8.0, 1), 3);
        assert_eq!(e.sample_losses.len(), 3);
        assert!(e.loss_stddev() >= 0.0);
        let single = evaluate_case(&case, &CtaConfig::uniform(8.0, 1), 1);
        assert_eq!(single.loss_stddev(), 0.0);
    }

    #[test]
    fn probe_is_deterministic_per_case() {
        let case = mini_case();
        let a = ProxyTask::for_case(&case, 4);
        let b = ProxyTask::for_case(&case, 4);
        let outputs = cta_tensor::standard_normal_matrix(3, 10, case.model.head_dim);
        assert_eq!(a.labels(&outputs), b.labels(&outputs));
    }

    #[test]
    fn agreement_is_one_for_identical_outputs() {
        let case = mini_case();
        let probe = ProxyTask::for_case(&case, 8);
        let o = cta_tensor::standard_normal_matrix(5, 12, case.model.head_dim);
        assert_eq!(probe.agreement(&o, &o), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn probe_rejects_single_class() {
        let _ = ProxyTask::for_case(&mini_case(), 1);
    }
}
