//! The calendar queue against a `BinaryHeap` reference model.
//!
//! The reference is the textbook priority queue: a max-heap of
//! `Reverse((t, class, tie, seq))` tuples. Under random interleavings of
//! schedule / cancel / pop, the calendar queue must produce exactly the
//! reference's pop sequence — same keys, same payloads, same lengths —
//! including under slot reuse, bucket resizes, back-dated schedules and
//! far-future (virtual-bucket-saturating) timestamps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cta_events::{CalendarQueue, EventId, EventKey};
use proptest::prelude::*;

/// A heap key mirroring the calendar's total order. Times are mapped to
/// their IEEE bit pattern (all finite, non-negative, so the bits order
/// like the floats) to get a total `Ord`.
type RefKey = (u64, u8, u64, u64);

struct Reference {
    heap: BinaryHeap<Reverse<(RefKey, u64)>>,
    /// payload-id → live? (cancelled entries are dropped lazily)
    live: Vec<bool>,
}

impl Reference {
    fn new() -> Self {
        Self { heap: BinaryHeap::new(), live: Vec::new() }
    }

    fn schedule(&mut self, key: EventKey, seq: u64) -> u64 {
        let id = self.live.len() as u64;
        self.live.push(true);
        self.heap.push(Reverse(((key.t.to_bits(), key.class, key.tie, seq), id)));
        id
    }

    fn cancel(&mut self, id: u64) -> bool {
        let was = self.live[id as usize];
        self.live[id as usize] = false;
        was
    }

    fn pop(&mut self) -> Option<(RefKey, u64)> {
        while let Some(Reverse((key, id))) = self.heap.pop() {
            if self.live[id as usize] {
                self.live[id as usize] = false;
                return Some((key, id));
            }
        }
        None
    }
}

/// One drawn operation stream: `seed` drives a SplitMix64 generator; the
/// op mix is ~60% schedule, ~20% cancel (of a random outstanding token),
/// ~20% pop. Times cluster around the last popped time with occasional
/// far-future spikes so the ring exercises both dense years and the
/// direct-search fallback.
fn run_interleaving(seed: u64, ops: usize, far_future: bool) {
    let mut rng = cta_events::DetRng::seeded(seed);
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut reference = Reference::new();
    // Outstanding (calendar token, reference id) pairs, in issue order.
    let mut outstanding: Vec<(EventId, u64)> = Vec::new();
    let mut seq = 0u64;
    let mut base_t = 0.0f64;

    for _ in 0..ops {
        let roll = rng.next_u64() % 10;
        if roll < 6 || outstanding.is_empty() && roll < 8 {
            // Schedule.
            let t = if far_future && rng.next_u64().is_multiple_of(16) {
                // Saturates the virtual-bucket computation.
                1e300 * (1.0 + rng.next_f64())
            } else if rng.next_u64().is_multiple_of(8) {
                // Back-dated (before the last popped time).
                base_t * rng.next_f64()
            } else {
                base_t + rng.next_f64() * 10.0
            };
            let class = (rng.next_u64() % 5) as u8;
            let tie = rng.next_u64() % 16;
            let key = EventKey::new(t, class, tie);
            seq += 1;
            let rid = reference.schedule(key, seq);
            let cid = cal.schedule(key, rid);
            outstanding.push((cid, rid));
        } else if roll < 8 && !outstanding.is_empty() {
            // Cancel a random outstanding token (possibly already
            // popped — both sides must agree it is stale).
            let pick = (rng.next_u64() as usize) % outstanding.len();
            let (cid, rid) = outstanding.swap_remove(pick);
            let cal_hit = cal.cancel(cid);
            let ref_hit = reference.cancel(rid);
            assert_eq!(cal_hit.is_some(), ref_hit, "cancel liveness must agree");
            if let Some(payload) = cal_hit {
                assert_eq!(payload, rid);
            }
        } else {
            // Pop.
            let got = cal.pop();
            let want = reference.pop();
            match (got, want) {
                (None, None) => {}
                (Some((k, payload)), Some((wk, wid))) => {
                    assert_eq!((k.t.to_bits(), k.class, k.tie), (wk.0, wk.1, wk.2));
                    assert_eq!(payload, wid, "pop order must match the heap reference");
                    base_t = k.t.min(1e12); // keep later draws finite
                }
                (got, want) => panic!("emptiness diverged: calendar {got:?} vs reference {want:?}"),
            }
        }
        assert_eq!(cal.len(), reference.live.iter().filter(|&&l| l).count());
    }

    // Drain both completely: the tails must match too.
    loop {
        let got = cal.pop();
        let want = reference.pop();
        match (got, want) {
            (None, None) => break,
            (Some((k, payload)), Some((wk, wid))) => {
                assert_eq!((k.t.to_bits(), k.class, k.tie), (wk.0, wk.1, wk.2));
                assert_eq!(payload, wid);
            }
            (got, want) => panic!("drain diverged: calendar {got:?} vs reference {want:?}"),
        }
    }
    assert!(cal.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn matches_binary_heap_under_random_interleavings(
        seed in 0u64..1_000_000,
        ops in 1usize..400,
    ) {
        run_interleaving(seed, ops, false);
    }

    fn matches_binary_heap_with_far_future_spikes(
        seed in 0u64..1_000_000,
        ops in 1usize..200,
    ) {
        run_interleaving(seed, ops, true);
    }
}

/// Far-future timestamps saturate the virtual-bucket index instead of
/// wrapping: a timer at 1e308 coexists with (and pops after) near-term
/// events, and equal-saturated times still order by class/tie.
#[test]
fn far_future_saturation_orders_correctly() {
    let mut q = CalendarQueue::new();
    q.schedule(EventKey::new(f64::MAX, 4, 9), "max-late");
    q.schedule(EventKey::new(1e308, 1, 0), "huge");
    q.schedule(EventKey::new(0.5, 4, 0), "soon");
    q.schedule(EventKey::new(f64::MAX, 1, 2), "max-mid");
    q.schedule(EventKey::new(f64::MAX, 1, 1), "max-early");
    let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
    assert_eq!(order, ["soon", "huge", "max-early", "max-mid", "max-late"]);
}

/// The direct-search fallback: one far-future event behind an empty
/// year must pop without walking 1e300/width buckets.
#[test]
fn sparse_far_future_pops_fast() {
    let mut q = CalendarQueue::new();
    q.schedule(EventKey::new(1e15, 0, 0), "eventually");
    assert_eq!(q.pop().map(|(_, e)| e), Some("eventually"));
    // And the cursor recovers for ordinary scheduling afterwards.
    q.schedule(EventKey::new(1e15 + 1.0, 0, 0), "later");
    q.schedule(EventKey::new(2.0, 0, 0), "backdated");
    assert_eq!(q.pop().map(|(_, e)| e), Some("backdated"));
    assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
    assert!(q.is_empty());
}
