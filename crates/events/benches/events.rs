//! Microbenchmarks of the event core: calendar-queue schedule/pop
//! throughput at 1e6 events, cancellation, and the heap-of-tuples
//! baseline for comparison. The fleet-level step-vs-event comparison
//! lives in the `bench_events` bin (it needs the serving runtime).

use criterion::{criterion_group, criterion_main, Criterion};
use cta_events::{CalendarQueue, DetRng, EventKey};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const N: usize = 1_000_000;

/// Pre-drawn event keys: Poisson-ish arrival times over a 1k-second
/// horizon with the runtime's five class ranks.
fn keys() -> Vec<EventKey> {
    let mut rng = DetRng::seeded(0xE7E27);
    let mut t = 0.0f64;
    (0..N)
        .map(|i| {
            t += rng.next_f64() * 2e-3;
            EventKey::new(t, (i % 5) as u8, i as u64)
        })
        .collect()
}

fn bench_events(c: &mut Criterion) {
    let keys = keys();

    c.bench_function("events/calendar_schedule_pop_1e6", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new();
            for (i, k) in keys.iter().enumerate() {
                q.schedule(*k, i as u64);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    type HeapEntry = Reverse<((u64, u8, u64, u64), u64)>;
    c.bench_function("events/heap_schedule_pop_1e6", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<HeapEntry> = BinaryHeap::new();
            for (i, k) in keys.iter().enumerate() {
                q.push(Reverse(((k.t.to_bits(), k.class, k.tie, i as u64), i as u64)));
            }
            let mut acc = 0u64;
            while let Some(Reverse((_, v))) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    c.bench_function("events/calendar_interleaved_hold_1e5", |b| {
        // The hold model: steady-state queue of ~1k events, pop one /
        // schedule one — the pattern the fleet loop produces.
        b.iter(|| {
            let mut rng = DetRng::seeded(0x401D);
            let mut q = CalendarQueue::new();
            let mut t = 0.0f64;
            for i in 0..1_000u64 {
                t += rng.next_f64();
                q.schedule(EventKey::new(t, 0, i), i);
            }
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                let (k, v) = q.pop().expect("held at 1k");
                acc = acc.wrapping_add(v);
                q.schedule(EventKey::new(k.t + 1_000.0 * rng.next_f64(), 0, i), i);
            }
            black_box(acc)
        })
    });

    c.bench_function("events/calendar_cancel_half_1e5", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new();
            let ids: Vec<_> = keys
                .iter()
                .take(100_000)
                .enumerate()
                .map(|(i, k)| q.schedule(*k, i as u64))
                .collect();
            for id in ids.iter().step_by(2) {
                black_box(q.cancel(*id));
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        })
    });
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
