#![deny(missing_docs)]

//! `cta-events`: the deterministic discrete-event core of the serving
//! fleet.
//!
//! The fleet simulator's original event loop advanced *step-granularly*:
//! every iteration re-scanned all replicas for the earliest layer step,
//! so one simulated event cost O(replicas) and fleet size was capped far
//! below the "millions of users" target. This crate supplies the
//! structure that makes cost scale with *events* instead:
//!
//! * [`CalendarQueue`] — a Brown-style calendar queue (a hash of
//!   time-sorted buckets over a rotating "year") with O(1) amortized
//!   schedule and pop, automatic resize as occupancy grows or shrinks,
//!   and direct-search fallback for sparse far-future horizons;
//! * [`EventKey`] — the total event order `(time, class, tie, seq)`.
//!   The `class` rank reproduces the serving runtime's tie contract
//!   (fault < arrival < retry < hedge < step at one instant) and `tie`
//!   carries the per-class ordinal (arrival index, request id, replica
//!   index), so coincident events pop in exactly the order the
//!   step-granular loop processed them;
//! * [`EventId`] — a generation-checked cancellation token returned by
//!   every schedule, so retries superseded by completions, breaker
//!   resets and hedge losers can be removed in O(bucket) without
//!   tombstone scans;
//! * [`EventLoop`] / [`Clock`] — the driver surface: `schedule`,
//!   `cancel`, `next`, with the clock following popped event times;
//! * [`DetRng`] — a SplitMix64 generator for seeded, dependency-free
//!   event jitter.
//!
//! Everything is deterministic: the pop order is a pure function of the
//! schedule/cancel history (ties beyond `(t, class, tie)` break by
//! schedule order), which is what lets the event-driven fleet reproduce
//! the step-granular goldens bit for bit.
//!
//! # Example
//!
//! ```
//! use cta_events::{CalendarQueue, EventKey};
//!
//! let mut q = CalendarQueue::new();
//! let id = q.schedule(EventKey::new(2.0, 0, 0), "retry");
//! q.schedule(EventKey::new(1.0, 1, 0), "arrival");
//! q.schedule(EventKey::new(1.0, 0, 0), "fault");
//! assert_eq!(q.cancel(id), Some("retry"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("fault"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("arrival"));
//! assert_eq!(q.pop(), None);
//! ```

mod calendar;
mod event_loop;
mod rng;

pub use calendar::{CalendarQueue, EventId, EventKey};
pub use event_loop::{Clock, EventLoop};
pub use rng::{mix64, DetRng};
