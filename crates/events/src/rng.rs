//! Seeded, dependency-free randomness for event jitter.

/// A SplitMix64 generator: tiny state, full 64-bit output, deterministic
/// for a given seed. Good enough for event-time jitter and sampling; not
/// cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator with the given seed. Equal seeds yield equal streams.
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next value uniform in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::seeded(0xC7A);
        let mut b = DetRng::seeded(0xC7A);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same} collisions");
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = DetRng::seeded(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "range should be exercised: [{lo}, {hi}]");
    }
}
