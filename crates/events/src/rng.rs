//! Seeded, dependency-free randomness for event jitter.

/// A SplitMix64 generator: tiny state, full 64-bit output, deterministic
/// for a given seed. Good enough for event-time jitter and sampling; not
/// cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator with the given seed. Equal seeds yield equal streams.
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// The next value uniform in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The stateless SplitMix64 finalizer: a bijective avalanche mix of `x`.
/// Useful as a pure hash when an effect must be a deterministic function
/// of its inputs alone (no generator state to thread through), e.g.
/// per-step fault jitter keyed by `(seed, replica, time)`.
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::seeded(0xC7A);
        let mut b = DetRng::seeded(0xC7A);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same} collisions");
    }

    #[test]
    fn mix64_is_deterministic_and_avalanches() {
        assert_eq!(mix64(42), mix64(42));
        // Flipping one input bit flips roughly half the output bits.
        let flips = (mix64(42) ^ mix64(43)).count_ones();
        assert!((16..=48).contains(&flips), "weak avalanche: {flips} bit flips");
        // The finalizer is exactly the DetRng output mix.
        let mut rng = DetRng::seeded(7);
        assert_eq!(rng.next_u64(), mix64(7u64.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = DetRng::seeded(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "range should be exercised: [{lo}, {hi}]");
    }
}
