//! The calendar-queue priority structure.
//!
//! A calendar queue (Brown, CACM 1988) hashes events by time into a ring
//! of `N` buckets of width `w` seconds — bucket `⌊t/w⌋ mod N` — and pops
//! by walking the ring one *virtual bucket* (one `⌊t/w⌋` value) at a
//! time, popping bucket heads whose virtual bucket matches the cursor.
//! With `N` tracking occupancy (the queue doubles above 2 events/bucket
//! and halves below 1/8) and `w` tracking the mean inter-event gap,
//! buckets hold O(1) events and both `schedule` and `pop` are O(1)
//! amortized. When the calendar is sparse relative to the next event
//! (a far-future timer and nothing else), a full ring scan falls back to
//! a direct O(N) minimum search and jumps the cursor there — the
//! hierarchical-overflow behaviour of a timer wheel without a second
//! level.
//!
//! Determinism contract: pops follow the total order
//! `(t, class, tie, schedule seq)` exactly — see [`EventKey`] — and the
//! pop sequence is a pure function of the schedule/cancel history. No
//! hash-map iteration, no address-dependent ordering.

/// Total event ordering key: time, then class rank, then a caller tie.
///
/// `class` encodes the serving runtime's coincident-instant contract
/// (fault `0` < arrival `1` < retry `2` < hedge `3` < step `4`), and
/// `tie` the within-class ordinal (fault timeline index, arrival index,
/// request id, replica index). Keys that still compare equal pop in
/// schedule order (the queue's internal sequence number breaks the tie),
/// so the order is total and reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventKey {
    /// Event time, seconds. Must be finite and non-negative.
    pub t: f64,
    /// Class rank; smaller pops first at equal time.
    pub class: u8,
    /// Within-class tiebreak; smaller pops first at equal time and class.
    pub tie: u64,
}

impl EventKey {
    /// Builds a key.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, infinite or negative — an event time that
    /// defeats `<=` ordering must fail at the schedule site, not wedge
    /// the loop.
    pub fn new(t: f64, class: u8, tie: u64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "event time must be finite and non-negative, got {t}");
        Self { t, class, tie }
    }

    /// The total order (NaN-free by construction). Named `order` rather
    /// than implementing `Ord`: the fields are public and `f64`, so the
    /// trait's totality could be violated by a hand-built NaN key —
    /// this method panics there instead of lying.
    pub fn order(&self, other: &Self) -> core::cmp::Ordering {
        self.t
            .partial_cmp(&other.t)
            .expect("finite event times")
            .then(self.class.cmp(&other.class))
            .then(self.tie.cmp(&other.tie))
    }
}

/// A cancellation token for one scheduled event.
///
/// Tokens are generation-checked: cancelling an event that already
/// popped (or was already cancelled) returns `None` even if its slot was
/// reused, so stale tokens are harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

struct Entry<E> {
    key: EventKey,
    /// Queue-assigned schedule sequence: the final tiebreak.
    seq: u64,
    /// Virtual bucket `⌊t/width⌋` (saturated for far-future times).
    vb: u64,
    payload: E,
}

/// Fewest buckets the ring shrinks to.
const MIN_BUCKETS: usize = 16;
/// Width-estimation sample cap (see [`CalendarQueue::rebuild`]).
const WIDTH_SAMPLE: usize = 64;

/// The calendar queue. See the module docs for the data structure and
/// the determinism contract.
pub struct CalendarQueue<E> {
    /// Slot arena; `None` slots are free.
    slots: Vec<Option<Entry<E>>>,
    /// Per-slot generation, bumped on free (token validity check).
    generations: Vec<u32>,
    /// Free slot indices.
    free: Vec<u32>,
    /// The ring: bucket `b` holds slot indices of events with
    /// `vb % buckets.len() == b`, sorted by `(key, seq)`.
    buckets: Vec<Vec<u32>>,
    /// Bucket width, seconds.
    width: f64,
    /// Pop cursor: the virtual bucket currently being drained. Every
    /// live entry has `vb >= cur_vb` (schedules behind the cursor move
    /// it back).
    cur_vb: u64,
    /// Live events.
    len: usize,
    /// Next schedule sequence number.
    seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue (16 buckets, 1 s width until the first resize).
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: 1.0,
            cur_vb: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Live (scheduled, not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The virtual bucket of `t` under `width`, saturating for times so
    /// far out that `t/width` exceeds `u64` range (they all share the
    /// last bucket, still sorted by key within it).
    fn virtual_bucket(t: f64, width: f64) -> u64 {
        let q = t / width;
        if q >= u64::MAX as f64 {
            u64::MAX
        } else {
            q as u64
        }
    }

    /// Compares two live entries by the total order `(key, seq)`.
    fn entry_cmp(&self, a: u32, b: u32) -> core::cmp::Ordering {
        let ea = self.slots[a as usize].as_ref().expect("live entry");
        let eb = self.slots[b as usize].as_ref().expect("live entry");
        ea.key.order(&eb.key).then(ea.seq.cmp(&eb.seq))
    }

    /// Schedules an event, returning its cancellation token.
    ///
    /// Scheduling *behind* the pop cursor is allowed and moves the
    /// cursor back: the serving runtime legitimately back-dates work
    /// (a hedge copy landing on a long-idle replica steps at the copy's
    /// original arrival time, earlier than the dispatch instant).
    pub fn schedule(&mut self, key: EventKey, payload: E) -> EventId {
        assert!(
            key.t.is_finite() && key.t >= 0.0,
            "event time must be finite and non-negative, got {}",
            key.t
        );
        if self.len + 1 > 2 * self.buckets.len() {
            self.rebuild(2 * self.buckets.len());
        }
        self.seq += 1;
        let vb = Self::virtual_bucket(key.t, self.width);
        self.cur_vb = self.cur_vb.min(vb);
        let entry = Entry { key, seq: self.seq, vb, payload };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(entry);
                s
            }
            None => {
                self.slots.push(Some(entry));
                self.generations.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let b = (vb % self.buckets.len() as u64) as usize;
        let pos = self.buckets[b]
            .binary_search_by(|&probe| self.entry_cmp(probe, slot))
            .unwrap_or_else(|e| e);
        self.buckets[b].insert(pos, slot);
        self.len += 1;
        EventId { slot, generation: self.generations[slot as usize] }
    }

    /// Cancels a scheduled event, returning its payload — or `None` if
    /// the token is stale (the event already popped or was cancelled).
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        let idx = id.slot as usize;
        if idx >= self.slots.len()
            || self.generations[idx] != id.generation
            || self.slots[idx].is_none()
        {
            return None;
        }
        let vb = self.slots[idx].as_ref().expect("checked occupied").vb;
        let b = (vb % self.buckets.len() as u64) as usize;
        let pos = self.buckets[b]
            .binary_search_by(|&probe| self.entry_cmp(probe, id.slot))
            .expect("scheduled event is in its bucket");
        self.buckets[b].remove(pos);
        let entry = self.release(id.slot);
        self.maybe_shrink();
        Some(entry.payload)
    }

    /// Pops the minimum-key event.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let (b, _) = self.find_next()?;
        let slot = self.buckets[b].remove(0);
        let entry = self.release(slot);
        self.maybe_shrink();
        Some((entry.key, entry.payload))
    }

    /// The minimum key without popping (advances the internal cursor,
    /// which is invisible to callers).
    pub fn peek(&mut self) -> Option<EventKey> {
        let (b, _) = self.find_next()?;
        Some(self.slots[self.buckets[b][0] as usize].as_ref().expect("live entry").key)
    }

    /// Advances `cur_vb` to the next event and returns its
    /// `(bucket, slot)`; `None` when empty. This is the calendar scan:
    /// walk the ring one virtual bucket at a time popping matching
    /// heads; after one fruitless full revolution, direct-search the
    /// bucket heads and jump (the sparse/far-future fallback).
    fn find_next(&mut self) -> Option<(usize, u32)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        for _ in 0..self.buckets.len() {
            let b = (self.cur_vb % n) as usize;
            if let Some(&head) = self.buckets[b].first() {
                let head_vb = self.slots[head as usize].as_ref().expect("live entry").vb;
                debug_assert!(head_vb >= self.cur_vb, "event behind the pop cursor");
                if head_vb == self.cur_vb {
                    return Some((b, head));
                }
            }
            self.cur_vb = self.cur_vb.saturating_add(1);
        }
        // Sparse year: no event within one revolution. Find the global
        // minimum head directly and jump the cursor to it.
        let mut best: Option<(usize, u32)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(&head) = bucket.first() {
                best = match best {
                    None => Some((b, head)),
                    Some((_, cur)) if self.entry_cmp(head, cur).is_lt() => Some((b, head)),
                    keep => keep,
                };
            }
        }
        let (b, slot) = best.expect("non-empty queue has a head");
        self.cur_vb = self.slots[slot as usize].as_ref().expect("live entry").vb;
        Some((b, slot))
    }

    /// Frees `slot`, bumping its generation so outstanding tokens die.
    fn release(&mut self, slot: u32) -> Entry<E> {
        let entry = self.slots[slot as usize].take().expect("live entry");
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        entry
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 8 {
            self.rebuild((self.buckets.len() / 2).max(MIN_BUCKETS));
        }
    }

    /// Rebuilds the ring at `new_buckets` buckets, re-estimating the
    /// width from the mean inter-event gap of a bounded sample. O(len)
    /// plus the sample sort; triggered only after the occupancy doubled
    /// or fell 8×, so amortized O(1) per operation.
    fn rebuild(&mut self, new_buckets: usize) {
        let mut live: Vec<u32> =
            (0..self.slots.len() as u32).filter(|&i| self.slots[i as usize].is_some()).collect();
        // Width: twice the mean positive gap between sampled event
        // times, so consecutive events land in their own buckets but a
        // bucket's year rarely needs more than a couple of hops.
        let mut sample: Vec<f64> = live
            .iter()
            .take(WIDTH_SAMPLE)
            .map(|&i| self.slots[i as usize].as_ref().expect("live entry").key.t)
            .collect();
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite event times"));
        let gaps: Vec<f64> = sample.windows(2).map(|w| w[1] - w[0]).filter(|&g| g > 0.0).collect();
        if !gaps.is_empty() {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let width = 2.0 * mean;
            if width.is_finite() && width > 0.0 {
                self.width = width;
            }
        }
        live.sort_by(|&a, &b| self.entry_cmp(a, b));
        let mut buckets = vec![Vec::new(); new_buckets];
        let mut min_vb = u64::MAX;
        for &slot in &live {
            let entry = self.slots[slot as usize].as_mut().expect("live entry");
            entry.vb = Self::virtual_bucket(entry.key.t, self.width);
            min_vb = min_vb.min(entry.vb);
            // Inserted in global (key, seq) order, so per-bucket order
            // stays sorted with plain pushes.
            buckets[(entry.vb % new_buckets as u64) as usize].push(slot);
        }
        self.buckets = buckets;
        self.cur_vb = if self.len == 0 { 0 } else { min_vb };
    }
}

impl<E> core::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width", &self.width)
            .field("cur_vb", &self.cur_vb)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(q: &mut CalendarQueue<E>) -> Vec<(EventKey, E)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn pops_in_time_class_tie_order() {
        let mut q = CalendarQueue::new();
        q.schedule(EventKey::new(1.0, 4, 0), "step");
        q.schedule(EventKey::new(1.0, 0, 0), "fault");
        q.schedule(EventKey::new(0.5, 4, 1), "early-step");
        q.schedule(EventKey::new(1.0, 2, 7), "retry-7");
        q.schedule(EventKey::new(1.0, 2, 3), "retry-3");
        let order: Vec<&str> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, ["early-step", "fault", "retry-3", "retry-7", "step"]);
    }

    #[test]
    fn identical_keys_pop_in_schedule_order() {
        let mut q = CalendarQueue::new();
        for i in 0..10 {
            q.schedule(EventKey::new(2.0, 1, 0), i);
        }
        let order: Vec<i32> = drain(&mut q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_and_tokens_go_stale() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(EventKey::new(1.0, 0, 0), "a");
        let b = q.schedule(EventKey::new(2.0, 0, 0), "b");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.cancel(b), None, "popped events cannot be cancelled");
        // Slot reuse must not resurrect the old token.
        let c = q.schedule(EventKey::new(3.0, 0, 0), "c");
        assert_eq!(q.cancel(b), None);
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.cancel(c), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduling_behind_the_cursor_is_supported() {
        let mut q = CalendarQueue::new();
        q.schedule(EventKey::new(10.0, 0, 0), "late");
        assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
        // The cursor sits at t=10's bucket; a back-dated schedule must
        // still pop (the runtime back-dates hedge-copy steps).
        q.schedule(EventKey::new(1.0, 0, 0), "backdated");
        q.schedule(EventKey::new(11.0, 0, 0), "next");
        assert_eq!(q.pop().map(|(_, e)| e), Some("backdated"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("next"));
    }

    #[test]
    fn grows_and_shrinks_through_heavy_load() {
        let mut q = CalendarQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            q.schedule(EventKey::new(i as f64 * 1e-4, 0, i), i);
        }
        assert!(q.buckets.len() >= n as usize / 2, "ring grew with occupancy");
        for want in 0..n {
            let (k, v) = q.pop().expect("still full");
            assert_eq!(v, want);
            assert_eq!(k.tie, want);
        }
        assert!(q.is_empty());
        assert!(q.buckets.len() <= 2 * MIN_BUCKETS, "ring shrank after drain");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_times_are_rejected_at_schedule() {
        let mut q = CalendarQueue::new();
        q.schedule(EventKey { t: f64::NAN, class: 0, tie: 0 }, ());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_times_are_rejected_at_key_construction() {
        let _ = EventKey::new(-1.0, 0, 0);
    }
}
