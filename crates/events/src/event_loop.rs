//! The event-loop driver surface: a [`Clock`] that follows popped event
//! times and an [`EventLoop`] wrapping a [`CalendarQueue`].

use crate::calendar::{CalendarQueue, EventId, EventKey};

/// Simulation clock.
///
/// The clock follows popped event times. It is **not** monotone: the
/// serving runtime legitimately back-dates work (a hedge copy landing
/// on a long-idle replica steps at the copy's original arrival time,
/// which can precede the dispatch instant), so `now` may move backwards
/// across consecutive events. Handlers that need a monotone notion of
/// time must track their own high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Clock {
    now: f64,
}

impl Clock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Moves the clock to `t` (backwards allowed; see the type docs).
    pub fn set(&mut self, t: f64) {
        self.now = t;
    }
}

/// A deterministic event loop: schedule, cancel, pop-and-advance.
///
/// `pop` removes the minimum-key event and advances the clock to its
/// time. The pop order is the total order documented on [`EventKey`];
/// it is a pure function of the schedule/cancel history.
#[derive(Debug)]
pub struct EventLoop<E> {
    queue: CalendarQueue<E>,
    clock: Clock,
}

impl<E> Default for EventLoop<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventLoop<E> {
    /// An empty loop with the clock at t = 0.
    pub fn new() -> Self {
        Self { queue: CalendarQueue::new(), clock: Clock::new() }
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Schedules an event at `(t, class, tie)` — `t` before `now()` is
    /// allowed (see [`Clock`]) — returning its cancellation token.
    pub fn schedule(&mut self, t: f64, class: u8, tie: u64, payload: E) -> EventId {
        self.queue.schedule(EventKey::new(t, class, tie), payload)
    }

    /// Cancels a scheduled event; `None` if the token is stale.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        self.queue.cancel(id)
    }

    /// Pops the next event and advances the clock to its time.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let (key, payload) = self.queue.pop()?;
        self.clock.set(key.t);
        Some((key, payload))
    }

    /// The next event's key without popping or advancing the clock.
    pub fn peek(&mut self) -> Option<EventKey> {
        self.queue.peek()
    }

    /// Pending (scheduled, not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_pops_including_backwards() {
        let mut el = EventLoop::new();
        el.schedule(5.0, 4, 0, "step");
        assert_eq!(el.pop().map(|(_, e)| e), Some("step"));
        assert_eq!(el.now(), 5.0);
        // Back-dated schedule: clock moves backwards with the pop.
        el.schedule(2.0, 4, 1, "backdated");
        assert_eq!(el.pop().map(|(_, e)| e), Some("backdated"));
        assert_eq!(el.now(), 2.0);
        assert!(el.is_empty());
    }

    #[test]
    fn cancel_through_the_loop() {
        let mut el = EventLoop::new();
        let id = el.schedule(1.0, 2, 42, "retry");
        el.schedule(2.0, 4, 0, "step");
        assert_eq!(el.cancel(id), Some("retry"));
        assert_eq!(el.cancel(id), None);
        assert_eq!(el.len(), 1);
        assert_eq!(el.pop().map(|(k, e)| (k.t, e)), Some((2.0, "step")));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut el: EventLoop<()> = EventLoop::new();
        el.schedule(3.0, 0, 0, ());
        assert_eq!(el.peek().map(|k| k.t), Some(3.0));
        assert_eq!(el.now(), 0.0);
        assert_eq!(el.len(), 1);
    }
}
