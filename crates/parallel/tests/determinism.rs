//! Property tests of the pool's determinism contract: ordered `par_map`
//! output, exactly-once chunk coverage, and worker-count independence.

use cta_parallel::{par_map, Parallelism, ThreadPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `par_map` returns results in submission order at every worker
    /// count, including worker counts far above the task count.
    fn par_map_is_ordered_at_any_worker_count(
        len in 0usize..200,
        jobs in 1usize..9,
        salt in 0u64..1_000_000,
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ salt).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        let got = par_map(Parallelism::jobs(jobs), &items, |x| x.wrapping_mul(0x9E37_79B9));
        prop_assert_eq!(got, expected);
    }

    /// Parallel output equals serial output element for element — the
    /// worker count is unobservable in the result.
    fn worker_count_is_unobservable(
        len in 1usize..120,
        jobs in 2usize..8,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let serial = par_map(Parallelism::serial(), &items, |&x| x * x + 1);
        let parallel = par_map(Parallelism::jobs(jobs), &items, |&x| x * x + 1);
        prop_assert_eq!(serial, parallel);
    }

    /// `par_chunks_mut` visits every element exactly once, in panels, at
    /// any chunk length and worker count.
    fn par_chunks_mut_covers_every_element_once(
        len in 1usize..300,
        chunk in 1usize..48,
        jobs in 1usize..6,
    ) {
        let mut data = vec![0u32; len];
        ThreadPool::new(Parallelism::jobs(jobs)).par_chunks_mut(&mut data, chunk, |ci, panel| {
            for x in panel.iter_mut() {
                *x += 1 + ci as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(x, 1 + (i / chunk) as u32);
        }
    }
}
