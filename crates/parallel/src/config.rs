//! The `Parallelism` knob: one type that every harness layer shares.
//!
//! Precedence, highest first: an explicit `--jobs N` flag (parsed with
//! [`Parallelism::parse_arg`]), the `CTA_JOBS` environment variable, the
//! machine's available cores. Tests and pinned baselines use
//! [`Parallelism::serial`], which runs every task inline on the calling
//! thread — no worker threads are spawned at all.

/// How many workers a pool may use. Always at least one.
///
/// `Parallelism` is a plain value (`Copy`), so harness configs can embed
/// it and thread it through to the tensor kernels without lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    jobs: usize,
}

/// Environment variable consulted by [`Parallelism::from_env`].
pub const JOBS_ENV: &str = "CTA_JOBS";

impl Parallelism {
    /// Exactly one worker: every task runs inline on the calling thread.
    ///
    /// This is the deterministic baseline configuration; the pool spawns
    /// no threads at all under it.
    #[must_use]
    pub fn serial() -> Self {
        Self { jobs: 1 }
    }

    /// Exactly `n` workers. `0` is clamped to `1` (a pool with no workers
    /// could never finish).
    #[must_use]
    pub fn jobs(n: usize) -> Self {
        Self { jobs: n.max(1) }
    }

    /// One worker per available hardware thread (falls back to `1` when
    /// the platform cannot report a count).
    #[must_use]
    pub fn available() -> Self {
        Self::jobs(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The default for harness binaries: `CTA_JOBS` if it is set to a
    /// positive integer, otherwise [`Parallelism::available`]. A present
    /// but unparseable value is ignored (it is a *default*, not an
    /// argument; `--jobs` is the strict spelling).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(JOBS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Self::jobs(n),
                _ => Self::available(),
            },
            Err(_) => Self::available(),
        }
    }

    /// Parses a `--jobs` argument: a positive integer.
    pub fn parse_arg(s: &str) -> Result<Self, String> {
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Self::jobs(n)),
            _ => Err(format!("--jobs takes a positive integer, got {s:?}")),
        }
    }

    /// The worker count (always `>= 1`).
    pub fn get(self) -> usize {
        self.jobs
    }

    /// Whether this configuration runs everything inline.
    pub fn is_serial(self) -> bool {
        self.jobs == 1
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Parallelism::jobs(0).get(), 1);
        assert!(Parallelism::jobs(0).is_serial());
        assert_eq!(Parallelism::jobs(4).get(), 4);
        assert!(!Parallelism::jobs(4).is_serial());
    }

    #[test]
    fn serial_is_one_worker() {
        assert_eq!(Parallelism::serial().get(), 1);
        assert!(Parallelism::serial().is_serial());
    }

    #[test]
    fn available_reports_at_least_one() {
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    fn parse_arg_accepts_positive_integers_only() {
        assert_eq!(Parallelism::parse_arg("3").unwrap().get(), 3);
        assert!(Parallelism::parse_arg("0").is_err());
        assert!(Parallelism::parse_arg("-2").is_err());
        assert!(Parallelism::parse_arg("four").is_err());
        assert!(Parallelism::parse_arg("").is_err());
    }

    #[test]
    fn display_is_the_worker_count() {
        assert_eq!(Parallelism::jobs(6).to_string(), "6");
    }
}
