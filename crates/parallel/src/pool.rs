//! The scoped work-stealing pool.
//!
//! Work is an index space `0..tasks`. Each worker owns a contiguous range
//! of it behind a `Mutex`; it pops from the *front* of its own range and,
//! when empty, steals the *back* half of the richest remaining range.
//! Ranges only ever shrink or move between workers, so every index is
//! executed exactly once and the pool terminates when a full scan finds
//! every range empty (any indices cut out mid-scan are already owned — and
//! will be finished — by the worker that cut them).
//!
//! Determinism contract: the *assignment* of tasks to workers and the
//! *completion order* are scheduling-dependent, but [`ThreadPool::par_map`]
//! returns results indexed by submission order and
//! [`ThreadPool::par_chunks_mut`] gives each chunk to exactly one task, so
//! a deterministic per-task function yields bitwise-identical output at
//! any worker count.

use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::Parallelism;

/// One executed task, for pool-occupancy telemetry: which worker ran which
/// task index over which wall-clock interval (seconds since the pool
/// started this batch).
///
/// Spans are wall-clock measurements and therefore *not* deterministic;
/// they never feed back into results, only into observability exports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Worker index in `0..workers`.
    pub worker: u32,
    /// Task index in `0..tasks` (the `par_map` submission index).
    pub index: usize,
    /// Start of execution, seconds since the batch began.
    pub start_s: f64,
    /// End of execution, seconds since the batch began.
    pub end_s: f64,
}

/// A scoped work-stealing thread pool.
///
/// The pool is a lightweight handle (just a worker count): each batch
/// entry point spawns its workers under [`std::thread::scope`], so tasks
/// may borrow from the caller's stack and every thread is joined before
/// the call returns. With [`Parallelism::serial`] (or a single-task
/// batch) everything runs inline on the calling thread and no thread is
/// spawned at all.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    workers: usize,
}

/// Locks ignoring poisoning: a panicking task already aborts the batch
/// (the panic is resumed after join), so surviving workers may keep
/// draining the queues in the meantime.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared index-range deques, one `[lo, hi)` per worker.
struct Ranges {
    ranges: Vec<Mutex<(usize, usize)>>,
}

impl Ranges {
    /// Splits `0..n` into `k` contiguous near-equal ranges.
    fn split(n: usize, k: usize) -> Self {
        let ranges = (0..k).map(|w| Mutex::new((w * n / k, (w + 1) * n / k))).collect();
        Self { ranges }
    }

    /// Pops the next index from worker `w`'s own range front.
    fn pop_own(&self, w: usize) -> Option<usize> {
        let mut g = lock(&self.ranges[w]);
        let (lo, hi) = *g;
        if lo < hi {
            *g = (lo + 1, hi);
            Some(lo)
        } else {
            None
        }
    }

    /// Steals the back half of the richest non-empty range, installs the
    /// remainder as worker `w`'s new range, and returns the first stolen
    /// index. `None` means every range was observed empty in one full
    /// scan — all remaining work is in the hands of running workers.
    fn steal(&self, w: usize) -> Option<usize> {
        loop {
            let mut best: Option<(usize, usize)> = None; // (victim, remaining)
            for v in 0..self.ranges.len() {
                if v == w {
                    continue;
                }
                let (lo, hi) = *lock(&self.ranges[v]);
                let rem = hi - lo;
                if rem > best.map_or(0, |(_, r)| r) {
                    best = Some((v, rem));
                }
            }
            let (victim, _) = best?;
            let (mid, hi) = {
                let mut g = lock(&self.ranges[victim]);
                let (lo, hi) = *g;
                if lo >= hi {
                    // Raced empty between the scan and the cut; rescan.
                    continue;
                }
                // Victim keeps the front half it is already streaming
                // through; the thief takes [mid, hi). rem == 1 hands the
                // single pending index to the thief (the victim is busy
                // running a task anyway).
                let mid = lo + (hi - lo) / 2;
                *g = (lo, mid);
                (mid, hi)
            };
            *lock(&self.ranges[w]) = (mid + 1, hi);
            return Some(mid);
        }
    }
}

/// Runs `n` tasks over `workers` threads, returning per-submission-index
/// results and (when `timed`) one span per task.
fn execute<R, F>(workers: usize, n: usize, timed: bool, f: &F) -> (Vec<R>, Vec<TaskSpan>)
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let epoch = Instant::now();
    let k = workers.min(n).max(1);
    if k == 1 {
        // Inline fast path: no threads, no queues, identical call order.
        let mut out = Vec::with_capacity(n);
        let mut spans = Vec::new();
        for i in 0..n {
            let start_s = timed.then(|| epoch.elapsed().as_secs_f64());
            out.push(f(0, i));
            if let Some(start_s) = start_s {
                spans.push(TaskSpan {
                    worker: 0,
                    index: i,
                    start_s,
                    end_s: epoch.elapsed().as_secs_f64(),
                });
            }
        }
        return (out, spans);
    }

    let ranges = Ranges::split(n, k);
    let worker_loop = |w: usize| {
        let mut local: Vec<(usize, R)> = Vec::new();
        let mut spans: Vec<TaskSpan> = Vec::new();
        while let Some(idx) = ranges.pop_own(w).or_else(|| ranges.steal(w)) {
            let start_s = timed.then(|| epoch.elapsed().as_secs_f64());
            let r = f(w, idx);
            if let Some(start_s) = start_s {
                spans.push(TaskSpan {
                    worker: w as u32,
                    index: idx,
                    start_s,
                    end_s: epoch.elapsed().as_secs_f64(),
                });
            }
            local.push((idx, r));
        }
        (local, spans)
    };

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut spans: Vec<TaskSpan> = Vec::new();
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..k).map(|w| s.spawn(move || worker_loop(w))).collect();
        for h in handles {
            match h.join() {
                Ok((local, local_spans)) => {
                    for (idx, r) in local {
                        debug_assert!(slots[idx].is_none(), "index {idx} executed twice");
                        slots[idx] = Some(r);
                    }
                    spans.extend(local_spans);
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            };
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    let out = slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never ran")))
        .collect();
    // Per-worker time order (each worker's spans are already monotonic);
    // stable across merges so trace export sees ordered lanes.
    spans.sort_by(|a, b| {
        (a.worker, a.start_s, a.index)
            .partial_cmp(&(b.worker, b.start_s, b.index))
            .expect("finite span times")
    });
    (out, spans)
}

impl ThreadPool {
    /// A pool handle with `par.get()` workers.
    #[must_use]
    pub fn new(par: Parallelism) -> Self {
        Self { workers: par.get() }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `tasks` indexed tasks to completion across the pool inside a
    /// thread scope: `f(worker, index)` may borrow from the caller's
    /// stack. Returns once every task has run; a panicking task is
    /// propagated after all workers have drained.
    pub fn scoped<F: Fn(usize, usize) + Sync>(&self, tasks: usize, f: F) {
        let _ = execute(self.workers, tasks, false, &|w, i| f(w, i));
    }

    /// [`ThreadPool::scoped`], additionally returning one wall-clock
    /// [`TaskSpan`] per task for pool-occupancy telemetry.
    #[must_use]
    pub fn scoped_timed<F: Fn(usize, usize) + Sync>(&self, tasks: usize, f: F) -> Vec<TaskSpan> {
        let (_, spans) = execute(self.workers, tasks, true, &|w, i| f(w, i));
        spans
    }

    /// Maps `f` over `items` on the pool, returning results **in
    /// submission order** regardless of completion order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let (out, _) = execute(self.workers, items.len(), false, &|_, i| f(&items[i]));
        out
    }

    /// [`ThreadPool::par_map`], additionally returning one wall-clock
    /// [`TaskSpan`] per task for pool-occupancy telemetry.
    pub fn par_map_timed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<TaskSpan>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        execute(self.workers, items.len(), true, &|_, i| f(&items[i]))
    }

    /// Splits `data` into contiguous chunks of `chunk_len` elements (the
    /// last may be shorter) and runs `f(chunk_index, chunk)` for each,
    /// every chunk touched by exactly one task. This is the row-panel
    /// entry point the tensor kernels use: one output panel per task,
    /// with the serial per-row arithmetic order preserved inside it.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "par_chunks_mut requires a positive chunk length");
        let chunks: Vec<Mutex<Option<&mut [T]>>> =
            data.chunks_mut(chunk_len).map(|c| Mutex::new(Some(c))).collect();
        self.scoped(chunks.len(), |_, i| {
            let chunk = lock(&chunks[i]).take().expect("each chunk is claimed exactly once");
            f(i, chunk);
        });
    }
}

/// Convenience free function: [`ThreadPool::par_map`] on a fresh pool.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ThreadPool::new(par).par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 4, 7] {
            let out = par_map(Parallelism::jobs(jobs), &items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_order_survives_skewed_task_costs() {
        // Early indices sleep, late ones return instantly: completion
        // order is roughly reversed, submission order must hold anyway.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(Parallelism::jobs(4), &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 100
        });
        assert_eq!(out, (100..116).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 1000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        ThreadPool::new(Parallelism::jobs(8)).scoped(n, |_, i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stealing_redistributes_a_skewed_front_range() {
        // All the slow work sits in worker 0's initial range; with
        // stealing, other workers finish it in well under the serial time.
        let pool = ThreadPool::new(Parallelism::jobs(4));
        let spans = pool.scoped_timed(8, |_, i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        assert_eq!(spans.len(), 8);
        let workers: std::collections::HashSet<u32> = spans.iter().map(|s| s.worker).collect();
        assert!(workers.len() > 1, "skewed load should be spread over several workers");
    }

    #[test]
    fn scoped_tasks_may_borrow_the_stack() {
        let inputs = [2usize, 3, 5, 7];
        let sums: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        ThreadPool::new(Parallelism::jobs(2)).scoped(4, |_, i| {
            sums[i].store(inputs[i] * 10, Ordering::Relaxed);
        });
        let got: Vec<usize> = sums.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![20, 30, 50, 70]);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_exactly_once() {
        let mut data = vec![0u32; 103];
        ThreadPool::new(Parallelism::jobs(4)).par_chunks_mut(&mut data, 10, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + ci as u32;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (i / 10) as u32, "element {i}");
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_chunks() {
        let serial: Vec<u64> = {
            let mut d: Vec<u64> = (0..57).collect();
            for (ci, chunk) in d.chunks_mut(8).enumerate() {
                for x in chunk.iter_mut() {
                    *x = *x * 7 + ci as u64;
                }
            }
            d
        };
        let mut parallel: Vec<u64> = (0..57).collect();
        ThreadPool::new(Parallelism::jobs(3)).par_chunks_mut(&mut parallel, 8, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = *x * 7 + ci as u64;
            }
        });
        assert_eq!(parallel, serial);
    }

    #[test]
    #[should_panic(expected = "positive chunk length")]
    fn par_chunks_mut_rejects_zero_chunk_len() {
        ThreadPool::new(Parallelism::serial()).par_chunks_mut(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn timed_spans_cover_every_task_with_ordered_lanes() {
        let pool = ThreadPool::new(Parallelism::jobs(3));
        let spans = pool.scoped_timed(24, |_, _| {
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert_eq!(spans.len(), 24);
        let mut seen: Vec<usize> = spans.iter().map(|s| s.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
        for s in &spans {
            assert!(s.end_s >= s.start_s && s.start_s >= 0.0);
            assert!((s.worker as usize) < 3);
        }
        // Within one worker the spans are time-ordered (what the Chrome
        // exporter requires of a lane).
        for pair in spans.windows(2) {
            if pair[0].worker == pair[1].worker {
                assert!(pair[0].start_s <= pair[1].start_s);
            }
        }
    }

    #[test]
    fn empty_and_single_task_batches_run_inline() {
        let out: Vec<u8> = par_map(Parallelism::jobs(8), &[], |_: &u8| unreachable!());
        assert!(out.is_empty());
        let one = par_map(Parallelism::jobs(8), &[41u64], |&x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let result = std::panic::catch_unwind(|| {
            ThreadPool::new(Parallelism::jobs(2)).scoped(8, |_, i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
            });
        });
        assert!(result.is_err(), "pool must re-raise a task panic");
    }
}
