#![deny(missing_docs)]

//! # cta-parallel — a deterministic scoped work-stealing thread pool
//!
//! Every hot path in the workspace — the Fig. 11/12 ten-case grids, the
//! `serve_sweep`/`degradation_sweep`/`brownout_sweep` replica×load×MTBF
//! grids, and the row-panel tensor kernels — fans out over *independent*
//! units of work. This crate supplies the one piece of machinery they all
//! share: a dependency-free (std-only, the build has no registry access)
//! scoped thread pool with three invariants:
//!
//! 1. **Determinism** — [`ThreadPool::par_map`] returns results in
//!    submission order no matter which worker finished which task first,
//!    and [`ThreadPool::par_chunks_mut`] hands each chunk to exactly one
//!    task. A caller whose per-task function is itself deterministic gets
//!    bitwise-identical output at any `--jobs` value, which is what lets
//!    the golden-file sweep pins survive parallelisation.
//! 2. **Work stealing** — tasks are distributed as per-worker index
//!    ranges; an idle worker steals the upper half of the richest
//!    remaining range, so skewed task costs (a slow DSE corner, one
//!    overloaded sweep point) don't serialise the run.
//! 3. **Scoped borrows** — everything runs under [`std::thread::scope`],
//!    so tasks may borrow from the caller's stack; no `'static` bounds,
//!    no `Arc` plumbing.
//!
//! Worker counts come from one place, [`Parallelism`]: `--jobs N` on the
//! harness CLIs, the `CTA_JOBS` environment variable, or the machine's
//! available cores, with [`Parallelism::serial`] for tests and pinned
//! baselines. Pool occupancy is observable: the `_timed` entry points
//! also return one [`TaskSpan`] per task, which `cta-telemetry` renders
//! as per-worker Chrome-trace lanes.
//!
//! # Example
//!
//! ```
//! use cta_parallel::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::jobs(4), &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // submission order, always
//! ```

mod config;
mod pool;

pub use config::Parallelism;
pub use pool::{par_map, TaskSpan, ThreadPool};
