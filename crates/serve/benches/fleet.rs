//! Step-granular vs event-driven fleet simulation wall-clock.
//!
//! Both engines produce bitwise-identical reports (the `engine`
//! integration tests pin that); this bench tracks what the calendar
//! queue buys in wall-clock as the fleet grows. The step engine rescans
//! all replicas per iteration, so its advantage-to-deficit crossover
//! moves with the replica count — hence the two fleet sizes.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use cta_serve::{
    poisson_requests, simulate_fleet, AdmissionPolicy, BatchPolicy, FleetConfig, FleetEngine,
    LoadSpec, RoutingPolicy,
};
use cta_sim::{AttentionTask, SystemConfig};

fn config(replicas: usize, engine: FleetEngine) -> FleetConfig {
    FleetConfig::builder(SystemConfig::paper())
        .replicas(replicas)
        .engine(engine)
        .routing(RoutingPolicy::RoundRobin)
        .batch(BatchPolicy::up_to(4))
        .admission(AdmissionPolicy::bounded(32))
        .build()
        .expect("valid bench fleet")
}

fn bench_fleet(c: &mut Criterion) {
    let spec = LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 2, 4);
    for replicas in [8usize, 64] {
        let requests = poisson_requests(&spec, 4 * replicas, 6_000.0 * replicas as f64, 7);
        for engine in [FleetEngine::StepGranular, FleetEngine::EventDriven] {
            let cfg = config(replicas, engine);
            let name = format!("fleet/{}rep_{}", replicas, engine.label());
            c.bench_function(&name, |b| {
                b.iter(|| black_box(simulate_fleet(&cfg, black_box(&requests))));
            });
        }
    }
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
