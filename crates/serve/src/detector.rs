//! Deterministic phi-accrual failure detection and quarantine.
//!
//! The detector watches what a real load balancer could watch: the
//! stream of per-replica *completion* times. Two suspicion signals feed
//! a shared quarantine state:
//!
//! * **Silence** (phi accrual, Hayashibara et al.): per replica the
//!   detector keeps a sliding window of completion inter-arrival times
//!   and computes `phi = log10(e) · elapsed / mean_interval` — the
//!   exponential-model suspicion that a replica *with outstanding work*
//!   has gone this long without completing anything. Crossing
//!   [`DetectorPolicy::phi_threshold`] quarantines the replica. Idle
//!   replicas (no queued or active work) are never suspected: silence is
//!   only evidence when something should have finished.
//! * **Gray slowness**: a replica whose mean completion interval exceeds
//!   [`DetectorPolicy::gray_ratio`] × the mean of the *other* replicas
//!   is completing — so phi stays low — but pathologically slowly.
//!
//! A quarantined replica is removed from the routable mask for
//! [`DetectorPolicy::probation_s`] seconds, then re-admitted on
//! probation with a fresh observation window (it must mis-behave over
//! [`DetectorPolicy::min_samples`] fresh completions to be quarantined
//! again, which guarantees probe traffic actually flows).
//!
//! Everything here is a pure function of event-time inputs evaluated
//! inside the shared engine handlers, so both fleet drivers observe the
//! identical mask sequence and stay bitwise equal. With
//! `FleetConfig::detector = None` the bank is never constructed and the
//! fleet reproduces the detector-less runtime bit for bit (pinned by
//! golden tests).

use crate::fault::FaultPlan;
use crate::replica::Replica;
use cta_telemetry::{Module, SpanClass, TraceSink, TrackId};

/// log10(e): converts exponential log-likelihood to the phi scale.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Failure-detector configuration. `None` anywhere a
/// [`FleetConfig`](crate::FleetConfig) carries it means *no detector*:
/// routing trusts `up` alone, bitwise identical to the pre-detector
/// fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorPolicy {
    /// Quarantine when phi exceeds this (phi 4 ≈ silence longer than
    /// 9.2× the mean completion interval).
    pub phi_threshold: f64,
    /// Sliding-window length of inter-arrival samples per replica.
    pub window: usize,
    /// Minimum samples before either suspicion signal may fire.
    pub min_samples: usize,
    /// Quarantine duration before probation re-admits the replica.
    pub probation_s: f64,
    /// Gray-failure trigger: quarantine when the replica's mean
    /// completion interval exceeds `ratio` × the mean of the other
    /// replicas. `None` disables the slowness signal (silence only).
    pub gray_ratio: Option<f64>,
}

impl DetectorPolicy {
    /// Production defaults: phi 4 over a 32-sample window (≥ 4 samples),
    /// 0.5 s probation, gray trigger at 4× fleet-relative slowness.
    pub fn standard() -> Self {
        Self {
            phi_threshold: 4.0,
            window: 32,
            min_samples: 4,
            probation_s: 0.5,
            gray_ratio: Some(4.0),
        }
    }

    /// Checks the policy for structural validity.
    ///
    /// # Panics
    ///
    /// Panics if any threshold is non-positive or non-finite, or the
    /// window cannot hold `min_samples`.
    pub fn validate(&self) {
        assert!(
            self.phi_threshold > 0.0 && self.phi_threshold.is_finite(),
            "phi threshold must be positive and finite"
        );
        assert!(self.window > 0, "window must hold at least one sample");
        assert!(
            self.min_samples > 0 && self.min_samples <= self.window,
            "min_samples must be in 1..=window"
        );
        assert!(
            self.probation_s > 0.0 && self.probation_s.is_finite(),
            "probation must be positive and finite"
        );
        if let Some(r) = self.gray_ratio {
            assert!(r > 1.0 && r.is_finite(), "gray ratio must exceed 1");
        }
    }
}

/// Detection-quality metrics, filled at end of run by matching the
/// quarantine log against the fault plan's ground-truth windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectorStats {
    /// Total quarantine entries across replicas.
    pub quarantines: usize,
    /// Quarantines that fired while *no* fault window covered the
    /// replica (the detector cried wolf).
    pub false_quarantines: usize,
    /// Mean detection latency over true quarantines, seconds: quarantine
    /// instant minus the onset of the covering fault window. `0.0` when
    /// nothing was detected.
    pub mean_detection_latency_s: f64,
    /// Worst detection latency over true quarantines, seconds.
    pub max_detection_latency_s: f64,
}

/// Per-replica observation window and quarantine state.
#[derive(Debug, Clone)]
struct ReplicaDetector {
    /// Last completion (or probation probe) instant.
    last_s: Option<f64>,
    /// Sliding window of positive inter-arrival samples (ring buffer).
    intervals: Vec<f64>,
    /// Next ring slot to overwrite once the window is full.
    next: usize,
    /// Quarantine in force until this instant (`None` = routable).
    quarantined_until: Option<f64>,
    /// When the current quarantine began.
    quarantine_from: f64,
    /// Every quarantine entry instant (for end-of-run stats).
    entries: Vec<f64>,
}

impl ReplicaDetector {
    fn new(window: usize) -> Self {
        Self {
            last_s: None,
            intervals: Vec::with_capacity(window),
            next: 0,
            quarantined_until: None,
            quarantine_from: 0.0,
            entries: Vec::new(),
        }
    }

    /// Mean inter-arrival over the window, or `None` below `min_samples`.
    fn mean_interval(&self, min_samples: usize) -> Option<f64> {
        if self.intervals.len() < min_samples {
            return None;
        }
        Some(self.intervals.iter().sum::<f64>() / self.intervals.len() as f64)
    }
}

/// The fleet's failure detector: one observation window per replica plus
/// the shared policy. Owned by the engine only when
/// `FleetConfig::detector` is set.
#[derive(Debug, Clone)]
pub(crate) struct DetectorBank {
    policy: DetectorPolicy,
    states: Vec<ReplicaDetector>,
}

impl DetectorBank {
    pub fn new(policy: DetectorPolicy, replicas: usize) -> Self {
        policy.validate();
        Self {
            policy,
            states: (0..replicas).map(|_| ReplicaDetector::new(policy.window)).collect(),
        }
    }

    /// Feeds one completion observation for `replica` at `t_s`.
    /// Same-instant siblings (a batch retiring several requests in one
    /// step) contribute a single sample: zero-width intervals are
    /// dropped so burstiness cannot crush the mean to zero.
    pub fn observe(&mut self, replica: usize, t_s: f64) {
        let st = &mut self.states[replica];
        if let Some(last) = st.last_s {
            let dt = t_s - last;
            if dt > 0.0 {
                if st.intervals.len() < self.policy.window {
                    st.intervals.push(dt);
                } else {
                    st.intervals[st.next] = dt;
                }
                st.next = (st.next + 1) % self.policy.window;
            }
            if t_s > last {
                st.last_s = Some(t_s);
            }
        } else {
            st.last_s = Some(t_s);
        }
    }

    /// The routable mask as of `now`: advances quarantine/probation state
    /// and evaluates both suspicion signals. `false` = quarantined.
    pub fn mask<S: TraceSink>(
        &mut self,
        replicas: &[Replica],
        now: f64,
        sink: &mut S,
    ) -> Vec<bool> {
        let min_samples = self.policy.min_samples;
        // Per-replica means, fixed before any state advances: the gray
        // signal compares against the *other* replicas' means.
        let means: Vec<Option<f64>> =
            self.states.iter().map(|s| s.mean_interval(min_samples)).collect();
        let mut out = Vec::with_capacity(self.states.len());
        for i in 0..self.states.len() {
            let st = &mut self.states[i];
            if let Some(until) = st.quarantined_until {
                if now < until {
                    out.push(false);
                    continue;
                }
                // Probation over: re-admit with a fresh window. The probe
                // resets the silence clock, and `min_samples` fresh
                // completions must accrue before either signal may fire
                // again — so probe traffic actually reaches the replica.
                st.quarantined_until = None;
                st.last_s = Some(st.last_s.map_or(now, |l| l.max(now)));
                st.intervals.clear();
                st.next = 0;
                if S::ENABLED {
                    let track = TrackId::new(i as u32, Module::Chaos);
                    sink.span(track, "quarantine", st.quarantine_from, now, SpanClass::Fault, true);
                    sink.instant(track, "probe-readmit", now);
                }
                out.push(true);
                continue;
            }
            // Crashed replicas are the runtime's problem (`up` already
            // excludes them from routing); quarantining them would only
            // pollute the false-positive count.
            if !replicas[i].up {
                out.push(true);
                continue;
            }
            let Some(mean) = means[i] else {
                out.push(true);
                continue;
            };
            // Silence: only replicas with outstanding work can be
            // suspiciously quiet.
            let mut suspect = false;
            if replicas[i].load() > 0 {
                if let Some(last) = st.last_s {
                    let phi = LOG10_E * (now - last) / mean;
                    suspect = phi > self.policy.phi_threshold;
                }
            }
            // Gray slowness, relative to the rest of the fleet.
            if !suspect {
                if let Some(ratio) = self.policy.gray_ratio {
                    let (sum, n) = means
                        .iter()
                        .enumerate()
                        .filter(|&(j, m)| j != i && m.is_some())
                        .fold((0.0, 0usize), |(s, n), (_, m)| (s + m.unwrap(), n + 1));
                    if n > 0 {
                        suspect = mean > ratio * (sum / n as f64);
                    }
                }
            }
            if suspect {
                st.quarantined_until = Some(now + self.policy.probation_s);
                st.quarantine_from = now;
                st.entries.push(now);
                if S::ENABLED {
                    let track = TrackId::new(i as u32, Module::Chaos);
                    sink.instant(track, "quarantine", now);
                }
                out.push(false);
            } else {
                out.push(true);
            }
        }
        out
    }

    /// End-of-run: closes quarantine spans still open at the makespan.
    pub fn close_spans<S: TraceSink>(&self, makespan_s: f64, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        for (i, st) in self.states.iter().enumerate() {
            if st.quarantined_until.is_some() {
                let track = TrackId::new(i as u32, Module::Chaos);
                let end = makespan_s.max(st.quarantine_from);
                sink.span(track, "quarantine", st.quarantine_from, end, SpanClass::Fault, true);
            }
        }
    }

    /// Classifies the quarantine log against the plan's ground-truth
    /// fault windows: a quarantine of replica `r` at `t` is *true* when
    /// some fault window on `r` covers `t`, with detection latency
    /// `t - onset` of the latest covering window.
    pub fn stats(&self, plan: &FaultPlan) -> DetectorStats {
        let windows = plan.fault_windows();
        let mut stats = DetectorStats::default();
        let mut latency_sum = 0.0;
        let mut detected = 0usize;
        for (replica, st) in self.states.iter().enumerate() {
            for &t in &st.entries {
                stats.quarantines += 1;
                let onset = windows
                    .iter()
                    .filter(|&&(r, s, e)| r == replica && s <= t && t <= e)
                    .map(|&(_, s, _)| s)
                    .fold(f64::NEG_INFINITY, f64::max);
                if onset.is_finite() {
                    let latency = t - onset;
                    latency_sum += latency;
                    detected += 1;
                    stats.max_detection_latency_s = stats.max_detection_latency_s.max(latency);
                } else {
                    stats.false_quarantines += 1;
                }
            }
        }
        if detected > 0 {
            stats.mean_detection_latency_s = latency_sum / detected as f64;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_telemetry::NullSink;

    fn fed_bank(replicas: usize, completions_every_s: f64, upto_s: f64) -> DetectorBank {
        let mut bank = DetectorBank::new(DetectorPolicy::standard(), replicas);
        for r in 0..replicas {
            let mut t = 0.0;
            while t < upto_s {
                bank.observe(r, t);
                t += completions_every_s;
            }
        }
        bank
    }

    fn idle_fleet(n: usize) -> Vec<Replica> {
        let system = cta_sim::CtaSystem::new(cta_sim::SystemConfig::paper());
        (0..n).map(|i| Replica::new(i, system.clone())).collect()
    }

    #[test]
    fn silence_without_work_is_not_suspicious() {
        let mut bank = fed_bank(2, 0.1, 1.0);
        let replicas = idle_fleet(2);
        let mut sink = NullSink;
        // 100 s of silence, but the replicas are idle: no quarantine.
        let mask = bank.mask(&replicas, 100.0, &mut sink);
        assert_eq!(mask, vec![true, true]);
    }

    #[test]
    fn silence_with_outstanding_work_quarantines_then_readmits() {
        let mut bank = fed_bank(2, 0.1, 1.0);
        let mut replicas = idle_fleet(2);
        // Replica 0 owes work but has gone quiet.
        let spec = crate::LoadSpec::standard(
            cta_sim::AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6),
            2,
            4,
        );
        replicas[0].enqueue(crate::replica::Pending::fresh(
            crate::poisson_requests(&spec, 1, 1.0, 1).remove(0),
            0.1,
        ));
        let mut sink = NullSink;
        let mask = bank.mask(&replicas, 100.0, &mut sink);
        assert_eq!(mask, vec![false, true], "quiet replica with work is quarantined");
        // Still quarantined inside probation...
        let probation = DetectorPolicy::standard().probation_s;
        assert_eq!(bank.mask(&replicas, 100.0 + probation / 2.0, &mut sink), vec![false, true]);
        // ...re-admitted after, with a cleared window (no instant re-trip).
        assert_eq!(bank.mask(&replicas, 100.0 + probation, &mut sink), vec![true, true]);
        assert_eq!(bank.mask(&replicas, 101.0 + probation, &mut sink), vec![true, true]);
    }

    #[test]
    fn gray_slowness_relative_to_fleet_quarantines() {
        let mut bank = DetectorBank::new(DetectorPolicy::standard(), 3);
        for t in 0..20 {
            bank.observe(0, t as f64 * 0.1);
            bank.observe(1, t as f64 * 0.1);
            bank.observe(2, t as f64 * 1.0); // 10× slower than its peers
        }
        let replicas = idle_fleet(3);
        let mut sink = NullSink;
        let mask = bank.mask(&replicas, 19.01, &mut sink);
        assert_eq!(mask, vec![true, true, false], "gray replica quarantined without silence");
    }

    #[test]
    fn stats_classify_true_and_false_quarantines() {
        let mut bank = DetectorBank::new(DetectorPolicy::standard(), 2);
        bank.states[0].entries = vec![5.0];
        bank.states[1].entries = vec![5.0];
        let plan = FaultPlan {
            partitions: vec![crate::Partition { replica: 0, from_s: 4.0, until_s: 6.0 }],
            ..FaultPlan::none()
        };
        let stats = bank.stats(&plan);
        assert_eq!(stats.quarantines, 2);
        assert_eq!(stats.false_quarantines, 1, "replica 1 had no fault");
        assert_eq!(stats.mean_detection_latency_s, 1.0);
        assert_eq!(stats.max_detection_latency_s, 1.0);
    }

    #[test]
    #[should_panic(expected = "gray ratio must exceed 1")]
    fn policy_rejects_sub_unity_gray_ratio() {
        DetectorPolicy { gray_ratio: Some(0.5), ..DetectorPolicy::standard() }.validate();
    }
}
