//! SLO-aware admission control.
//!
//! Admission is evaluated once per request, at arrival, against the
//! replica the router selected. Two independent shedding mechanisms:
//!
//! * **queue-depth shedding** — reject when the replica's queue already
//!   holds `max_queue_depth` requests, unless the request's class
//!   priority reaches `depth_exempt_priority` (lets interactive traffic
//!   push past a backlog of batch work);
//! * **deadline shedding** — reject when the estimated completion time
//!   (queueing + service, from the [`CostModel`](crate::CostModel))
//!   already exceeds the class deadline, so doomed work never occupies
//!   the accelerators.

use crate::QosClass;

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The target replica's queue was at `max_queue_depth`.
    QueueFull,
    /// The class deadline could not be met even if admitted.
    DeadlineUnmeetable,
    /// A replica crash orphaned the request and it could not be placed
    /// again: no healthy replica was available, the retry budget ran out,
    /// or the deadline could no longer be met after requeueing.
    ReplicaLost,
    /// The owning tenant's token-bucket quota was exhausted; the request
    /// was rejected at arrival, before occupying any queue space.
    QuotaExceeded,
    /// The request's decode session was lost: a crash evicted the
    /// session's compression state and the turn could not re-prefill
    /// elsewhere under the retry budget, or an earlier turn of the same
    /// session was shed. Later turns of a lost session shed with this
    /// reason at arrival.
    SessionLost,
}

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet running) requests per replica; `None`
    /// disables depth shedding.
    pub max_queue_depth: Option<usize>,
    /// Classes at or above this priority bypass depth shedding; `None`
    /// means no class bypasses it.
    pub depth_exempt_priority: Option<u8>,
    /// Whether to shed requests whose class deadline is already
    /// unmeetable at arrival.
    pub enforce_deadlines: bool,
}

impl AdmissionPolicy {
    /// Admit everything (the compatibility behaviour of
    /// `cta_sim::simulate_serving`).
    pub fn admit_all() -> Self {
        Self { max_queue_depth: None, depth_exempt_priority: None, enforce_deadlines: true }
    }

    /// Depth-bounded queues with deadline enforcement: the configuration
    /// a production front-end would run.
    ///
    /// # Panics
    ///
    /// Panics if `max_queue_depth == 0` (a zero-depth queue could never
    /// admit anything while a replica is busy).
    pub fn bounded(max_queue_depth: usize) -> Self {
        assert!(max_queue_depth > 0, "queue depth must be positive");
        Self {
            max_queue_depth: Some(max_queue_depth),
            depth_exempt_priority: Some(200),
            enforce_deadlines: true,
        }
    }

    /// Decides admission for a request of `class` whose target replica
    /// currently queues `queue_depth` requests and would complete it an
    /// estimated `est_latency_s` after its arrival.
    pub fn admit(
        &self,
        class: &QosClass,
        queue_depth: usize,
        est_latency_s: f64,
    ) -> Result<(), ShedReason> {
        if let Some(max) = self.max_queue_depth {
            let exempt = self.depth_exempt_priority.is_some_and(|p| class.priority >= p);
            if !exempt && queue_depth >= max {
                return Err(ShedReason::QueueFull);
            }
        }
        if self.enforce_deadlines {
            if let Some(deadline) = class.deadline_s {
                if est_latency_s > deadline {
                    return Err(ShedReason::DeadlineUnmeetable);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_all_admits_everything_without_deadline() {
        let p = AdmissionPolicy::admit_all();
        assert_eq!(p.admit(&QosClass::batch(), 10_000, 1e9), Ok(()));
    }

    #[test]
    fn depth_shedding_triggers_at_limit() {
        let p = AdmissionPolicy::bounded(4);
        let c = QosClass::standard();
        assert_eq!(p.admit(&c, 3, 0.0), Ok(()));
        assert_eq!(p.admit(&c, 4, 0.0), Err(ShedReason::QueueFull));
    }

    #[test]
    fn priority_exactly_at_the_exemption_threshold_is_exempt() {
        // The contract is `priority >= depth_exempt_priority`: equality
        // bypasses depth shedding, one below does not — even against a
        // queue far past its limit.
        let mut p = AdmissionPolicy::bounded(2);
        p.depth_exempt_priority = Some(150);
        let at = QosClass { name: "edge", priority: 150, deadline_s: None };
        let below = QosClass { name: "edge", priority: 149, deadline_s: None };
        assert_eq!(p.admit(&at, 1_000, 0.0), Ok(()));
        assert_eq!(p.admit(&below, 1_000, 0.0), Err(ShedReason::QueueFull));
        // The boundary moves with the policy, not the class.
        p.depth_exempt_priority = Some(151);
        assert_eq!(p.admit(&at, 1_000, 0.0), Err(ShedReason::QueueFull));
    }

    #[test]
    fn exemption_disabled_sheds_even_the_highest_priority() {
        let mut p = AdmissionPolicy::bounded(1);
        p.depth_exempt_priority = None;
        let top = QosClass { name: "edge", priority: u8::MAX, deadline_s: None };
        assert_eq!(p.admit(&top, 1, 0.0), Err(ShedReason::QueueFull));
        assert_eq!(p.admit(&top, 0, 0.0), Ok(()));
    }

    #[test]
    fn interactive_bypasses_depth_but_not_deadline() {
        let p = AdmissionPolicy::bounded(2);
        let c = QosClass::interactive(1.0);
        assert_eq!(p.admit(&c, 100, 0.5), Ok(()));
        assert_eq!(p.admit(&c, 100, 1.5), Err(ShedReason::DeadlineUnmeetable));
    }

    #[test]
    fn deadline_shedding_respects_estimate() {
        let p = AdmissionPolicy::admit_all();
        let c = QosClass::interactive(0.010);
        assert_eq!(p.admit(&c, 0, 0.009), Ok(()));
        assert_eq!(p.admit(&c, 0, 0.011), Err(ShedReason::DeadlineUnmeetable));
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_depth_rejected() {
        let _ = AdmissionPolicy::bounded(0);
    }
}
