//! Streaming-decode session sweep: goodput, tail latency, inter-token
//! latency and state-rebuild rate across session count × turn length ×
//! re-cluster threshold.
//!
//! Each grid point plays a seeded multi-turn session trace
//! ([`cta_workloads::session_trace`]: Poisson session arrivals,
//! geometric turn counts, exponential think time, Pareto decode
//! lengths) through a sticky-routed fleet
//! ([`crate::SessionPolicy::sticky`]). Decode turns are priced
//! incrementally (`cta_sim::schedule_decode`); the re-cluster threshold
//! sets how often accumulated drift forces a level-2 rebuild
//! (`cta_sim::reclusters_for`), so tighter thresholds trade inter-token
//! latency for compression freshness. `--mtbf-factor` (span-relative,
//! `inf` = healthy) schedules crashes, exercising the session-eviction
//! path: moved sessions pay a state re-prefill, lost ones shed as
//! [`crate::ShedReason::SessionLost`].
//!
//! ```text
//! decode_sweep [--sessions 16,48] [--turns 4] [--thresholds 0.25,1.0]
//!              [--arrival-rate 2000] [--think-ms 1] [--drift 0.02]
//!              [--replicas 3] [--policy sticky|stateless]
//!              [--mtbf-factor inf] [--mttr-factor 0.02]
//!              [--seed 7] [--engine step|event] [--trace <path.json>]
//!              [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! **Outputs.** The stdout table and `results/decode_sweep.{csv,json}`
//! are deterministic for a fixed `--seed` at any `--jobs` value and
//! under either engine (session bookkeeping lives in the shared
//! handlers). Wall-clock timings go to `results/BENCH_decode.json`,
//! merged per (git SHA, date) so the file keeps a trajectory across
//! PRs. With `--trace <path>` the final point is re-run traced —
//! session re-prefills appear as compression-class spans and lost
//! sessions as instants on the runtime lane.

use std::process::ExitCode;
use std::sync::Mutex;

use cta_bench::{parse_list, parse_num, BenchSidecar, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::SystemConfig;
use cta_workloads::{case_task, mini_case, SessionSpec};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    session_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    FaultPlan, FleetConfig, FleetEngine, LoadSpec, RoutingPolicy, ServeRequest, SessionPolicy,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: decode_sweep [--sessions 16,48] [--turns 4] [--thresholds 0.25,1.0]
                    [--arrival-rate 2000] [--think-ms 1] [--drift 0.02]
                    [--replicas 3] [--policy sticky|stateless]
                    [--mtbf-factor inf] [--mttr-factor 0.02]
                    [--seed 7] [--engine step|event] [--trace <path.json>]
                    [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &[
    "sessions",
    "mean_turns",
    "threshold",
    "turns",
    "completed",
    "shed",
    "goodput_rps",
    "p99_ms",
    "itl_ms",
    "re_prefill_rate",
    "sessions_lost",
    "schema_version",
];

#[derive(Debug)]
struct Args {
    sessions: Vec<usize>,
    turns: Vec<f64>,
    thresholds: Vec<f64>,
    arrival_rate: f64,
    think_ms: f64,
    drift: f64,
    replicas: usize,
    policy: SessionPolicy,
    mtbf_factor: f64,
    mttr_factor: f64,
    seed: u64,
    engine: FleetEngine,
    trace: Option<String>,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            sessions: vec![16, 48],
            turns: vec![4.0],
            thresholds: vec![0.25, 1.0],
            arrival_rate: 2_000.0,
            think_ms: 1.0,
            drift: 0.02,
            replicas: 3,
            policy: SessionPolicy::sticky(),
            mtbf_factor: f64::INFINITY,
            mttr_factor: 0.02,
            seed: 7,
            engine: FleetEngine::StepGranular,
            trace: None,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--sessions" => {
                    args.sessions = parse_list(&it.value("--sessions")?, "--sessions", "integers")?;
                }
                "--turns" => {
                    args.turns = parse_list(&it.value("--turns")?, "--turns", "numbers")?;
                }
                "--thresholds" => {
                    args.thresholds =
                        parse_list(&it.value("--thresholds")?, "--thresholds", "numbers")?;
                }
                "--arrival-rate" => {
                    args.arrival_rate =
                        parse_num(&it.value("--arrival-rate")?, "--arrival-rate", "a number")?;
                }
                "--think-ms" => {
                    args.think_ms = parse_num(&it.value("--think-ms")?, "--think-ms", "a number")?;
                }
                "--drift" => {
                    args.drift = parse_num(&it.value("--drift")?, "--drift", "a number")?;
                }
                "--replicas" => {
                    args.replicas =
                        parse_num(&it.value("--replicas")?, "--replicas", "an integer")?;
                }
                "--policy" => {
                    let v = it.value("--policy")?;
                    args.policy = match v.as_str() {
                        "sticky" => SessionPolicy::sticky(),
                        "stateless" => SessionPolicy::stateless(),
                        _ => return Err(format!("unknown policy {v:?} (sticky|stateless)")),
                    };
                }
                "--mtbf-factor" => {
                    args.mtbf_factor =
                        parse_num(&it.value("--mtbf-factor")?, "--mtbf-factor", "a number")?;
                }
                "--mttr-factor" => {
                    args.mttr_factor =
                        parse_num(&it.value("--mttr-factor")?, "--mttr-factor", "a number")?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.sessions.is_empty() || args.sessions.contains(&0) {
            return Err("--sessions must be a non-empty list of positive integers".into());
        }
        if args.turns.is_empty() || args.turns.iter().any(|&t| !(t >= 1.0 && t.is_finite())) {
            return Err("--turns must be a non-empty list of numbers >= 1".into());
        }
        // `inf` is a legal threshold (= re-clustering disabled).
        if args.thresholds.is_empty() || args.thresholds.iter().any(|&t| t.is_nan() || t <= 0.0) {
            return Err("--thresholds must be a non-empty list of positive numbers (inf ok)".into());
        }
        if !(args.arrival_rate > 0.0 && args.arrival_rate.is_finite()) {
            return Err("--arrival-rate must be positive and finite".into());
        }
        if !(args.think_ms > 0.0 && args.think_ms.is_finite()) {
            return Err("--think-ms must be positive and finite".into());
        }
        if !(args.drift >= 0.0 && args.drift.is_finite()) {
            return Err("--drift must be non-negative and finite".into());
        }
        if args.replicas == 0 {
            return Err("--replicas must be positive".into());
        }
        if args.mtbf_factor.is_nan() || args.mtbf_factor <= 0.0 {
            return Err("--mtbf-factor must be positive (inf ok)".into());
        }
        if !(args.mttr_factor > 0.0 && args.mttr_factor.is_finite()) {
            return Err("--mttr-factor must be positive and finite".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("decode_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(argv, Args::parse, run)
}

/// The session trace for one grid point.
fn point_requests(
    spec: &LoadSpec,
    args: &Args,
    sessions: usize,
    mean_turns: f64,
) -> impl Fn(f64) -> Vec<ServeRequest> + use<> {
    let spec = *spec;
    let turns = SessionSpec::new(sessions, args.arrival_rate, mean_turns, args.think_ms * 1e-3);
    let (drift, seed) = (args.drift, args.seed);
    move |threshold| session_requests(&spec, &turns, drift, threshold, seed)
}

fn point_config(args: &Args, requests: &[ServeRequest]) -> FleetConfig {
    let mut cfg = FleetConfig::builder(SystemConfig::paper())
        .replicas(args.replicas)
        .routing(RoutingPolicy::LeastOutstandingWork)
        .admission(AdmissionPolicy::bounded(64))
        .batch(BatchPolicy::up_to(4))
        .engine(args.engine)
        .sessions(args.policy)
        .build()
        .expect("the decode sweep fleet is always valid");
    if args.mtbf_factor.is_finite() {
        let span = requests.last().map(|r| r.arrival_s).unwrap_or(0.0).max(1e-6);
        cfg.faults = FaultPlan::seeded(
            args.replicas,
            2.0 * span,
            args.mtbf_factor * span,
            args.mttr_factor * span,
            args.seed,
        );
    }
    cfg
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    // Wall-clock per point, out-of-band so the pinned CSV/JSON stay
    // deterministic. (grid index, turns simulated, wall_s).
    let timings: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(Vec::new());

    let mut grid: Vec<(usize, usize, f64, f64)> = Vec::new();
    for &sessions in &args.sessions {
        for &mean_turns in &args.turns {
            for &threshold in &args.thresholds {
                grid.push((grid.len(), sessions, mean_turns, threshold));
            }
        }
    }

    h.run_grid(
        &format!(
            "Decode sweep — {} sessions over {} replicas, engine {}, drift {}/token",
            if args.policy.sticky { "sticky" } else { "stateless" },
            args.replicas,
            args.engine.label(),
            args.drift
        ),
        &grid,
        |&(index, sessions, mean_turns, threshold)| {
            let mut out = PointOutput::new();
            let requests = point_requests(&spec, args, sessions, mean_turns)(threshold);
            let cfg = point_config(args, &requests);
            let start = std::time::Instant::now();
            let report = simulate_fleet(&cfg, &requests);
            let wall_s = start.elapsed().as_secs_f64();
            timings.lock().expect("timings").push((index, requests.len(), wall_s));
            let m = &report.metrics;
            assert_eq!(m.completed + m.shed, requests.len(), "turn accounting identity");
            let s = m.sessions.as_ref().expect("session fleets report session stats");
            let p99 = m.latency.as_ref().map_or(f64::NAN, |l| l.p99_s);
            out.row(vec![
                sessions.to_string(),
                format!("{mean_turns:.1}"),
                format!("{threshold}"),
                requests.len().to_string(),
                m.completed.to_string(),
                m.shed.to_string(),
                format!("{:.1}", m.goodput_rps),
                format!("{:.3}", p99 * 1e3),
                format!("{:.4}", s.mean_itl_s * 1e3),
                format!("{:.3}", s.re_prefill_rate),
                s.sessions_lost.to_string(),
                SCHEMA_VERSION.to_string(),
            ]);
            out.point(JsonValue::obj(vec![
                ("sessions", JsonValue::Int(sessions as i64)),
                ("mean_turns", JsonValue::Num(mean_turns)),
                (
                    "threshold",
                    if threshold.is_finite() { JsonValue::Num(threshold) } else { JsonValue::Null },
                ),
                ("turns", JsonValue::Int(requests.len() as i64)),
                ("completed", JsonValue::Int(m.completed as i64)),
                ("shed", JsonValue::Int(m.shed as i64)),
                ("goodput_rps", JsonValue::Num(m.goodput_rps)),
                ("p99_s", JsonValue::Num(p99)),
                ("mean_itl_s", JsonValue::Num(s.mean_itl_s)),
                ("p99_itl_s", JsonValue::Num(s.p99_itl_s)),
                ("re_prefills", JsonValue::Int(s.re_prefills as i64)),
                ("re_prefill_rate", JsonValue::Num(s.re_prefill_rate)),
                ("sessions_lost", JsonValue::Int(s.sessions_lost as i64)),
                ("turns_shed", JsonValue::Int(s.turns_shed as i64)),
                ("events", JsonValue::Int(report.events_processed as i64)),
            ]));
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("decode_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("engine", JsonValue::Str(args.engine.label().into()))
                .set(
                    "policy",
                    JsonValue::Str(if args.policy.sticky { "sticky" } else { "stateless" }.into()),
                )
                .set("arrival_rate", JsonValue::Num(args.arrival_rate))
                .set("think_ms", JsonValue::Num(args.think_ms))
                .set("drift_per_token", JsonValue::Num(args.drift))
                .set("replicas", JsonValue::Int(args.replicas as i64))
                .set(
                    "mtbf_factor",
                    if args.mtbf_factor.is_finite() {
                        JsonValue::Num(args.mtbf_factor)
                    } else {
                        JsonValue::Null
                    },
                )
                .set("mttr_factor", JsonValue::Num(args.mttr_factor))
                .set("seed", JsonValue::Int(args.seed as i64));
        },
    );

    // Wall-clock sidecar: explicitly nondeterministic, merged per
    // (git SHA, date) to keep a trajectory across PRs.
    let mut measured = timings.into_inner().expect("timings");
    measured.sort_unstable_by_key(|&(index, _, _)| index);
    let mut bench = BenchSidecar::new("BENCH_decode");
    bench
        .set("experiment", JsonValue::Str("decode_sweep".into()))
        .set("engine", JsonValue::Str(args.engine.label().into()))
        .set("seed", JsonValue::Int(args.seed as i64))
        .set("jobs", JsonValue::Int(h.jobs().get() as i64))
        .set(
            "note",
            JsonValue::Str(
                "wall-clock timings; nondeterministic, use --jobs 1 for uncontended numbers".into(),
            ),
        )
        .set(
            "points",
            JsonValue::Arr(
                measured
                    .iter()
                    .map(|&(index, turns, wall_s)| {
                        let (_, sessions, mean_turns, threshold) = grid[index];
                        JsonValue::obj(vec![
                            ("sessions", JsonValue::Int(sessions as i64)),
                            ("mean_turns", JsonValue::Num(mean_turns)),
                            (
                                "threshold",
                                if threshold.is_finite() {
                                    JsonValue::Num(threshold)
                                } else {
                                    JsonValue::Null
                                },
                            ),
                            ("turns", JsonValue::Int(turns as i64)),
                            ("wall_s", JsonValue::Num(wall_s)),
                            ("turns_per_sec", JsonValue::Num(turns as f64 / wall_s.max(1e-12))),
                        ])
                    })
                    .collect(),
            ),
        );
    bench.save();

    // Telemetry pass: re-run the last grid point traced; session
    // re-prefill spans and session-lost instants land on the runtime
    // lane of the standard fleet trace.
    if let Some(path) = &args.trace {
        let &(_, sessions, mean_turns, threshold) = grid.last().expect("non-empty grid");
        let requests = point_requests(&spec, args, sessions, mean_turns)(threshold);
        let cfg = point_config(args, &requests);
        export_trace(
            path,
            &format!("Trace — {sessions} sessions, threshold {threshold} → {path}"),
            |sink| {
                let _ = simulate_fleet_traced(&cfg, &requests, sink);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_accepts_defaults_and_rejects_malformed_flags() {
        let ok = parse(&[]).expect("defaults valid");
        assert_eq!(ok.sessions, vec![16, 48]);
        assert_eq!(ok.policy, SessionPolicy::sticky());
        assert!(!ok.mtbf_factor.is_finite(), "healthy by default");
        let ablate = parse(&["--policy", "stateless"]).expect("valid");
        assert_eq!(ablate.policy, SessionPolicy::stateless());
        let open = parse(&["--thresholds", "inf"]).expect("valid");
        assert!(!open.thresholds[0].is_finite());

        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--sessions", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--turns", "0.5"]).unwrap_err().contains(">= 1"));
        assert!(parse(&["--thresholds", "-1"]).unwrap_err().contains("positive"));
        assert!(parse(&["--arrival-rate", "nan"]).unwrap_err().contains("positive"));
        assert!(parse(&["--think-ms", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--drift", "-0.1"]).unwrap_err().contains("non-negative"));
        assert!(parse(&["--replicas", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--policy", "rr"]).unwrap_err().contains("unknown policy"));
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        assert_eq!(SCHEMA_VERSION, 2, "bump this pin alongside the layout");
    }

    #[test]
    fn point_trace_is_deterministic_and_threshold_sensitive() {
        let args = parse(&[]).expect("defaults");
        let case = mini_case();
        let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);
        let mk = point_requests(&spec, &args, 8, 3.0);
        let a = mk(0.25);
        assert_eq!(a, mk(0.25));
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // A tighter threshold yields at least as many re-clusters per turn.
        let loose = mk(1.0);
        let tight = mk(0.05);
        let count = |rs: &[ServeRequest]| {
            rs.iter().map(|r| r.session.expect("tagged").reclusters as u64).sum::<u64>()
        };
        assert!(count(&tight) > count(&loose));
        // And arrival times / turn structure are threshold-independent.
        assert_eq!(
            loose.iter().map(|r| r.arrival_s.to_bits()).collect::<Vec<_>>(),
            tight.iter().map(|r| r.arrival_s.to_bits()).collect::<Vec<_>>()
        );
    }
}
