//! Kernel microbenchmark sweep: wall-clock for every hot inner loop
//! under each [`KernelPolicy`], with a built-in bitwise cross-check.
//!
//! Seven kernels — the quantized matmul / transposed matmul / saturating
//! subtract from `cta-fixed`, the f32 matmul pair from `cta-tensor`, the
//! batched LSH hash from `cta-lsh` and the PAG probability aggregation
//! from `cta-attention` — are each run at the paper's three workload
//! shapes (SQuAD `n=384`, IMDb `n=512`, and a long-sequence `n=1024`
//! point, all at `d=64`) under **all three** kernel policies. Every
//! point asserts that scalar, blocked and SIMD outputs are
//! bit-for-bit identical before any timing is reported, so the sweep is
//! simultaneously the end-to-end pin of the kernel-equivalence contract
//! and its performance ledger.
//!
//! ```text
//! kernel_sweep [--seed 7] [--reps 3]
//!              [--jobs N] [--kernels scalar|blocked|simd]
//!              [--pool-trace <path.json>]
//! ```
//!
//! **Outputs.** The stdout table and `results/kernel_sweep.{csv,json}`
//! carry one row per (kernel, shape) with an FNV-1a digest of the
//! output bits — deterministic for a fixed `--seed` at any `--jobs` or
//! `--kernels` value (the sweep exercises each policy explicitly, so
//! the installed process-wide policy cannot change its bytes; CI
//! byte-compares the CSV across all three `--kernels` spellings).
//! Wall-clock is *not* deterministic and goes to
//! `results/BENCH_kernels.json` instead: one entry per (kernel, shape,
//! policy) with the best-of-`--reps` milliseconds, merged as a per-PR
//! trajectory by [`BenchSidecar`]. Run with `--jobs 1` for uncontended
//! numbers — grid points time kernels while other points run.

use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use cta_attention::{aggregate_probabilities_kernel, QuantizationConfig};
use cta_bench::{parse_num, BenchSidecar, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_fixed::{QFormat, QuantizedMatrix};
use cta_lsh::{ClusterTable, LshFamily, LshParams};
use cta_tensor::{standard_normal_matrix, KernelPolicy, Matrix};

use crate::harness::{Harness, PointOutput, SweepSpec};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: kernel_sweep [--seed 7] [--reps 3]
                    [--jobs N] [--kernels scalar|blocked|simd]
                    [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &["kernel", "shape", "n", "d", "digest", "schema_version"];

/// The paper's workload shapes: sequence length `n`, head dim `d`, and
/// the §III cluster counts `k₀ = k₁ = n/4`, `k₂ = n/16`.
#[derive(Debug, Clone, Copy)]
struct Shape {
    name: &'static str,
    n: usize,
    d: usize,
}

impl Shape {
    const ALL: [Shape; 3] = [
        Shape { name: "squad", n: 384, d: 64 },
        Shape { name: "imdb", n: 512, d: 64 },
        Shape { name: "long", n: 1024, d: 64 },
    ];

    fn k0(self) -> usize {
        self.n / 4
    }

    fn k1(self) -> usize {
        self.n / 4
    }

    fn k2(self) -> usize {
        self.n / 16
    }
}

/// The hot loops under measurement, one per `_with` entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// `QuantizedMatrix::matmul_with` — centroid panel × weight matrix.
    QMatmul,
    /// `QuantizedMatrix::matmul_transpose_b_with` — the S̄ score product.
    QMatmulTb,
    /// `QuantizedMatrix::sub_with` — the level-2 residual subtract.
    QSub,
    /// `Matrix::matmul_with` — f32 `n×d · d×n`.
    MatmulF32,
    /// `Matrix::matmul_transpose_b_with` — f32 `n×d · (n×d)ᵀ`.
    MatmulTbF32,
    /// `LshFamily::hash_matrix_with` — batched token hashing.
    LshHash,
    /// `aggregate_probabilities_kernel` — the PAG exp/scatter loop.
    PagAggregate,
}

impl Kernel {
    const ALL: [Kernel; 7] = [
        Kernel::QMatmul,
        Kernel::QMatmulTb,
        Kernel::QSub,
        Kernel::MatmulF32,
        Kernel::MatmulTbF32,
        Kernel::LshHash,
        Kernel::PagAggregate,
    ];

    fn label(self) -> &'static str {
        match self {
            Kernel::QMatmul => "qmatmul",
            Kernel::QMatmulTb => "qmatmul_tb",
            Kernel::QSub => "qsub",
            Kernel::MatmulF32 => "matmul_f32",
            Kernel::MatmulTbF32 => "matmul_tb_f32",
            Kernel::LshHash => "lsh_hash",
            Kernel::PagAggregate => "pag_aggregate",
        }
    }
}

#[derive(Debug)]
struct Args {
    seed: u64,
    reps: usize,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args { seed: 7, reps: 3 };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--seed" => args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?,
                "--reps" => {
                    args.reps = parse_num(&it.value("--reps")?, "--reps", "an integer")?;
                    if args.reps == 0 {
                        return Err("--reps takes a positive integer, got \"0\"".to_string());
                    }
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(args)
    }
}

/// FNV-1a over a byte stream: the digest that proves cross-policy
/// identity in the CSV without pinning megabytes of output.
fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of an f32 matrix's exact bit pattern.
fn digest_f32(m: &Matrix) -> u64 {
    fnv1a64(m.as_slice().iter().flat_map(|x| x.to_bits().to_le_bytes()))
}

/// Digest of a quantized matrix's raw words.
fn digest_raw(m: &QuantizedMatrix) -> u64 {
    fnv1a64(m.raw().iter().flat_map(|x| x.to_le_bytes()))
}

/// Runs `f` `reps` times, returning its digest and the best wall-clock
/// in seconds (the digest is recomputed every rep; that cost is part of
/// every policy's measurement equally).
fn time_min(reps: usize, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut digest = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        digest = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (digest, best)
}

/// Runs one kernel at one shape under one policy: `(digest, best wall s)`.
fn run_kernel(
    kernel: Kernel,
    shape: Shape,
    seed: u64,
    reps: usize,
    policy: KernelPolicy,
) -> (u64, f64) {
    let qcfg = QuantizationConfig::default();
    let (n, d) = (shape.n, shape.d);
    match kernel {
        Kernel::QMatmul => {
            let a = QuantizedMatrix::quantize(
                &standard_normal_matrix(seed, shape.k0(), d),
                qcfg.centroid,
            );
            let w = QuantizedMatrix::quantize(&standard_normal_matrix(seed ^ 1, d, d), qcfg.weight);
            time_min(reps, || digest_raw(&a.matmul_with(&w, qcfg.centroid, policy)))
        }
        Kernel::QMatmulTb => {
            let wide = QFormat::new(24, qcfg.score.frac_bits());
            let q = QuantizedMatrix::quantize(
                &standard_normal_matrix(seed ^ 2, shape.k0(), d),
                qcfg.centroid,
            );
            let k = QuantizedMatrix::quantize(
                &standard_normal_matrix(seed ^ 3, shape.k1() + shape.k2(), d),
                qcfg.centroid,
            );
            time_min(reps, || digest_raw(&q.matmul_transpose_b_with(&k, wide, policy)))
        }
        Kernel::QSub => {
            let a = QuantizedMatrix::quantize(&standard_normal_matrix(seed ^ 4, n, d), qcfg.token);
            let b = QuantizedMatrix::quantize(&standard_normal_matrix(seed ^ 5, n, d), qcfg.token);
            time_min(reps, || digest_raw(&a.sub_with(&b, policy)))
        }
        Kernel::MatmulF32 => {
            let a = standard_normal_matrix(seed ^ 6, n, d);
            let b = standard_normal_matrix(seed ^ 7, d, n);
            time_min(reps, || digest_f32(&a.matmul_with(&b, policy)))
        }
        Kernel::MatmulTbF32 => {
            let a = standard_normal_matrix(seed ^ 8, n, d);
            let b = standard_normal_matrix(seed ^ 9, n, d);
            time_min(reps, || digest_f32(&a.matmul_transpose_b_with(&b, policy)))
        }
        Kernel::LshHash => {
            let tokens = standard_normal_matrix(seed ^ 10, n, d);
            let family = LshFamily::sample(d, LshParams::new(6, 2.0), seed ^ 11);
            time_min(reps, || {
                fnv1a64(
                    family
                        .hash_matrix_with(&tokens, policy)
                        .as_flat()
                        .iter()
                        .flat_map(|x| x.to_le_bytes()),
                )
            })
        }
        Kernel::PagAggregate => {
            let (k0, k1, k2) = (shape.k0(), shape.k1(), shape.k2());
            let scores = standard_normal_matrix(seed ^ 12, k0, k1 + k2);
            let ct1 = ClusterTable::new((0..n).map(|j| j % k1).collect(), k1);
            let ct2 = ClusterTable::new((0..n).map(|j| (j * 7 + 3) % k2).collect(), k2);
            time_min(reps, || {
                digest_f32(&aggregate_probabilities_kernel(
                    &scores,
                    &ct1,
                    &ct2,
                    k1,
                    |x| x.exp(),
                    policy,
                ))
            })
        }
    }
}

/// All three policies at one grid point: the shared digest (asserted
/// identical across policies) and per-policy best wall-clock seconds in
/// [`KernelPolicy::all`] order.
fn bench_point(kernel: Kernel, shape: Shape, args: &Args) -> (u64, [f64; 3]) {
    let mut digest = None;
    let mut walls = [f64::INFINITY; 3];
    for (pi, policy) in KernelPolicy::all().into_iter().enumerate() {
        let (d, wall) = run_kernel(kernel, shape, args.seed, args.reps, policy);
        match digest {
            None => digest = Some(d),
            Some(d0) => assert_eq!(
                d0,
                d,
                "{policy} diverges from scalar on {} @ {}",
                kernel.label(),
                shape.name
            ),
        }
        walls[pi] = wall;
    }
    (digest.expect("at least one policy ran"), walls)
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let grid: Vec<(usize, Kernel, Shape)> = Shape::ALL
        .iter()
        .flat_map(|&s| Kernel::ALL.into_iter().map(move |k| (k, s)))
        .enumerate()
        .map(|(i, (k, s))| (i, k, s))
        .collect();

    // Wall-clock measurements per point, collected out-of-band so the
    // pinned CSV/JSON stay deterministic. (grid index, per-policy best s).
    let timings: Mutex<Vec<(usize, [f64; 3])>> = Mutex::new(Vec::new());

    h.run_grid(
        &format!(
            "Kernel microbench — {} kernels × {} shapes × {{scalar, blocked, simd}}, \
             best of {} reps",
            Kernel::ALL.len(),
            Shape::ALL.len(),
            args.reps
        ),
        &grid,
        |&(index, kernel, shape)| {
            let mut out = PointOutput::new();
            let (digest, walls) = bench_point(kernel, shape, args);
            timings.lock().expect("timings").push((index, walls));
            out.row(vec![
                kernel.label().to_string(),
                shape.name.to_string(),
                shape.n.to_string(),
                shape.d.to_string(),
                format!("{digest:016x}"),
                SCHEMA_VERSION.to_string(),
            ]);
            out.point(JsonValue::obj(vec![
                ("kernel", JsonValue::Str(kernel.label().into())),
                ("shape", JsonValue::Str(shape.name.into())),
                ("n", JsonValue::Int(shape.n as i64)),
                ("d", JsonValue::Int(shape.d as i64)),
                ("digest", JsonValue::Str(format!("{digest:016x}"))),
            ]));
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("kernel_sweep".into()))
                .set("seed", JsonValue::Int(args.seed as i64))
                .set("reps", JsonValue::Int(args.reps as i64))
                .set(
                    "note",
                    JsonValue::Str(
                        "digests are identical across scalar|blocked|simd by construction; \
                         wall-clock lives in BENCH_kernels.json"
                            .into(),
                    ),
                );
        },
    );

    // Wall-clock sidecar: explicitly nondeterministic, so it lives in
    // its own BENCH_ report instead of the pinned files. The sidecar
    // merges one run per (git SHA, date) so the file keeps a trajectory
    // across PRs instead of only the latest numbers.
    let mut measured = timings.into_inner().expect("timings");
    measured.sort_unstable_by_key(|&(index, _)| index);
    let mut bench = BenchSidecar::new("BENCH_kernels");
    bench
        .set("experiment", JsonValue::Str("kernel_sweep".into()))
        .set("seed", JsonValue::Int(args.seed as i64))
        .set("reps", JsonValue::Int(args.reps as i64))
        .set("jobs", JsonValue::Int(h.jobs().get() as i64))
        .set(
            "note",
            JsonValue::Str(
                "wall-clock timings; nondeterministic, use --jobs 1 for uncontended numbers".into(),
            ),
        )
        .set(
            "points",
            JsonValue::Arr(
                measured
                    .iter()
                    .flat_map(|&(index, walls)| {
                        let (_, kernel, shape) = grid[index];
                        KernelPolicy::all().into_iter().zip(walls).map(move |(policy, wall_s)| {
                            JsonValue::obj(vec![
                                ("kernel", JsonValue::Str(kernel.label().into())),
                                ("shape", JsonValue::Str(shape.name.into())),
                                ("n", JsonValue::Int(shape.n as i64)),
                                ("policy", JsonValue::Str(policy.label().into())),
                                ("wall_ms", JsonValue::Num(wall_s * 1e3)),
                                ("speedup_vs_scalar", JsonValue::Num(walls[0] / wall_s)),
                            ])
                        })
                    })
                    .collect(),
            ),
        );
    bench.save();
}

/// The `kernel_sweep` entry point (argv without the program name).
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("kernel_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(argv, Args::parse, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let spec = SweepSpec::new("kernel_sweep");
        let h = spec
            .parse(["--seed", "11", "--reps", "2"].iter().map(|s| s.to_string()), Args::parse)
            .expect("valid");
        assert_eq!(h.args().seed, 11);
        assert_eq!(h.args().reps, 2);
    }

    #[test]
    fn args_reject_bad_values() {
        let parse = |list: &[&str]| {
            SweepSpec::new("kernel_sweep").parse(list.iter().map(|s| s.to_string()), Args::parse)
        };
        assert!(parse(&["--reps", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--seed", "many"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--frob"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn every_point_is_bitwise_identical_across_policies() {
        // The smallest shape over every kernel, one rep: the full
        // cross-policy assertion inside bench_point must hold.
        let args = Args { seed: 3, reps: 1 };
        for kernel in Kernel::ALL {
            let (digest, walls) = bench_point(kernel, Shape::ALL[0], &args);
            assert_ne!(digest, 0, "degenerate digest for {}", kernel.label());
            assert!(walls.iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn digests_are_input_sensitive() {
        let a = run_kernel(Kernel::MatmulF32, Shape::ALL[0], 1, 1, KernelPolicy::Scalar).0;
        let b = run_kernel(Kernel::MatmulF32, Shape::ALL[0], 2, 1, KernelPolicy::Scalar).0;
        assert_ne!(a, b, "different seeds must produce different digests");
    }
}
