//! Planet-scale fleet sweep: goodput, tail latency and availability for
//! thousand-replica fleets under a diurnal + flash-crowd arrival
//! pattern, driven by the calendar-queue event core.
//!
//! The step-granular engine rescans every replica to find the next due
//! instant, so its cost grows with the fleet even when almost nothing
//! is due; the event core ([`crate::FleetEngine::EventDriven`]) pops
//! exactly the due event in O(1) amortized time, which is what makes
//! thousand-replica sweeps practical. Routing is fixed to round-robin —
//! the only O(1)-per-arrival policy; JSQ/LOW would reintroduce a
//! full-fleet scan on every admission and dominate the profile.
//!
//! ```text
//! planet_sweep [--replicas 250,1000] [--load 0.7] [--requests-per-replica 4]
//!              [--seed 7] [--mtbf-factor 1] [--mttr-factor 0.02]
//!              [--batch 4] [--queue-depth 64] [--engine event|step]
//!              [--trace <path.json>] [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! Each point simulates `replicas × requests-per-replica` requests from
//! a seeded diurnal trace ([`cta_workloads::DiurnalSpec`]): the offered
//! rate `load × replicas / solo_service` is the daytime rate of a
//! four-cycle day/night pattern (night at 0.25x) with a 4x flash crowd
//! early in the second cycle. `--mtbf-factor` follows the
//! `degradation_sweep` span-relative convention (`inf` disables
//! faults), so availability is exercised, not just reported as 1.
//!
//! **Outputs.** The stdout table and `results/planet_sweep.{csv,json}`
//! are deterministic for a fixed `--seed` at any `--jobs` value — the
//! `events` column counts handler invocations, which both engines agree
//! on exactly. Wall-clock event throughput is *not* deterministic, so
//! it is kept out of the pinned reports and written separately to
//! `results/BENCH_events.json` (one entry per point with `wall_s` and
//! `events_per_sec`; run with `--jobs 1` for uncontended numbers).
//! With `--trace <path>` the final point is re-run traced and the
//! export gains an `events` lane ([`cta_telemetry::Module::Events`])
//! carrying the sampled calendar-queue occupancy as a counter track.
//!
//! CI runs the 1k-replica smoke configuration of this sweep and
//! validates the exported trace; see `.github/workflows/ci.yml`.

use std::process::ExitCode;
use std::sync::Mutex;

use cta_bench::{parse_list, parse_num, BenchSidecar, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::{CtaSystem, SystemConfig};
use cta_telemetry::{Module, TraceSink, TrackId};
use cta_workloads::{case_task, mini_case, DiurnalSpec, FlashCrowd};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    CostModel, FaultPlan, FleetConfig, FleetEngine, LoadSpec, RoutingPolicy, ServeRequest,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: planet_sweep [--replicas 250,1000] [--load 0.7]
                    [--requests-per-replica 4] [--seed 7]
                    [--mtbf-factor 1] [--mttr-factor 0.02]
                    [--batch 4] [--queue-depth 64] [--engine event|step]
                    [--trace <path.json>]
                    [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &[
    "replicas",
    "requests",
    "offered_rps",
    "completed",
    "shed",
    "goodput_rps",
    "p50_ms",
    "p99_ms",
    "min_avail",
    "events",
    "schema_version",
];

#[derive(Debug)]
struct Args {
    replicas: Vec<usize>,
    load: f64,
    requests_per_replica: usize,
    seed: u64,
    mtbf_factor: f64,
    mttr_factor: f64,
    batch: usize,
    queue_depth: usize,
    engine: FleetEngine,
    trace: Option<String>,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            replicas: vec![250, 1000],
            load: 0.7,
            requests_per_replica: 4,
            seed: 7,
            mtbf_factor: 1.0,
            mttr_factor: 0.02,
            batch: 4,
            queue_depth: 64,
            engine: FleetEngine::EventDriven,
            trace: None,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--replicas" => {
                    args.replicas = parse_list(&it.value("--replicas")?, "--replicas", "integers")?;
                }
                "--load" => {
                    args.load = parse_num(&it.value("--load")?, "--load", "a number")?;
                }
                "--requests-per-replica" => {
                    args.requests_per_replica = parse_num(
                        &it.value("--requests-per-replica")?,
                        "--requests-per-replica",
                        "an integer",
                    )?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--mtbf-factor" => {
                    args.mtbf_factor =
                        parse_num(&it.value("--mtbf-factor")?, "--mtbf-factor", "a number")?;
                }
                "--mttr-factor" => {
                    args.mttr_factor =
                        parse_num(&it.value("--mttr-factor")?, "--mttr-factor", "a number")?;
                }
                "--batch" => {
                    args.batch = parse_num(&it.value("--batch")?, "--batch", "an integer")?;
                }
                "--queue-depth" => {
                    args.queue_depth =
                        parse_num(&it.value("--queue-depth")?, "--queue-depth", "an integer")?;
                }
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.replicas.is_empty() || args.replicas.contains(&0) {
            return Err("--replicas must be a non-empty list of positive integers".into());
        }
        if args.requests_per_replica == 0 || args.batch == 0 || args.queue_depth == 0 {
            return Err("--requests-per-replica, --batch and --queue-depth must be positive".into());
        }
        if !(args.load > 0.0 && args.load.is_finite()) {
            return Err("--load must be positive and finite".into());
        }
        // `inf` is a legal MTBF factor (= fault-free run).
        if args.mtbf_factor.is_nan() || args.mtbf_factor <= 0.0 {
            return Err("--mtbf-factor must be positive (inf ok)".into());
        }
        if !(args.mttr_factor > 0.0 && args.mttr_factor.is_finite()) {
            return Err("--mttr-factor must be positive and finite".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("planet_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(argv, Args::parse, run)
}

/// The diurnal + flash-crowd trace for one fleet size (the serve_sweep
/// shape: four day/night cycles at night 0.25x, 4x flash crowd early in
/// the second cycle).
fn point_requests(spec: &LoadSpec, count: usize, rate: f64, seed: u64) -> Vec<ServeRequest> {
    let period = (count as f64 / rate / 4.0).max(1e-6);
    let diurnal = DiurnalSpec::new(rate, period, 0.6, 0.25).with_flash(FlashCrowd::new(
        1.1 * period,
        0.2 * period,
        4.0,
    ));
    diurnal
        .arrival_times(count, seed)
        .into_iter()
        .enumerate()
        .map(|(id, t)| {
            ServeRequest::uniform(id as u64, t, spec.class, spec.task, spec.layers, spec.heads)
        })
        .collect()
}

fn point_config(args: &Args, replicas: usize, requests: &[ServeRequest]) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.engine = args.engine;
    cfg.routing = RoutingPolicy::RoundRobin;
    cfg.batch = BatchPolicy::up_to(args.batch);
    cfg.admission = AdmissionPolicy::bounded(args.queue_depth);
    if args.mtbf_factor.is_finite() {
        let span = requests.last().map(|r| r.arrival_s).unwrap_or(0.0).max(1e-6);
        cfg.faults = FaultPlan::seeded(
            replicas,
            2.0 * span,
            args.mtbf_factor * span,
            args.mttr_factor * span,
            args.seed,
        );
    }
    cfg
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec, 1, 1.0, args.seed);
    let solo = cost.request_service_s(&system, &probe[0]);

    // Wall-clock measurements per point, collected out-of-band so the
    // pinned CSV/JSON stay deterministic. (grid index, events, wall_s).
    let timings: Mutex<Vec<(usize, u64, f64)>> = Mutex::new(Vec::new());

    let grid: Vec<(usize, usize)> = args.replicas.iter().copied().enumerate().collect();

    h.run_grid(
        &format!(
            "Planet sweep — diurnal + flash crowd @ load {:.2}, engine {}, \
             {} requests/replica, solo service {:.3} ms",
            args.load,
            args.engine.label(),
            args.requests_per_replica,
            solo * 1e3
        ),
        &grid,
        |&(index, replicas)| {
            let mut out = PointOutput::new();
            let count = replicas * args.requests_per_replica;
            let rate = args.load * replicas as f64 / solo;
            let requests = point_requests(&spec, count, rate, args.seed);
            let cfg = point_config(args, replicas, &requests);
            let start = std::time::Instant::now();
            let report = simulate_fleet(&cfg, &requests);
            let wall_s = start.elapsed().as_secs_f64();
            timings.lock().expect("timings").push((index, report.events_processed, wall_s));
            let m = &report.metrics;
            assert_eq!(m.completed + m.shed, count, "accounting identity");
            let (p50, p99) =
                m.latency.as_ref().map_or((f64::NAN, f64::NAN), |l| (l.p50_s, l.p99_s));
            let min_avail =
                m.per_replica_availability.iter().copied().fold(f64::INFINITY, f64::min);
            out.row(vec![
                replicas.to_string(),
                count.to_string(),
                format!("{rate:.1}"),
                m.completed.to_string(),
                m.shed.to_string(),
                format!("{:.1}", m.goodput_rps),
                format!("{:.3}", p50 * 1e3),
                format!("{:.3}", p99 * 1e3),
                format!("{min_avail:.3}"),
                report.events_processed.to_string(),
                SCHEMA_VERSION.to_string(),
            ]);
            let mut point = JsonValue::obj(vec![
                ("replicas", JsonValue::Int(replicas as i64)),
                ("requests", JsonValue::Int(count as i64)),
                ("offered_rps", JsonValue::Num(rate)),
                ("completed", JsonValue::Int(m.completed as i64)),
                ("shed", JsonValue::Int(m.shed as i64)),
                ("shed_rate", JsonValue::Num(m.shed_rate)),
                ("goodput_rps", JsonValue::Num(m.goodput_rps)),
                ("p50_s", JsonValue::Num(p50)),
                ("p99_s", JsonValue::Num(p99)),
                ("min_availability", JsonValue::Num(min_avail)),
                ("events", JsonValue::Int(report.events_processed as i64)),
                ("makespan_s", JsonValue::Num(m.makespan_s)),
            ]);
            if !report.event_queue_samples.is_empty() {
                let peak = report.event_queue_samples.iter().map(|&(_, d)| d).max().unwrap_or(0);
                if let JsonValue::Obj(fields) = &mut point {
                    fields.push(("peak_event_queue".into(), JsonValue::Int(peak as i64)));
                }
            }
            out.point(point);
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("planet_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("engine", JsonValue::Str(args.engine.label().into()))
                .set("arrivals", JsonValue::Str("diurnal".into()))
                .set("load", JsonValue::Num(args.load))
                .set("solo_service_s", JsonValue::Num(solo))
                .set("requests_per_replica", JsonValue::Int(args.requests_per_replica as i64))
                .set(
                    "mtbf_factor",
                    if args.mtbf_factor.is_finite() {
                        JsonValue::Num(args.mtbf_factor)
                    } else {
                        JsonValue::Null
                    },
                )
                .set("mttr_factor", JsonValue::Num(args.mttr_factor))
                .set("routing", JsonValue::Str(RoutingPolicy::RoundRobin.label().into()))
                .set("batch", JsonValue::Int(args.batch as i64))
                .set("queue_depth", JsonValue::Int(args.queue_depth as i64))
                .set("seed", JsonValue::Int(args.seed as i64));
        },
    );

    // Wall-clock throughput sidecar: explicitly nondeterministic, so it
    // lives in its own BENCH_ report instead of the pinned files. The
    // sidecar merges one run per (git SHA, date) so the file keeps a
    // trajectory across PRs instead of only the latest numbers.
    let mut measured = timings.into_inner().expect("timings");
    measured.sort_unstable_by_key(|&(index, _, _)| index);
    let mut bench = BenchSidecar::new("BENCH_events");
    bench
        .set("experiment", JsonValue::Str("planet_sweep".into()))
        .set("engine", JsonValue::Str(args.engine.label().into()))
        .set("seed", JsonValue::Int(args.seed as i64))
        .set("jobs", JsonValue::Int(h.jobs().get() as i64))
        .set(
            "note",
            JsonValue::Str(
                "wall-clock timings; nondeterministic, use --jobs 1 for uncontended numbers".into(),
            ),
        )
        .set(
            "points",
            JsonValue::Arr(
                measured
                    .iter()
                    .map(|&(index, events, wall_s)| {
                        JsonValue::obj(vec![
                            ("replicas", JsonValue::Int(args.replicas[index] as i64)),
                            ("events", JsonValue::Int(events as i64)),
                            ("wall_s", JsonValue::Num(wall_s)),
                            ("events_per_sec", JsonValue::Num(events as f64 / wall_s.max(1e-12))),
                        ])
                    })
                    .collect(),
            ),
        );
    bench.save();

    // Telemetry pass: re-run the largest fleet traced, then lay the
    // sampled calendar-queue occupancy onto the `events` lane as a
    // counter track next to the replica track groups.
    if let Some(path) = &args.trace {
        let replicas = *args.replicas.last().expect("non-empty sweep");
        let count = replicas * args.requests_per_replica;
        let rate = args.load * replicas as f64 / solo;
        let requests = point_requests(&spec, count, rate, args.seed);
        let cfg = point_config(args, replicas, &requests);
        export_trace(
            path,
            &format!("Trace — {replicas} replicas, diurnal + flash crowd → {path}"),
            |sink| {
                let report = simulate_fleet_traced(&cfg, &requests, sink);
                let track = TrackId::new(0, Module::Events);
                for &(t, depth) in &report.event_queue_samples {
                    sink.counter(track, "event_queue_depth", t, depth as f64);
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_accepts_defaults_and_rejects_malformed_flags() {
        let ok = parse(&[]).expect("defaults valid");
        assert_eq!(ok.replicas, vec![250, 1000]);
        assert_eq!(ok.engine, FleetEngine::EventDriven, "the event core is the default here");
        let step = parse(&["--engine", "step"]).expect("valid");
        assert_eq!(step.engine, FleetEngine::StepGranular);
        let healthy = parse(&["--mtbf-factor", "inf"]).expect("valid");
        assert!(!healthy.mtbf_factor.is_finite());

        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--replicas", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--requests-per-replica", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--load", "-1"]).unwrap_err().contains("positive"));
        assert!(parse(&["--mtbf-factor", "nan"]).unwrap_err().contains("positive"));
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        assert_eq!(SCHEMA_VERSION, 2, "bump this pin alongside the layout");
    }

    #[test]
    fn point_trace_scales_with_the_fleet_and_stays_deterministic() {
        let case = mini_case();
        let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);
        let a = point_requests(&spec, 64, 5_000.0, 7);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0].arrival_s < w[1].arrival_s));
        assert_eq!(a, point_requests(&spec, 64, 5_000.0, 7));
    }
}
