//! Multi-tenant isolation sweep: goodput, tail latency and Jain
//! fairness versus tenant skew × scheduler policy × scale-out policy.
//!
//! This is the headline experiment for the `cta-tenancy` subsystem. A
//! Zipf tenant mix ([`cta_workloads::TenantMix`]) stamps a seeded
//! Poisson trace so a few hot tenants offer most of the traffic, every
//! request carries a deadline a few multiples of the solo service time,
//! and the fleet is driven past saturation (`--load` > 1). FIFO then
//! serves tenants in proportion to what they *offer* — the hot tenants
//! flood the shared queue and cold tenants starve behind them — while
//! DRR/WFQ serve tenants in proportion to their *weights*, so equal
//! weights mean equal goodput regardless of skew. Jain's fairness index
//! over per-tenant goodput turns that into one number per point: the
//! acceptance bar for the subsystem is DRR ≥ 0.95 where FIFO < 0.7 at
//! 16:1 skew (`crates/serve/tests/tenancy.rs` pins it; this sweep shows
//! the same separation as data).
//!
//! ```text
//! tenant_sweep [--tenants 16] [--skew 0,1] [--scheduler fifo,drr,wfq]
//!              [--autoscale none,reactive] [--replicas 2] [--load 6.0]
//!              [--requests 1200] [--seed 7] [--quota <rps>:<burst>]
//!              [--deadline-factor 40] [--batch 2] [--queue-depth 2]
//!              [--engine step|event] [--trace <path.json>]
//!              [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! The grid is `skew × scheduler × autoscale`. Backpressure is `hold`
//! throughout — full replica queues exert backpressure into the fair
//! queue instead of shedding, which is what makes the scheduler's
//! drain order decide who gets served. `--quota rps:burst` arms the
//! per-tenant token bucket (off by default) and `--autoscale reactive`
//! runs each point on the deterministic autoscaler (min = half the
//! fleet), so its `scale_ups`/`final_active` columns show the fleet
//! breathing with the offered load.
//!
//! **Outputs.** The stdout table and `results/tenant_sweep.{csv,json}`
//! are deterministic for a fixed `--seed` at any `--jobs` value and
//! identical across both engines (CI diffs step vs event). Wall-clock
//! throughput is *not* deterministic and is written separately to
//! `results/BENCH_tenancy.json` (one entry per point with `wall_s` and
//! `events_per_sec`; run with `--jobs 1` for uncontended numbers).
//! With `--trace <path>` the final point is re-run traced; held
//! arrivals land on the tenancy telemetry lane
//! ([`cta_telemetry::Module::Tenancy`]) as per-tenant backlog tracks.
//!
//! CI runs the smoke configuration of this sweep, checks the DRR/FIFO
//! fairness separation on the emitted CSV, and uploads the BENCH
//! sidecar; see `.github/workflows/ci.yml`.

use std::process::ExitCode;
use std::sync::Mutex;

use cta_bench::{parse_list, parse_num, BenchSidecar, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::{CtaSystem, SystemConfig};
use cta_workloads::{case_task, mini_case, TenantMix};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, AutoscalePolicy,
    Backpressure, BatchPolicy, CostModel, FleetConfig, FleetEngine, LoadSpec, QosClass,
    QuotaPolicy, RoutingPolicy, SchedulerPolicy, ServeRequest, TenancyConfig,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: tenant_sweep [--tenants 16] [--skew 0,1] [--scheduler fifo,drr,wfq]
                    [--autoscale none,reactive] [--replicas 2] [--load 6.0]
                    [--requests 1200] [--seed 7] [--quota <rps>:<burst>]
                    [--deadline-factor 40] [--batch 2] [--queue-depth 2]
                    [--engine step|event] [--trace <path.json>]
                    [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &[
    "skew",
    "scheduler",
    "autoscale",
    "offered_rps",
    "completed",
    "shed",
    "quota_shed",
    "goodput_rps",
    "p99_ms",
    "fairness",
    "max_slowdown",
    "scale_ups",
    "final_active",
    "schema_version",
];

/// Scale-out policies the `--autoscale` axis can enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalePolicy {
    /// Fixed fleet: every replica enabled for the whole run.
    None,
    /// [`AutoscalePolicy::reactive`] between half the fleet and the
    /// full fleet, warmup a few solo service times.
    Reactive,
}

impl ScalePolicy {
    fn label(&self) -> &'static str {
        match self {
            ScalePolicy::None => "none",
            ScalePolicy::Reactive => "reactive",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ScalePolicy::None),
            "reactive" => Some(ScalePolicy::Reactive),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Args {
    tenants: u32,
    skews: Vec<f64>,
    schedulers: Vec<SchedulerPolicy>,
    autoscale: Vec<ScalePolicy>,
    replicas: usize,
    load: f64,
    requests: usize,
    seed: u64,
    quota: Option<QuotaPolicy>,
    deadline_factor: f64,
    batch: usize,
    queue_depth: usize,
    engine: FleetEngine,
    trace: Option<String>,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            tenants: 16,
            skews: vec![0.0, 1.0],
            schedulers: vec![SchedulerPolicy::Fifo, SchedulerPolicy::Drr, SchedulerPolicy::Wfq],
            autoscale: vec![ScalePolicy::None],
            replicas: 2,
            load: 6.0,
            requests: 1200,
            seed: 7,
            quota: None,
            deadline_factor: 40.0,
            batch: 2,
            queue_depth: 2,
            engine: FleetEngine::StepGranular,
            trace: None,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--tenants" => {
                    args.tenants = parse_num(&it.value("--tenants")?, "--tenants", "an integer")?;
                }
                "--skew" => {
                    args.skews = parse_list(&it.value("--skew")?, "--skew", "numbers")?;
                }
                "--scheduler" => {
                    args.schedulers = it
                        .value("--scheduler")?
                        .split(',')
                        .map(|w| {
                            SchedulerPolicy::parse(w.trim()).ok_or_else(|| {
                                format!("unknown scheduler {:?} (fifo|drr|wfq)", w.trim())
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--autoscale" => {
                    args.autoscale = it
                        .value("--autoscale")?
                        .split(',')
                        .map(|w| {
                            ScalePolicy::parse(w.trim()).ok_or_else(|| {
                                format!("unknown autoscale policy {:?} (none|reactive)", w.trim())
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--replicas" => {
                    args.replicas =
                        parse_num(&it.value("--replicas")?, "--replicas", "an integer")?;
                }
                "--load" => {
                    args.load = parse_num(&it.value("--load")?, "--load", "a number")?;
                }
                "--requests" => {
                    args.requests =
                        parse_num(&it.value("--requests")?, "--requests", "an integer")?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--quota" => {
                    let v = it.value("--quota")?;
                    let (rate, burst) = v
                        .split_once(':')
                        .ok_or_else(|| format!("--quota wants <rps>:<burst>, got {v:?}"))?;
                    let rate: f64 = parse_num(rate, "--quota", "a number for rps")?;
                    let burst: f64 = parse_num(burst, "--quota", "a number for burst")?;
                    if !(rate > 0.0 && rate.is_finite() && burst > 0.0 && burst.is_finite()) {
                        return Err("--quota rps and burst must be positive and finite".into());
                    }
                    args.quota = Some(QuotaPolicy::new(rate, burst));
                }
                "--deadline-factor" => {
                    args.deadline_factor = parse_num(
                        &it.value("--deadline-factor")?,
                        "--deadline-factor",
                        "a number",
                    )?;
                }
                "--batch" => {
                    args.batch = parse_num(&it.value("--batch")?, "--batch", "an integer")?;
                }
                "--queue-depth" => {
                    args.queue_depth =
                        parse_num(&it.value("--queue-depth")?, "--queue-depth", "an integer")?;
                }
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.tenants == 0 {
            return Err("--tenants must be positive".into());
        }
        if args.skews.is_empty() || args.skews.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err("--skew must be a non-empty list of non-negative numbers".into());
        }
        if args.schedulers.is_empty() {
            return Err("--scheduler must name at least one policy".into());
        }
        if args.autoscale.is_empty() {
            return Err("--autoscale must name at least one policy".into());
        }
        if args.replicas == 0 || args.requests == 0 || args.batch == 0 || args.queue_depth == 0 {
            return Err("--replicas, --requests, --batch and --queue-depth must be positive".into());
        }
        if !(args.load > 0.0 && args.load.is_finite()) {
            return Err("--load must be positive and finite".into());
        }
        if !(args.deadline_factor > 0.0 && args.deadline_factor.is_finite()) {
            return Err("--deadline-factor must be positive and finite".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("tenant_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(argv, Args::parse, run)
}

/// One grid point: skew × scheduler × scale-out policy.
type Point = (usize, f64, SchedulerPolicy, ScalePolicy);

/// The Poisson trace for one point, Zipf-stamped with tenant ids and
/// deadlined at `deadline_factor` solo service times. Priority 100
/// deliberately sits below the admission depth-exemption threshold —
/// every tenant faces the same queue-depth and deadline policy, so the
/// scheduler alone decides who is served.
fn point_requests(args: &Args, spec: &LoadSpec, skew: f64, solo: f64) -> Vec<ServeRequest> {
    const TENANT_SLO: &str = "tenant-slo";
    let class =
        QosClass { name: TENANT_SLO, priority: 100, deadline_s: Some(args.deadline_factor * solo) };
    let rate = args.load * args.replicas as f64 / solo;
    let mix = TenantMix::new(args.tenants, skew);
    let owners = mix.assign(args.requests, args.seed);
    let mut spec = *spec;
    spec.class = class;
    poisson_requests(&spec, args.requests, rate, args.seed)
        .into_iter()
        .zip(owners)
        .map(|(r, tenant)| r.with_tenant(tenant))
        .collect()
}

fn point_config(
    args: &Args,
    scheduler: SchedulerPolicy,
    scale: ScalePolicy,
    solo: f64,
) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), args.replicas);
    cfg.engine = args.engine;
    cfg.routing = RoutingPolicy::JoinShortestQueue;
    cfg.batch = BatchPolicy::up_to(args.batch);
    cfg.admission = AdmissionPolicy::bounded(args.queue_depth);
    let mut tenancy = TenancyConfig::equal_weight(args.tenants, scheduler);
    tenancy.backpressure = Backpressure::Hold;
    tenancy.quota = args.quota;
    if scale == ScalePolicy::Reactive {
        let min = (args.replicas / 2).max(1);
        tenancy.autoscale = Some(AutoscalePolicy::reactive(min, args.replicas, 8.0 * solo));
    }
    cfg.tenancy = Some(tenancy);
    cfg
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec, 1, 1.0, args.seed);
    let solo = cost.request_service_s(&system, &probe[0]);

    // Wall-clock measurements per point, collected out-of-band so the
    // pinned CSV/JSON stay deterministic. (grid index, events, wall_s).
    let timings: Mutex<Vec<(usize, u64, f64)>> = Mutex::new(Vec::new());

    let mut grid: Vec<Point> = Vec::new();
    for &skew in &args.skews {
        for &scheduler in &args.schedulers {
            for &scale in &args.autoscale {
                grid.push((grid.len(), skew, scheduler, scale));
            }
        }
    }

    h.run_grid(
        &format!(
            "Tenant sweep — {} tenants, {} replicas @ load {:.2}, engine {}, \
             solo service {:.3} ms",
            args.tenants,
            args.replicas,
            args.load,
            args.engine.label(),
            solo * 1e3
        ),
        &grid,
        |&(index, skew, scheduler, scale)| {
            let mut out = PointOutput::new();
            let requests = point_requests(args, &spec, skew, solo);
            let cfg = point_config(args, scheduler, scale, solo);
            let rate = args.load * args.replicas as f64 / solo;
            let start = std::time::Instant::now();
            let report = simulate_fleet(&cfg, &requests);
            let wall_s = start.elapsed().as_secs_f64();
            timings.lock().expect("timings").push((index, report.events_processed, wall_s));
            let m = &report.metrics;
            assert_eq!(m.completed + m.shed, args.requests, "accounting identity");
            let t = m.tenancy.as_ref().expect("tenancy stats reported");
            let p99 = m.latency.as_ref().map_or(f64::NAN, |l| l.p99_s);
            out.row(vec![
                format!("{skew:.2}"),
                scheduler.label().to_string(),
                scale.label().to_string(),
                format!("{rate:.1}"),
                m.completed.to_string(),
                m.shed.to_string(),
                t.quota_shed.to_string(),
                format!("{:.1}", m.goodput_rps),
                format!("{:.3}", p99 * 1e3),
                format!("{:.3}", t.fairness_index),
                format!("{:.2}", t.max_slowdown),
                t.scale_ups.to_string(),
                t.final_active.to_string(),
                SCHEMA_VERSION.to_string(),
            ]);
            out.point(JsonValue::obj(vec![
                ("skew", JsonValue::Num(skew)),
                ("scheduler", JsonValue::Str(scheduler.label().into())),
                ("autoscale", JsonValue::Str(scale.label().into())),
                ("offered_rps", JsonValue::Num(rate)),
                ("completed", JsonValue::Int(m.completed as i64)),
                ("shed", JsonValue::Int(m.shed as i64)),
                ("quota_shed", JsonValue::Int(t.quota_shed as i64)),
                ("goodput_rps", JsonValue::Num(m.goodput_rps)),
                ("p99_s", JsonValue::Num(p99)),
                ("fairness_index", JsonValue::Num(t.fairness_index)),
                ("max_slowdown", JsonValue::Num(t.max_slowdown)),
                ("scale_ups", JsonValue::Int(t.scale_ups as i64)),
                ("scale_downs", JsonValue::Int(t.scale_downs as i64)),
                ("final_active", JsonValue::Int(t.final_active as i64)),
                ("events", JsonValue::Int(report.events_processed as i64)),
            ]));
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("tenant_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("engine", JsonValue::Str(args.engine.label().into()))
                .set("tenants", JsonValue::Int(args.tenants as i64))
                .set("replicas", JsonValue::Int(args.replicas as i64))
                .set("load", JsonValue::Num(args.load))
                .set("solo_service_s", JsonValue::Num(solo))
                .set("requests", JsonValue::Int(args.requests as i64))
                .set("deadline_factor", JsonValue::Num(args.deadline_factor))
                .set("backpressure", JsonValue::Str(Backpressure::Hold.label().into()))
                .set(
                    "quota",
                    match &args.quota {
                        Some(q) => JsonValue::obj(vec![
                            ("rate_rps", JsonValue::Num(q.rate_rps)),
                            ("burst", JsonValue::Num(q.burst)),
                        ]),
                        None => JsonValue::Null,
                    },
                )
                .set("routing", JsonValue::Str(RoutingPolicy::JoinShortestQueue.label().into()))
                .set("batch", JsonValue::Int(args.batch as i64))
                .set("queue_depth", JsonValue::Int(args.queue_depth as i64))
                .set("seed", JsonValue::Int(args.seed as i64));
        },
    );

    // Wall-clock throughput sidecar: explicitly nondeterministic, so it
    // lives in its own BENCH_ report instead of the pinned files. The
    // sidecar merges one run per (git SHA, date) so the file keeps a
    // trajectory across PRs instead of only the latest numbers.
    let mut measured = timings.into_inner().expect("timings");
    measured.sort_unstable_by_key(|&(index, _, _)| index);
    let mut bench = BenchSidecar::new("BENCH_tenancy");
    bench
        .set("experiment", JsonValue::Str("tenant_sweep".into()))
        .set("engine", JsonValue::Str(args.engine.label().into()))
        .set("tenants", JsonValue::Int(args.tenants as i64))
        .set("replicas", JsonValue::Int(args.replicas as i64))
        .set("seed", JsonValue::Int(args.seed as i64))
        .set("jobs", JsonValue::Int(h.jobs().get() as i64))
        .set(
            "note",
            JsonValue::Str(
                "wall-clock timings; nondeterministic, use --jobs 1 for uncontended numbers".into(),
            ),
        )
        .set(
            "points",
            JsonValue::Arr(
                measured
                    .iter()
                    .map(|&(index, events, wall_s)| {
                        let (_, skew, scheduler, scale) = grid[index];
                        JsonValue::obj(vec![
                            ("skew", JsonValue::Num(skew)),
                            ("scheduler", JsonValue::Str(scheduler.label().into())),
                            ("autoscale", JsonValue::Str(scale.label().into())),
                            ("events", JsonValue::Int(events as i64)),
                            ("wall_s", JsonValue::Num(wall_s)),
                            ("events_per_sec", JsonValue::Num(events as f64 / wall_s.max(1e-12))),
                        ])
                    })
                    .collect(),
            ),
        );
    bench.save();

    // Telemetry pass: re-run the final point traced. Held arrivals show
    // up as per-tenant backlog counters on the tenancy lane.
    if let Some(path) = &args.trace {
        let &(_, skew, scheduler, scale) = grid.last().expect("non-empty sweep");
        let requests = point_requests(args, &spec, skew, solo);
        let cfg = point_config(args, scheduler, scale, solo);
        export_trace(
            path,
            &format!(
                "Trace — skew {skew:.2}, {} scheduler, autoscale {} → {path}",
                scheduler.label(),
                scale.label()
            ),
            |sink| {
                let _ = simulate_fleet_traced(&cfg, &requests, sink);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_accepts_defaults_and_rejects_malformed_flags() {
        let ok = parse(&[]).expect("defaults valid");
        assert_eq!(ok.tenants, 16);
        assert_eq!(ok.skews, vec![0.0, 1.0]);
        assert_eq!(
            ok.schedulers,
            vec![SchedulerPolicy::Fifo, SchedulerPolicy::Drr, SchedulerPolicy::Wfq]
        );
        assert_eq!(ok.autoscale, vec![ScalePolicy::None]);
        assert!(ok.quota.is_none());
        let full = parse(&[
            "--tenants",
            "8",
            "--skew",
            "0,0.5,1.5",
            "--scheduler",
            "drr,wfq",
            "--autoscale",
            "none,reactive",
            "--quota",
            "100:4",
        ])
        .expect("valid");
        assert_eq!(full.tenants, 8);
        assert_eq!(full.autoscale, vec![ScalePolicy::None, ScalePolicy::Reactive]);
        assert_eq!(full.quota, Some(QuotaPolicy::new(100.0, 4.0)));

        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--tenants", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--tenants", "many"]).unwrap_err().contains("--tenants"));
        assert!(parse(&["--skew", "-1"]).unwrap_err().contains("non-negative"));
        assert!(parse(&["--skew", "0,oops"]).unwrap_err().contains("--skew"));
        assert!(parse(&["--scheduler", "chaos"]).unwrap_err().contains("unknown scheduler"));
        assert!(parse(&["--autoscale", "wild"]).unwrap_err().contains("unknown autoscale"));
        assert!(parse(&["--quota", "100"]).unwrap_err().contains("<rps>:<burst>"));
        assert!(parse(&["--quota", "0:4"]).unwrap_err().contains("positive"));
        assert!(parse(&["--load", "-2"]).unwrap_err().contains("positive"));
        assert!(parse(&["--deadline-factor", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn point_requests_are_zipf_stamped_and_deadlined() {
        let args = parse(&["--tenants", "4", "--skew", "1", "--requests", "200"]).expect("valid");
        let case = mini_case();
        let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);
        let solo = 0.01;
        let a = point_requests(&args, &spec, 1.0, solo);
        assert_eq!(a, point_requests(&args, &spec, 1.0, solo), "seeded");
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|r| r.tenant < 4));
        assert!(a.iter().all(|r| r.class.deadline_s == Some(args.deadline_factor * solo)));
        assert!(
            a.iter().all(|r| r.class.priority == 100),
            "below the depth-exemption threshold: no tenant bypasses admission"
        );
        // Zipf skew 1 over 4 tenants: tenant 0 is hottest.
        let hot = a.iter().filter(|r| r.tenant == 0).count();
        let cold = a.iter().filter(|r| r.tenant == 3).count();
        assert!(hot > 2 * cold, "skew shows in the stamp ({hot} vs {cold})");
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        let t = cta_bench::CsvTable::new("tenant_sweep", SWEEP_COLUMNS);
        assert!(t.to_csv().starts_with(
            "skew,scheduler,autoscale,offered_rps,completed,shed,quota_shed,\
             goodput_rps,p99_ms,fairness,max_slowdown,scale_ups,final_active,schema_version\n"
        ));
    }
}
