//! The sweep experiments as library entry points.
//!
//! Each submodule holds the full implementation of one sweep harness —
//! grid construction, per-point evaluation, report metadata, and the
//! telemetry pass — expressed against the shared [`crate::harness`] API.
//! The `src/bin/*.rs` files are thin adapters that forward
//! `std::env::args()` to the `main` function here, which keeps the
//! sweep logic unit-testable and the binaries trivially small.
//!
//! All sweeps accept the shared harness flags in addition to the ones
//! in their usage text:
//!
//! * `--jobs N` — evaluate grid points on an `N`-worker pool
//!   (default: `CTA_JOBS`, then available cores). Output bytes are
//!   identical at any value; see the determinism contract in
//!   [`crate::harness`].
//! * `--kernels scalar|blocked|simd` — pick the inner-loop kernel
//!   variant (default: `CTA_KERNELS`, then `simd`). Every variant is
//!   pinned bitwise-identical, so output bytes are identical at any
//!   value; only wall-clock changes.
//! * `--pool-trace <path.json>` — export pool-occupancy wall-clock spans
//!   as a Chrome trace (one lane per worker).

pub mod brownout_sweep;
pub mod decode_sweep;
pub mod degradation_sweep;
pub mod kernel_sweep;
pub mod planet_sweep;
pub mod serve_sweep;
pub mod tenant_sweep;
