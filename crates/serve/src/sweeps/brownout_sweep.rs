//! Closed-loop overload-control sweep: goodput, tail latency, shedding
//! and quality loss across an offered-load × failure-rate grid, with and
//! without the controller.
//!
//! Every grid point is simulated twice on the *same* seeded arrival trace
//! and fault schedule: once with [`crate::OverloadControl::off`] (the
//! plain fleet) and once under the selected control mode, so each table
//! row pair isolates exactly what the controller bought — and what it
//! cost in pre-measured proxy accuracy (the `loss_pct` column). Requests
//! carry an interactive deadline (a multiple of the solo service time),
//! so goodput counts only deadline-met completions.
//!
//! ```text
//! brownout_sweep [--replicas 3] [--loads 0.8,1.3,1.8] [--requests 250]
//!                [--seed 7] [--mtbf-factors inf,0.5] [--mttr-factor 0.05]
//!                [--deadline-factor 25] [--link-gbs 96] [--routing jsq]
//!                [--batch 4] [--queue-depth 64]
//!                [--control brownout|breaker|hedge|full] [--engine step|event]
//!                [--trace <path.json>] [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! The default control mode is `brownout` (the ladder alone). `full` adds
//! the circuit breaker and hedged dispatch; note that hedging duplicates
//! work, which protects the tail against stragglers and fault windows but
//! *amplifies* sustained saturation — expect `full` to lose to `brownout`
//! at offered loads past capacity. That trade-off is the point of
//! sweeping the modes separately.
//!
//! Brownout trades *compute* for quality: a smaller (k₀, k₁, k₂) budget
//! shortens the PE-cluster critical path but moves the same activations
//! over the host link. At the paper's 12 GB/s link every evaluated shape
//! is transfer-bound (`elapsed = max(critical, transfer)` with overlap),
//! so degrading would cost accuracy and buy nothing. This sweep therefore
//! defaults to a 96 GB/s link — a compute-bound serving point where the
//! ladder has leverage — and exposes `--link-gbs` so the transfer-bound
//! regime remains one flag away (expect the off/on pairs to coincide
//! there).
//!
//! MTBF factors follow the `degradation_sweep` convention (mean time
//! between failures as a multiple of the trace span); `inf` disables
//! faults for that grid row. `--control` picks which mechanisms the "on"
//! run enables (`full` enables all three). The disabled
//! half of every pair goes through the same code path the golden-pinned
//! sweeps use, so the baseline numbers are bitwise reproducible run to
//! run. Output follows the `cta-bench` conventions: an aligned stdout
//! table plus `results/brownout_sweep.csv` and
//! `results/brownout_sweep.json`. With `--trace <path>` the harness
//! re-runs the harshest controlled point with the telemetry ring buffer
//! attached; the brownout/breaker/hedge lanes land next to the usual
//! replica tracks. Malformed flags print a usage message to stderr and
//! exit non-zero.

use std::process::ExitCode;

use cta_bench::{parse_list, parse_num, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::{CtaSystem, SystemConfig};
use cta_workloads::{case_task, mini_case};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    BreakerPolicy, CostModel, FaultPlan, FleetConfig, FleetEngine, FleetReport, HedgePolicy,
    LoadSpec, OverloadControl, QosClass, RoutingPolicy, ServeRequest,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: brownout_sweep [--replicas 3] [--loads 0.8,1.3,1.8] [--requests 250]
                      [--seed 7] [--mtbf-factors inf,0.5] [--mttr-factor 0.05]
                      [--deadline-factor 25] [--link-gbs 96]
                      [--routing rr|jsq|low] [--batch 4] [--queue-depth 64]
                      [--control brownout|breaker|hedge|full] [--engine step|event]
                      [--trace <path.json>] [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &[
    "load",
    "mtbf_factor",
    "control",
    "completed",
    "shed",
    "goodput_rps",
    "p50_ms",
    "p99_ms",
    "loss_pct",
    "brownout_s",
    "transitions",
    "hedged",
    "breaker_opens",
    "schema_version",
];

/// Which mechanisms the controlled half of each pair enables.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ControlMode {
    Brownout,
    Breaker,
    Hedge,
    Full,
}

impl ControlMode {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "brownout" => Ok(ControlMode::Brownout),
            "breaker" => Ok(ControlMode::Breaker),
            "hedge" => Ok(ControlMode::Hedge),
            "full" => Ok(ControlMode::Full),
            _ => Err(format!("unknown control mode {s:?} (brownout|breaker|hedge|full)")),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            ControlMode::Brownout => "brownout",
            ControlMode::Breaker => "breaker",
            ControlMode::Hedge => "hedge",
            ControlMode::Full => "full",
        }
    }

    fn overload(&self) -> OverloadControl {
        let all = OverloadControl::standard();
        match self {
            ControlMode::Brownout => {
                OverloadControl { brownout: all.brownout, ..OverloadControl::off() }
            }
            ControlMode::Breaker => OverloadControl {
                breaker: Some(BreakerPolicy::standard()),
                ..OverloadControl::off()
            },
            ControlMode::Hedge => {
                OverloadControl { hedge: Some(HedgePolicy::standard()), ..OverloadControl::off() }
            }
            ControlMode::Full => all,
        }
    }
}

#[derive(Debug)]
struct Args {
    replicas: usize,
    loads: Vec<f64>,
    requests: usize,
    seed: u64,
    mtbf_factors: Vec<f64>,
    mttr_factor: f64,
    deadline_factor: f64,
    link_gbs: f64,
    routing: RoutingPolicy,
    batch: usize,
    queue_depth: usize,
    control: ControlMode,
    trace: Option<String>,
    engine: FleetEngine,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            replicas: 3,
            loads: vec![0.8, 1.3, 1.8],
            requests: 250,
            seed: 7,
            mtbf_factors: vec![f64::INFINITY, 0.5],
            mttr_factor: 0.05,
            deadline_factor: 25.0,
            link_gbs: 96.0,
            routing: RoutingPolicy::JoinShortestQueue,
            batch: 4,
            queue_depth: 64,
            control: ControlMode::Brownout,
            trace: None,
            engine: FleetEngine::StepGranular,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--replicas" => {
                    args.replicas =
                        parse_num(&it.value("--replicas")?, "--replicas", "an integer")?;
                }
                "--loads" => {
                    args.loads = parse_list(&it.value("--loads")?, "--loads", "numbers")?;
                }
                "--requests" => {
                    args.requests =
                        parse_num(&it.value("--requests")?, "--requests", "an integer")?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--mtbf-factors" => {
                    args.mtbf_factors =
                        parse_list(&it.value("--mtbf-factors")?, "--mtbf-factors", "numbers")?;
                }
                "--mttr-factor" => {
                    args.mttr_factor =
                        parse_num(&it.value("--mttr-factor")?, "--mttr-factor", "a number")?;
                }
                "--deadline-factor" => {
                    args.deadline_factor = parse_num(
                        &it.value("--deadline-factor")?,
                        "--deadline-factor",
                        "a number",
                    )?;
                }
                "--link-gbs" => {
                    args.link_gbs = parse_num(&it.value("--link-gbs")?, "--link-gbs", "a number")?;
                }
                "--routing" => {
                    let v = it.value("--routing")?;
                    args.routing = RoutingPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown routing policy {v:?} (rr|jsq|low)"))?;
                }
                "--batch" => {
                    args.batch = parse_num(&it.value("--batch")?, "--batch", "an integer")?;
                }
                "--queue-depth" => {
                    args.queue_depth =
                        parse_num(&it.value("--queue-depth")?, "--queue-depth", "an integer")?;
                }
                "--control" => {
                    args.control = ControlMode::parse(&it.value("--control")?)?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.replicas == 0 || args.requests == 0 || args.batch == 0 || args.queue_depth == 0 {
            return Err("--replicas, --requests, --batch and --queue-depth must be positive".into());
        }
        if args.loads.is_empty() || args.loads.iter().any(|l| !(*l > 0.0 && l.is_finite())) {
            return Err("--loads must be a non-empty list of positive numbers".into());
        }
        // `inf` is a legal factor here (= that row runs fault-free), NaN
        // and non-positive values are not.
        if args.mtbf_factors.is_empty() || args.mtbf_factors.iter().any(|f| f.is_nan() || *f <= 0.0)
        {
            return Err(
                "--mtbf-factors must be a non-empty list of positive numbers (inf ok)".into()
            );
        }
        if !(args.mttr_factor > 0.0 && args.mttr_factor.is_finite()) {
            return Err("--mttr-factor must be positive and finite".into());
        }
        if !(args.deadline_factor > 0.0 && args.deadline_factor.is_finite()) {
            return Err("--deadline-factor must be positive and finite".into());
        }
        if !(args.link_gbs > 0.0 && args.link_gbs.is_finite()) {
            return Err("--link-gbs must be positive and finite".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("brownout_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(
        argv,
        Args::parse,
        run,
    )
}

/// The fault plan for one grid row (`inf` = fault-free), following the
/// `degradation_sweep` span-relative convention.
fn point_faults(args: &Args, requests: &[ServeRequest], factor: f64) -> FaultPlan {
    if !factor.is_finite() {
        return FaultPlan::none();
    }
    let span = requests.last().map(|r| r.arrival_s).unwrap_or(0.0).max(1e-6);
    FaultPlan::seeded(args.replicas, 2.0 * span, factor * span, args.mttr_factor * span, args.seed)
}

/// One table row + JSON point from one run.
fn emit(out: &mut PointOutput, load: f64, factor: f64, control: &str, report: &FleetReport) {
    let m = &report.metrics;
    let ov = &m.overload;
    let (p50, p99) = m.latency.as_ref().map_or((f64::NAN, f64::NAN), |l| (l.p50_s, l.p99_s));
    let brownout_s: f64 = ov.per_replica_brownout_s.iter().sum();
    out.row(vec![
        format!("{load:.2}"),
        if factor.is_finite() { format!("{factor:.2}") } else { "inf".into() },
        control.to_string(),
        m.completed.to_string(),
        m.shed.to_string(),
        format!("{:.1}", m.goodput_rps),
        format!("{:.3}", p50 * 1e3),
        format!("{:.3}", p99 * 1e3),
        format!("{:.3}", ov.mean_accuracy_loss_pct),
        format!("{brownout_s:.4}"),
        ov.brownout_transitions.to_string(),
        ov.hedged.to_string(),
        ov.breaker_opens.to_string(),
        SCHEMA_VERSION.to_string(),
    ]);
    out.point(JsonValue::obj(vec![
        ("load", JsonValue::Num(load)),
        ("mtbf_factor", if factor.is_finite() { JsonValue::Num(factor) } else { JsonValue::Null }),
        ("control", JsonValue::Str(control.into())),
        ("completed", JsonValue::Int(m.completed as i64)),
        ("shed", JsonValue::Int(m.shed as i64)),
        ("shed_rate", JsonValue::Num(m.shed_rate)),
        ("goodput_rps", JsonValue::Num(m.goodput_rps)),
        ("p50_s", JsonValue::Num(p50)),
        ("p99_s", JsonValue::Num(p99)),
        ("mean_accuracy_loss_pct", JsonValue::Num(ov.mean_accuracy_loss_pct)),
        ("max_accuracy_loss_pct", JsonValue::Num(ov.max_accuracy_loss_pct)),
        ("brownout_s", JsonValue::Num(brownout_s)),
        ("brownout_transitions", JsonValue::Int(ov.brownout_transitions as i64)),
        ("hedged", JsonValue::Int(ov.hedged as i64)),
        ("hedge_wins", JsonValue::Int(ov.hedge_wins as i64)),
        ("hedge_cancelled", JsonValue::Int(ov.hedge_cancelled as i64)),
        ("breaker_opens", JsonValue::Int(ov.breaker_opens as i64)),
        ("makespan_s", JsonValue::Num(m.makespan_s)),
    ]));
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let mut spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    let sys_cfg = SystemConfig { host_link_gbs: args.link_gbs, ..SystemConfig::paper() };
    let system = CtaSystem::new(sys_cfg);
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec, 1, 1.0, args.seed);
    let solo = cost.request_service_s(&system, &probe[0]);
    // Deadline-bearing traffic: goodput below counts only deadline-met
    // completions, which is what overload control is supposed to protect.
    let deadline_s = args.deadline_factor * solo;
    spec.class = QosClass::interactive(deadline_s);

    let base = {
        let mut cfg = FleetConfig::sharded(sys_cfg, args.replicas);
        cfg.engine = args.engine;
        cfg.routing = args.routing;
        cfg.batch = BatchPolicy::up_to(args.batch);
        cfg.admission = AdmissionPolicy::bounded(args.queue_depth);
        cfg
    };

    let grid: Vec<(f64, f64)> = args
        .loads
        .iter()
        .flat_map(|&load| args.mtbf_factors.iter().map(move |&factor| (load, factor)))
        .collect();

    h.run_grid(
        &format!(
            "Brownout sweep — {} replicas, link {} GB/s, deadline {:.3} ms ({}× solo), control {}, routing {}",
            args.replicas,
            args.link_gbs,
            deadline_s * 1e3,
            args.deadline_factor,
            args.control.label(),
            args.routing.label()
        ),
        &grid,
        |&(load, factor)| {
            let mut out = PointOutput::new();
            let rate = load * args.replicas as f64 / solo;
            let requests = poisson_requests(&spec, args.requests, rate, args.seed);
            let mut cfg = base.clone();
            cfg.faults = point_faults(args, &requests, factor);
            // Disabled half: exactly the plain fleet (the golden-pinned
            // code path), reported first for side-by-side reading.
            cfg.overload = OverloadControl::off();
            let off = simulate_fleet(&cfg, &requests);
            assert_eq!(off.metrics.completed + off.metrics.shed, args.requests, "conservation");
            emit(&mut out, load, factor, "off", &off);
            // Controlled half on the same trace and fault schedule.
            cfg.overload = args.control.overload();
            let on = simulate_fleet(&cfg, &requests);
            assert_eq!(on.metrics.completed + on.metrics.shed, args.requests, "conservation");
            emit(&mut out, load, factor, args.control.label(), &on);
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("brownout_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("replicas", JsonValue::Int(args.replicas as i64))
                .set("link_gbs", JsonValue::Num(args.link_gbs))
                .set("solo_service_s", JsonValue::Num(solo))
                .set("deadline_s", JsonValue::Num(deadline_s))
                .set("deadline_factor", JsonValue::Num(args.deadline_factor))
                .set("mttr_factor", JsonValue::Num(args.mttr_factor))
                .set("control", JsonValue::Str(args.control.label().into()))
                .set("routing", JsonValue::Str(args.routing.label().into()))
                .set("batch", JsonValue::Int(args.batch as i64))
                .set("queue_depth", JsonValue::Int(args.queue_depth as i64))
                .set("requests_per_point", JsonValue::Int(args.requests as i64))
                .set("seed", JsonValue::Int(args.seed as i64));
            // Only non-default so the default report bytes stay pinned.
            if args.engine != FleetEngine::StepGranular {
                json.set("engine", JsonValue::Str(args.engine.label().into()));
            }
        },
    );

    // Telemetry pass: the harshest controlled point (last load, last MTBF
    // factor), with the brownout/breaker/hedge lanes in the trace and the
    // overload-control section in the aggregate report.
    if let Some(path) = &args.trace {
        let load = *args.loads.last().expect("non-empty loads");
        let factor = *args.mtbf_factors.last().expect("non-empty factors");
        let rate = load * args.replicas as f64 / solo;
        let requests = poisson_requests(&spec, args.requests, rate, args.seed);
        let mut cfg = base.clone();
        cfg.faults = point_faults(args, &requests, factor);
        cfg.overload = args.control.overload();
        export_trace(
            path,
            &format!("Trace — load {load:.2}, control {} → {path}", args.control.label()),
            |sink| {
                let _ = simulate_fleet_traced(&cfg, &requests, sink);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_accepts_defaults_and_rejects_malformed_flags() {
        let ok = parse(&[]).expect("defaults valid");
        assert_eq!(ok.control, ControlMode::Brownout);
        assert!(ok.mtbf_factors[0].is_infinite(), "default grid includes the fault-free row");
        let brown = parse(&["--control", "brownout"]).expect("valid mode");
        assert!(brown.control.overload().brownout.is_some());
        assert!(brown.control.overload().breaker.is_none());

        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--control"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--control", "chaos"]).unwrap_err().contains("unknown control mode"));
        assert!(parse(&["--loads", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--mtbf-factors", "nan"]).unwrap_err().contains("positive"));
        assert!(parse(&["--deadline-factor", "-3"]).unwrap_err().contains("positive"));
        assert!(parse(&["--link-gbs", "inf"]).unwrap_err().contains("positive and finite"));
        assert_eq!(ok.engine, FleetEngine::StepGranular);
        assert_eq!(parse(&["--engine", "event"]).expect("valid").engine, FleetEngine::EventDriven);
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        assert_eq!(SCHEMA_VERSION, 2, "bump this pin alongside the layout");
    }

    #[test]
    fn every_mode_enables_exactly_what_its_name_says() {
        let on = |m: ControlMode| {
            let o = m.overload();
            (o.brownout.is_some(), o.breaker.is_some(), o.hedge.is_some())
        };
        assert_eq!(on(ControlMode::Brownout), (true, false, false));
        assert_eq!(on(ControlMode::Breaker), (false, true, false));
        assert_eq!(on(ControlMode::Hedge), (false, false, true));
        assert_eq!(on(ControlMode::Full), (true, true, true));
    }
}
