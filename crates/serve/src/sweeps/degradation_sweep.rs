//! Graceful-degradation sweep: goodput, tail latency, shed breakdown and
//! availability as the replica failure rate rises.
//!
//! The harness fixes one operating point (replica count, offered load,
//! seed) and sweeps the mean time between failures, expressed as a
//! multiple of the arrival-trace span so the defaults stay meaningful for
//! any workload scale: an MTBF factor of `0.5` means each replica crashes
//! on average twice over the trace. For every factor a seeded
//! [`crate::FaultPlan`] is injected into [`crate::simulate_fleet`]
//! and the run is reported next to the fault-free baseline (factor `inf`,
//! printed first). Output follows the `cta-bench` conventions: an aligned
//! stdout table plus `results/degradation_sweep.csv` and
//! `results/degradation_sweep.json`.
//!
//! ```text
//! degradation_sweep [--replicas 4] [--load 0.8] [--requests 300]
//!                   [--seed 7] [--mtbf-factors 4,2,1,0.5,0.25]
//!                   [--mttr-factor 0.05] [--routing jsq] [--batch 4]
//!                   [--queue-depth 64] [--trace <path.json>]
//!                   [--engine step|event]
//!                   [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! With `--trace <path>` the harness re-runs the *last* (highest failure
//! rate) sweep point with the telemetry ring buffer attached and writes a
//! validated Chrome Trace Format file; the fault lane shows outage and
//! slowdown spans next to the usual replica tracks. Malformed flags print
//! a usage message to stderr and exit non-zero. Everything is
//! deterministic for a fixed `--seed`, at any `--jobs` value.

use std::process::ExitCode;

use cta_bench::{parse_list, parse_num, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::{CtaSystem, SystemConfig};
use cta_workloads::{case_task, mini_case};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    CostModel, FaultPlan, FleetConfig, FleetEngine, FleetReport, LoadSpec, RoutingPolicy,
    ServeRequest, ShedReason,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: degradation_sweep [--replicas 4] [--load 0.8] [--requests 300]
                         [--seed 7] [--mtbf-factors 4,2,1,0.5,0.25]
                         [--mttr-factor 0.05] [--routing rr|jsq|low]
                         [--batch 4] [--queue-depth 64] [--trace <path.json>]
                         [--engine step|event]
                         [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout; the trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row.
const SWEEP_COLUMNS: &[&str] = &[
    "mtbf_factor",
    "crashes_per_replica",
    "completed",
    "shed_lost",
    "shed_other",
    "retried",
    "retry_events",
    "goodput_rps",
    "p50_ms",
    "p99_ms",
    "min_avail",
    "schema_version",
];

#[derive(Debug)]
struct Args {
    replicas: usize,
    load: f64,
    requests: usize,
    seed: u64,
    mtbf_factors: Vec<f64>,
    mttr_factor: f64,
    routing: RoutingPolicy,
    batch: usize,
    queue_depth: usize,
    trace: Option<String>,
    engine: FleetEngine,
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            replicas: 4,
            load: 0.8,
            requests: 300,
            seed: 7,
            mtbf_factors: vec![4.0, 2.0, 1.0, 0.5, 0.25],
            mttr_factor: 0.05,
            routing: RoutingPolicy::JoinShortestQueue,
            batch: 4,
            queue_depth: 64,
            trace: None,
            engine: FleetEngine::StepGranular,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--replicas" => {
                    args.replicas =
                        parse_num(&it.value("--replicas")?, "--replicas", "an integer")?;
                }
                "--load" => {
                    args.load = parse_num(&it.value("--load")?, "--load", "a number")?;
                }
                "--requests" => {
                    args.requests =
                        parse_num(&it.value("--requests")?, "--requests", "an integer")?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--mtbf-factors" => {
                    args.mtbf_factors =
                        parse_list(&it.value("--mtbf-factors")?, "--mtbf-factors", "numbers")?;
                }
                "--mttr-factor" => {
                    args.mttr_factor =
                        parse_num(&it.value("--mttr-factor")?, "--mttr-factor", "a number")?;
                }
                "--routing" => {
                    let v = it.value("--routing")?;
                    args.routing = RoutingPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown routing policy {v:?} (rr|jsq|low)"))?;
                }
                "--batch" => {
                    args.batch = parse_num(&it.value("--batch")?, "--batch", "an integer")?;
                }
                "--queue-depth" => {
                    args.queue_depth =
                        parse_num(&it.value("--queue-depth")?, "--queue-depth", "an integer")?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.replicas == 0 || args.requests == 0 || args.batch == 0 || args.queue_depth == 0 {
            return Err("--replicas, --requests, --batch and --queue-depth must be positive".into());
        }
        if !(args.load > 0.0 && args.load.is_finite()) {
            return Err("--load must be positive and finite".into());
        }
        if args.mtbf_factors.is_empty()
            || args.mtbf_factors.iter().any(|f| !(*f > 0.0 && f.is_finite()))
        {
            return Err("--mtbf-factors must be a non-empty list of positive numbers".into());
        }
        if !(args.mttr_factor > 0.0 && args.mttr_factor.is_finite()) {
            return Err("--mttr-factor must be positive and finite".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("degradation_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(
        argv,
        Args::parse,
        run,
    )
}

/// The fault plan for one sweep point; `factor = None` is the fault-free
/// baseline.
fn point_faults(args: &Args, requests: &[ServeRequest], factor: Option<f64>) -> FaultPlan {
    match factor {
        None => FaultPlan::none(),
        Some(f) => {
            let span = requests.last().map(|r| r.arrival_s).unwrap_or(0.0).max(1e-6);
            FaultPlan::seeded(
                args.replicas,
                2.0 * span,
                f * span,
                args.mttr_factor * span,
                args.seed,
            )
        }
    }
}

/// One row of the degradation table plus its JSON mirror.
fn summarise(report: &FleetReport) -> (usize, usize, f64, f64, f64, f64) {
    let m = &report.metrics;
    let shed_lost = report.shed.iter().filter(|s| s.reason == ShedReason::ReplicaLost).count();
    let shed_other = m.shed - shed_lost;
    let (p50, p99) = m.latency.as_ref().map_or((f64::NAN, f64::NAN), |l| (l.p50_s, l.p99_s));
    let min_avail = m.per_replica_availability.iter().copied().fold(f64::INFINITY, f64::min);
    (shed_lost, shed_other, m.goodput_rps, p50, p99, min_avail)
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec, 1, 1.0, args.seed);
    let solo = cost.request_service_s(&system, &probe[0]);

    let rate = args.load * args.replicas as f64 / solo;
    let requests = poisson_requests(&spec, args.requests, rate, args.seed);
    let span = requests.last().expect("non-empty trace").arrival_s;

    let base = {
        let mut cfg = FleetConfig::sharded(SystemConfig::paper(), args.replicas);
        cfg.engine = args.engine;
        cfg.routing = args.routing;
        cfg.batch = BatchPolicy::up_to(args.batch);
        cfg.admission = AdmissionPolicy::bounded(args.queue_depth);
        cfg
    };

    // Baseline first (no faults), then rising failure rate.
    let factors: Vec<Option<f64>> =
        std::iter::once(None).chain(args.mtbf_factors.iter().copied().map(Some)).collect();

    h.run_grid(
        &format!(
            "Degradation sweep — {} replicas @ load {:.2} ({:.1} rps, span {:.3} s), \
             MTTR {:.0}% of span, routing {}",
            args.replicas,
            args.load,
            rate,
            span,
            args.mttr_factor * 100.0,
            args.routing.label()
        ),
        &factors,
        |&factor| {
            let mut out = PointOutput::new();
            let mut cfg = base.clone();
            cfg.faults = point_faults(args, &requests, factor);
            let report = simulate_fleet(&cfg, &requests);
            let m = &report.metrics;
            // Conservation: every arrival is accounted for exactly once.
            assert_eq!(m.completed + m.shed, args.requests, "accounting identity");
            let (shed_lost, shed_other, goodput, p50, p99, min_avail) = summarise(&report);
            let crashes = factor.map_or(0.0, |f| 1.0 / f);
            out.row(vec![
                factor.map_or("inf".into(), |f| format!("{f:.2}")),
                format!("{crashes:.2}"),
                m.completed.to_string(),
                shed_lost.to_string(),
                shed_other.to_string(),
                m.retried.to_string(),
                m.retry_events.to_string(),
                format!("{goodput:.1}"),
                format!("{:.3}", p50 * 1e3),
                format!("{:.3}", p99 * 1e3),
                format!("{min_avail:.3}"),
                SCHEMA_VERSION.to_string(),
            ]);
            out.point(JsonValue::obj(vec![
                ("mtbf_factor", factor.map_or(JsonValue::Null, JsonValue::Num)),
                ("crashes_per_replica", JsonValue::Num(crashes)),
                ("completed", JsonValue::Int(m.completed as i64)),
                ("shed", JsonValue::Int(m.shed as i64)),
                ("shed_replica_lost", JsonValue::Int(shed_lost as i64)),
                ("retried", JsonValue::Int(m.retried as i64)),
                ("retry_events", JsonValue::Int(m.retry_events as i64)),
                ("goodput_rps", JsonValue::Num(goodput)),
                ("p50_s", JsonValue::Num(p50)),
                ("p99_s", JsonValue::Num(p99)),
                ("min_availability", JsonValue::Num(min_avail)),
                ("makespan_s", JsonValue::Num(m.makespan_s)),
            ]));
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("degradation_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("replicas", JsonValue::Int(args.replicas as i64))
                .set("load", JsonValue::Num(args.load))
                .set("offered_rps", JsonValue::Num(rate))
                .set("trace_span_s", JsonValue::Num(span))
                .set("mttr_factor", JsonValue::Num(args.mttr_factor))
                .set("routing", JsonValue::Str(args.routing.label().into()))
                .set("batch", JsonValue::Int(args.batch as i64))
                .set("queue_depth", JsonValue::Int(args.queue_depth as i64))
                .set("requests", JsonValue::Int(args.requests as i64))
                .set("seed", JsonValue::Int(args.seed as i64));
            // Only non-default so the default report bytes stay pinned.
            if args.engine != FleetEngine::StepGranular {
                json.set("engine", JsonValue::Str(args.engine.label().into()));
            }
        },
    );

    // Telemetry pass: re-run the harshest point with the ring buffer
    // attached so the fault lane (outages, slowdowns, requeues) is
    // visible next to the usual replica tracks.
    if let Some(path) = &args.trace {
        let factor = *args.mtbf_factors.last().expect("non-empty factors");
        let mut cfg = base.clone();
        cfg.faults = point_faults(args, &requests, Some(factor));
        export_trace(path, &format!("Trace — MTBF factor {factor:.2} → {path}"), |sink| {
            let _ = simulate_fleet_traced(&cfg, &requests, sink);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_accepts_defaults_and_rejects_malformed_flags() {
        let ok = parse(&[]).expect("defaults valid");
        assert_eq!(ok.mtbf_factors, vec![4.0, 2.0, 1.0, 0.5, 0.25]);
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--load"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--routing", "x"]).unwrap_err().contains("unknown routing policy"));
        assert!(parse(&["--mtbf-factors", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--mttr-factor", "-1"]).unwrap_err().contains("positive"));
        assert_eq!(ok.engine, FleetEngine::StepGranular);
        assert_eq!(parse(&["--engine", "event"]).expect("valid").engine, FleetEngine::EventDriven);
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        assert_eq!(SCHEMA_VERSION, 2, "bump this pin alongside the layout");
    }
}
