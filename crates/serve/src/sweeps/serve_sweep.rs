//! Fleet serving sweep: throughput, tail latency, goodput and shed rate
//! across offered-load points and replica counts.
//!
//! For each (replica count, load multiplier) pair the harness generates a
//! seeded Poisson trace at `multiplier × replicas / solo_service` requests
//! per second — i.e. load is expressed relative to the fleet's aggregate
//! no-queueing capacity — plays it through [`crate::simulate_fleet`],
//! and reports the aggregate metrics. Output follows the `cta-bench`
//! conventions: an aligned stdout table plus `results/serve_sweep.csv`
//! and `results/serve_sweep.json`.
//!
//! ```text
//! serve_sweep [--replicas 1,4] [--loads 0.2,0.5,0.8,1.1,1.5]
//!             [--requests 200] [--seed 7] [--routing jsq]
//!             [--batch 4] [--queue-depth 64] [--trace <path.json>]
//!             [--faults <mtbf_s>:<mttr_s>] [--brownout]
//!             [--engine step|event] [--arrivals poisson|diurnal]
//!             [--tenants N] [--scheduler fifo|drr|wfq]
//!             [--jobs N] [--pool-trace <path.json>]
//! ```
//!
//! With `--faults` each sweep point injects a seeded MTBF/MTTR crash
//! schedule ([`crate::FaultPlan::seeded`]) over twice the trace span;
//! evicted requests are requeued under the default retry budget and
//! crash-orphaned work that cannot be placed is shed as `ReplicaLost`.
//! With `--brownout` each sweep point runs under the standard quality-
//! brownout controller ([`crate::BrownoutConfig::standard`]): replicas
//! under sustained queueing degrade their CTA cluster budgets along the
//! calibrated ladder, and the JSON gains per-point quality-loss
//! attribution fields. Without the flag the output is byte-identical to
//! the pre-brownout harness. Malformed flags print a usage message to
//! stderr and exit non-zero.
//!
//! With `--trace <path>` the harness re-runs the final sweep point with
//! the telemetry ring buffer attached and writes a Chrome Trace Format
//! file (open it in `chrome://tracing` or Perfetto): one track group per
//! replica with SA/CIM/CAG/PAG/host/runtime lanes, request lifecycle
//! intervals, and queue-depth counters. The trace is validated before it
//! is written, and tracing never changes the sweep numbers — the sink is
//! compiled out of the untraced runs.
//!
//! With `--tenants N` (or `--scheduler`) every sweep point routes its
//! arrivals through the multi-tenant front end ([`crate::TenancyConfig`]):
//! requests are striped over `N` equal-weight tenants (`tenant = id % N`)
//! and drained by the chosen scheduler (default `drr`). The single-tenant
//! configuration (`--tenants 1`, any scheduler) is pinned bitwise against
//! the tenancy-off fleet — CSV, JSON and trace included (the `golden`
//! integration tests enforce it) — and multi-tenant runs add per-point
//! `fairness_index` fields plus `tenants`/`scheduler` metadata to the
//! JSON only, so the default layout never moves. `tenant_sweep` is the
//! dedicated experiment for skewed mixes, quotas and autoscaling.
//!
//! With `--engine event` every sweep point runs on the calendar-queue
//! event core ([`crate::FleetEngine::EventDriven`]) instead of the
//! step-granular scan. The two engines are pinned bitwise-equivalent
//! (the `engine` integration tests), so the CSV bytes do not change —
//! only the simulator's own complexity class does. With
//! `--arrivals diurnal` the Poisson trace is replaced by a diurnally
//! modulated one ([`cta_workloads::DiurnalSpec`]): the point rate
//! becomes the daytime rate of a four-cycle day/night pattern (night at
//! 0.25x) with a 4x flash crowd early in the second cycle.
//!
//! Everything is deterministic for a fixed `--seed`: running the sweep
//! twice — at any `--jobs` value — produces byte-identical tables.

use std::process::ExitCode;

use cta_bench::{parse_list, parse_num, FlagParser, JsonValue, SCHEMA_VERSION};
use cta_sim::{CtaSystem, SystemConfig};
use cta_workloads::{case_task, mini_case, DiurnalSpec, FlashCrowd};

use crate::harness::{export_trace, Harness, PointOutput, SweepSpec};
use crate::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    BrownoutConfig, CostModel, FaultPlan, FleetConfig, FleetEngine, LoadSpec, OverloadControl,
    RoutingPolicy, SchedulerPolicy, ServeRequest, TenancyConfig,
};

/// Usage text printed to stderr on any malformed invocation.
const USAGE: &str = "usage: serve_sweep [--replicas 1,4] [--loads 0.2,0.5,0.8,1.1,1.5]
                   [--requests 200] [--seed 7] [--routing rr|jsq|low]
                   [--batch 4] [--queue-depth 64] [--trace <path.json>]
                   [--faults <mtbf_s>:<mttr_s>] [--brownout]
                   [--engine step|event] [--arrivals poisson|diurnal]
                   [--tenants N] [--scheduler fifo|drr|wfq]
                   [--jobs N] [--pool-trace <path.json>]";

/// CSV/stdout column layout. The trailing `schema_version` column repeats
/// [`cta_bench::SCHEMA_VERSION`] on every row so a bare
/// `results/serve_sweep.csv` identifies its layout generation without the
/// JSON sidecar.
const SWEEP_COLUMNS: &[&str] = &[
    "replicas",
    "load",
    "offered_rps",
    "completed",
    "shed",
    "tput_rps",
    "goodput_rps",
    "p50_ms",
    "p99_ms",
    "util",
    "schema_version",
];

/// A parsed `--faults mtbf:mttr` spec (both in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultSpec {
    mtbf_s: f64,
    mttr_s: f64,
}

impl FaultSpec {
    fn parse(s: &str) -> Result<Self, String> {
        let (mtbf, mttr) = s
            .split_once(':')
            .ok_or_else(|| format!("--faults takes <mtbf_s>:<mttr_s>, got {s:?}"))?;
        let mtbf_s: f64 =
            mtbf.parse().map_err(|_| format!("--faults MTBF must be a number, got {mtbf:?}"))?;
        let mttr_s: f64 =
            mttr.parse().map_err(|_| format!("--faults MTTR must be a number, got {mttr:?}"))?;
        if !(mtbf_s > 0.0 && mtbf_s.is_finite() && mttr_s > 0.0 && mttr_s.is_finite()) {
            return Err(format!("--faults times must be positive and finite, got {s:?}"));
        }
        Ok(Self { mtbf_s, mttr_s })
    }
}

/// The arrival process a sweep point generates its trace from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// Constant-rate Poisson arrivals (the default).
    Poisson,
    /// Diurnally modulated arrivals with a flash-crowd overlay.
    Diurnal,
}

impl Arrivals {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "poisson" => Some(Arrivals::Poisson),
            "diurnal" => Some(Arrivals::Diurnal),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Arrivals::Poisson => "poisson",
            Arrivals::Diurnal => "diurnal",
        }
    }
}

#[derive(Debug)]
struct Args {
    replicas: Vec<usize>,
    loads: Vec<f64>,
    requests: usize,
    seed: u64,
    routing: RoutingPolicy,
    batch: usize,
    queue_depth: usize,
    trace: Option<String>,
    faults: Option<FaultSpec>,
    brownout: bool,
    engine: FleetEngine,
    arrivals: Arrivals,
    /// `Some` when `--tenants` or `--scheduler` was given: the tenancy
    /// front end is enabled with this many equal-weight tenants.
    tenants: Option<u32>,
    scheduler: SchedulerPolicy,
}

impl Args {
    /// The tenancy configuration this invocation asked for, if any.
    fn tenancy(&self) -> Option<TenancyConfig> {
        self.tenants.map(|n| TenancyConfig::equal_weight(n, self.scheduler))
    }
}

impl Args {
    fn parse(it: &mut FlagParser) -> Result<Self, String> {
        let mut args = Args {
            replicas: vec![1, 4],
            loads: vec![0.2, 0.5, 0.8, 1.1, 1.5],
            requests: 200,
            seed: 7,
            routing: RoutingPolicy::JoinShortestQueue,
            batch: 4,
            queue_depth: 64,
            trace: None,
            faults: None,
            brownout: false,
            engine: FleetEngine::StepGranular,
            arrivals: Arrivals::Poisson,
            tenants: None,
            scheduler: SchedulerPolicy::Drr,
        };
        while let Some(flag) = it.next_flag() {
            match flag.as_str() {
                "--replicas" => {
                    args.replicas = parse_list(&it.value("--replicas")?, "--replicas", "integers")?;
                }
                "--loads" => {
                    args.loads = parse_list(&it.value("--loads")?, "--loads", "numbers")?;
                }
                "--requests" => {
                    args.requests =
                        parse_num(&it.value("--requests")?, "--requests", "an integer")?;
                }
                "--seed" => {
                    args.seed = parse_num(&it.value("--seed")?, "--seed", "an integer")?;
                }
                "--routing" => {
                    let v = it.value("--routing")?;
                    args.routing = RoutingPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown routing policy {v:?} (rr|jsq|low)"))?;
                }
                "--batch" => {
                    args.batch = parse_num(&it.value("--batch")?, "--batch", "an integer")?;
                }
                "--queue-depth" => {
                    args.queue_depth =
                        parse_num(&it.value("--queue-depth")?, "--queue-depth", "an integer")?;
                }
                "--trace" => {
                    args.trace = Some(it.value("--trace")?);
                }
                "--faults" => {
                    args.faults = Some(FaultSpec::parse(&it.value("--faults")?)?);
                }
                // A bare switch: the brownout ladder and controller are
                // the calibrated standards, not CLI-tunable knobs.
                "--brownout" => args.brownout = true,
                "--engine" => {
                    let v = it.value("--engine")?;
                    args.engine = FleetEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (step|event)"))?;
                }
                "--arrivals" => {
                    let v = it.value("--arrivals")?;
                    args.arrivals = Arrivals::parse(&v).ok_or_else(|| {
                        format!("unknown arrival process {v:?} (poisson|diurnal)")
                    })?;
                }
                "--tenants" => {
                    args.tenants =
                        Some(parse_num(&it.value("--tenants")?, "--tenants", "an integer")?);
                }
                "--scheduler" => {
                    let v = it.value("--scheduler")?;
                    args.scheduler = SchedulerPolicy::parse(&v)
                        .ok_or_else(|| format!("unknown scheduler {v:?} (fifo|drr|wfq)"))?;
                    args.tenants.get_or_insert(1);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.replicas.is_empty() || args.loads.is_empty() {
            return Err("empty sweep: --replicas and --loads must be non-empty".into());
        }
        if args.batch == 0 {
            return Err("--batch must be positive".into());
        }
        if args.queue_depth == 0 {
            return Err("--queue-depth must be positive".into());
        }
        if args.requests == 0 {
            return Err("--requests must be positive".into());
        }
        if args.replicas.contains(&0) {
            return Err("--replicas entries must be positive".into());
        }
        if args.tenants == Some(0) {
            return Err("--tenants must be positive".into());
        }
        Ok(args)
    }
}

/// The binary entry point: parse `argv` (plus the shared harness flags)
/// and run the sweep; malformed flags print the usage text to stderr and
/// exit non-zero.
pub fn main(argv: impl Iterator<Item = String>) -> ExitCode {
    SweepSpec::new("serve_sweep").usage(USAGE).columns(SWEEP_COLUMNS).main(argv, Args::parse, run)
}

/// The fault plan for one sweep point: a seeded MTBF/MTTR schedule over
/// twice the trace span (so outages can land anywhere in the run),
/// deterministic in (spec, replicas, trace, seed).
fn point_faults(
    spec: Option<FaultSpec>,
    replicas: usize,
    requests: &[ServeRequest],
    seed: u64,
) -> FaultPlan {
    match spec {
        None => FaultPlan::none(),
        Some(f) => {
            let span = requests.last().map(|r| r.arrival_s).unwrap_or(0.0).max(1e-6);
            FaultPlan::seeded(replicas, 2.0 * span, f.mtbf_s, f.mttr_s, seed)
        }
    }
}

/// The fleet configuration for one sweep point (faults attached later,
/// once the point's arrival trace exists).
fn point_config(args: &Args, replicas: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.engine = args.engine;
    cfg.routing = args.routing;
    cfg.batch = BatchPolicy::up_to(args.batch);
    cfg.admission = AdmissionPolicy::bounded(args.queue_depth);
    if args.brownout {
        cfg.overload = OverloadControl {
            brownout: Some(BrownoutConfig::standard()),
            ..OverloadControl::off()
        };
    }
    cfg.tenancy = args.tenancy();
    cfg
}

/// The arrival trace for one sweep point. Poisson traces come straight
/// from [`poisson_requests`]; diurnal traces treat the point rate as the
/// daytime rate of a four-cycle day/night pattern (night at 0.25x) with
/// a 4x flash crowd early in the second cycle, sized so the cycle
/// structure fits the trace span whatever `--requests` and the rate are.
fn point_requests(args: &Args, spec: &LoadSpec, rate: f64, seed: u64) -> Vec<ServeRequest> {
    let requests = raw_point_requests(args, spec, rate, seed);
    match args.tenants {
        // Stripe arrivals over the equal-weight tenants round-robin.
        Some(n) if n > 1 => requests
            .into_iter()
            .map(|r| {
                let t = (r.id % n as u64) as u32;
                r.with_tenant(t)
            })
            .collect(),
        _ => requests,
    }
}

fn raw_point_requests(args: &Args, spec: &LoadSpec, rate: f64, seed: u64) -> Vec<ServeRequest> {
    match args.arrivals {
        Arrivals::Poisson => poisson_requests(spec, args.requests, rate, seed),
        Arrivals::Diurnal => {
            let period = (args.requests as f64 / rate / 4.0).max(1e-6);
            let diurnal = DiurnalSpec::new(rate, period, 0.6, 0.25).with_flash(FlashCrowd::new(
                1.1 * period,
                0.2 * period,
                4.0,
            ));
            diurnal
                .arrival_times(args.requests, seed)
                .into_iter()
                .enumerate()
                .map(|(id, t)| {
                    ServeRequest::uniform(
                        id as u64,
                        t,
                        spec.class,
                        spec.task,
                        spec.layers,
                        spec.heads,
                    )
                })
                .collect()
        }
    }
}

fn run(h: &Harness<Args>) {
    let args = h.args();
    let case = mini_case();
    let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);

    // Fleet capacity normalisation: one replica serves one request every
    // `solo` seconds when nothing queues.
    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec, 1, 1.0, args.seed);
    let solo = cost.request_service_s(&system, &probe[0]);

    let grid: Vec<(usize, f64)> = args
        .replicas
        .iter()
        .flat_map(|&replicas| args.loads.iter().map(move |&load| (replicas, load)))
        .collect();

    h.run_grid(
        &format!(
            "Fleet serving sweep — {}×{} heads/layer, solo service {:.3} ms, routing {}",
            case.model.layers,
            case.model.heads,
            solo * 1e3,
            args.routing.label()
        ),
        &grid,
        |&(replicas, load)| {
            let mut out = PointOutput::new();
            let mut cfg = point_config(args, replicas);
            let rate = load * replicas as f64 / solo;
            let requests = point_requests(args, &spec, rate, args.seed);
            cfg.faults = point_faults(args.faults, replicas, &requests, args.seed);
            let report = simulate_fleet(&cfg, &requests);
            let m = &report.metrics;
            let (p50, p99, tput) = m
                .latency
                .as_ref()
                .map_or((f64::NAN, f64::NAN, 0.0), |l| (l.p50_s, l.p99_s, l.throughput_rps));
            let util = m.per_replica_utilization.iter().sum::<f64>()
                / m.per_replica_utilization.len() as f64;
            out.row(vec![
                replicas.to_string(),
                format!("{load:.2}"),
                format!("{rate:.1}"),
                m.completed.to_string(),
                m.shed.to_string(),
                format!("{tput:.1}"),
                format!("{:.1}", m.goodput_rps),
                format!("{:.3}", p50 * 1e3),
                format!("{:.3}", p99 * 1e3),
                format!("{util:.2}"),
                SCHEMA_VERSION.to_string(),
            ]);
            let mut point = JsonValue::obj(vec![
                ("replicas", JsonValue::Int(replicas as i64)),
                ("load", JsonValue::Num(load)),
                ("offered_rps", JsonValue::Num(rate)),
                ("offered", JsonValue::Int(m.offered as i64)),
                ("completed", JsonValue::Int(m.completed as i64)),
                ("shed", JsonValue::Int(m.shed as i64)),
                ("shed_rate", JsonValue::Num(m.shed_rate)),
                ("throughput_rps", JsonValue::Num(tput)),
                ("goodput_rps", JsonValue::Num(m.goodput_rps)),
                ("p50_s", JsonValue::Num(p50)),
                ("p99_s", JsonValue::Num(p99)),
                ("mean_utilization", JsonValue::Num(util)),
                ("makespan_s", JsonValue::Num(m.makespan_s)),
            ]);
            // Fault fields ride along only when --faults is given so the
            // default report layout is byte-identical to the healthy sweep.
            if args.faults.is_some() {
                let min_avail =
                    m.per_replica_availability.iter().copied().fold(f64::INFINITY, f64::min);
                if let JsonValue::Obj(fields) = &mut point {
                    fields.push(("retried".into(), JsonValue::Int(m.retried as i64)));
                    fields.push(("retry_events".into(), JsonValue::Int(m.retry_events as i64)));
                    fields.push(("min_availability".into(), JsonValue::Num(min_avail)));
                }
            }
            // Per-tenant isolation numbers ride along only for genuinely
            // multi-tenant runs, so `--tenants 1` stays byte-identical to
            // the tenancy-off report.
            if args.tenants.is_some_and(|n| n > 1) {
                let t = report.metrics.tenancy.as_ref().expect("tenancy stats reported");
                if let JsonValue::Obj(fields) = &mut point {
                    fields.push(("fairness_index".into(), JsonValue::Num(t.fairness_index)));
                    fields.push(("max_slowdown".into(), JsonValue::Num(t.max_slowdown)));
                }
            }
            // Likewise, brownout attribution only with --brownout.
            if args.brownout {
                let ov = &m.overload;
                let brownout_s: f64 = ov.per_replica_brownout_s.iter().sum();
                if let JsonValue::Obj(fields) = &mut point {
                    fields.push((
                        "mean_accuracy_loss_pct".into(),
                        JsonValue::Num(ov.mean_accuracy_loss_pct),
                    ));
                    fields.push((
                        "max_accuracy_loss_pct".into(),
                        JsonValue::Num(ov.max_accuracy_loss_pct),
                    ));
                    fields.push((
                        "brownout_transitions".into(),
                        JsonValue::Int(ov.brownout_transitions as i64),
                    ));
                    fields.push(("brownout_s".into(), JsonValue::Num(brownout_s)));
                }
            }
            out.point(point);
            out
        },
        |json| {
            json.set("experiment", JsonValue::Str("serve_sweep".into()))
                .set("case", JsonValue::Str(case.name()))
                .set("layers", JsonValue::Int(case.model.layers as i64))
                .set("heads", JsonValue::Int(case.model.heads as i64))
                .set("solo_service_s", JsonValue::Num(solo))
                .set("routing", JsonValue::Str(args.routing.label().into()))
                .set("batch", JsonValue::Int(args.batch as i64))
                .set("queue_depth", JsonValue::Int(args.queue_depth as i64))
                .set("requests_per_point", JsonValue::Int(args.requests as i64))
                .set("seed", JsonValue::Int(args.seed as i64))
                .set("distinct_task_shapes", JsonValue::Int(cost.distinct_shapes() as i64));
            if let Some(f) = args.faults {
                json.set("fault_mtbf_s", JsonValue::Num(f.mtbf_s))
                    .set("fault_mttr_s", JsonValue::Num(f.mttr_s));
            }
            if args.brownout {
                json.set("brownout", JsonValue::Bool(true));
            }
            // Engine/arrivals metadata only when non-default, so the
            // default report bytes stay pinned (and a step-vs-event CSV
            // diff is the whole equivalence check).
            if args.engine != FleetEngine::StepGranular {
                json.set("engine", JsonValue::Str(args.engine.label().into()));
            }
            if args.arrivals != Arrivals::Poisson {
                json.set("arrivals", JsonValue::Str(args.arrivals.label().into()));
            }
            // Tenancy metadata only for multi-tenant runs: the pinned
            // single-tenant replay must reproduce the golden JSON bytes.
            if args.tenants.is_some_and(|n| n > 1) {
                json.set("tenants", JsonValue::Int(args.tenants.unwrap_or(1) as i64))
                    .set("scheduler", JsonValue::Str(args.scheduler.label().into()));
            }
        },
    );

    // Telemetry pass: re-run the final sweep point with the ring buffer
    // attached and export a Chrome trace. The traced run reproduces the
    // untraced one bit for bit (NullSink vs RingBufferSink is pinned by
    // the determinism-guard test), so the sweep numbers above still
    // describe exactly what the trace shows.
    if let Some(path) = &args.trace {
        let replicas = *args.replicas.last().expect("non-empty sweep");
        let load = *args.loads.last().expect("non-empty sweep");
        let mut cfg = point_config(args, replicas);
        let rate = load * replicas as f64 / solo;
        let requests = point_requests(args, &spec, rate, args.seed);
        cfg.faults = point_faults(args.faults, replicas, &requests, args.seed);
        export_trace(
            path,
            &format!("Trace — {replicas} replicas @ load {load:.2} → {path}"),
            |sink| {
                let _ = simulate_fleet_traced(&cfg, &requests, sink);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(&mut FlagParser::new(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn args_parse_reports_malformed_flags_instead_of_panicking() {
        assert!(parse(&[]).is_ok());
        assert!(!parse(&[]).unwrap().brownout);
        let ok = parse(&["--routing", "rr", "--faults", "5:0.5", "--brownout"]).expect("valid");
        assert_eq!(ok.routing, RoutingPolicy::RoundRobin);
        assert_eq!(ok.faults, Some(FaultSpec { mtbf_s: 5.0, mttr_s: 0.5 }));
        assert!(ok.brownout);
        // --brownout is a bare switch: a trailing word is a flag error.
        assert!(parse(&["--brownout", "yes"]).unwrap_err().contains("unknown flag"));

        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--seed"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--routing", "chaotic"]).unwrap_err().contains("unknown routing policy"));
        assert!(parse(&["--loads", "0.5,oops"]).unwrap_err().contains("--loads"));
        assert!(parse(&["--faults", "5"]).unwrap_err().contains("mtbf"));
        assert!(parse(&["--faults", "0:1"]).unwrap_err().contains("positive"));
        assert!(parse(&["--replicas", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--batch", "0"]).unwrap_err().contains("positive"));
    }

    #[test]
    fn engine_and_arrivals_flags_parse_with_step_poisson_defaults() {
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.engine, FleetEngine::StepGranular);
        assert_eq!(d.arrivals, Arrivals::Poisson);
        let ev = parse(&["--engine", "event", "--arrivals", "diurnal"]).expect("valid");
        assert_eq!(ev.engine, FleetEngine::EventDriven);
        assert_eq!(ev.arrivals, Arrivals::Diurnal);
        assert!(parse(&["--engine", "warp"]).unwrap_err().contains("unknown engine"));
        assert!(parse(&["--arrivals", "tidal"]).unwrap_err().contains("unknown arrival process"));
    }

    #[test]
    fn tenancy_flags_default_off_and_parse_gracefully() {
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.tenants, None, "tenancy stays off without a flag");
        assert!(d.tenancy().is_none());
        // --scheduler alone implies a single tenant, the pinned replay
        // configuration.
        let one = parse(&["--scheduler", "drr"]).expect("valid");
        assert_eq!(one.tenants, Some(1));
        assert_eq!(one.tenancy(), Some(TenancyConfig::equal_weight(1, SchedulerPolicy::Drr)));
        let many = parse(&["--tenants", "4", "--scheduler", "wfq"]).expect("valid");
        assert_eq!(many.tenancy(), Some(TenancyConfig::equal_weight(4, SchedulerPolicy::Wfq)));
        assert!(parse(&["--tenants", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--tenants", "many"]).unwrap_err().contains("--tenants"));
        assert!(parse(&["--scheduler", "chaos"]).unwrap_err().contains("unknown scheduler"));
    }

    #[test]
    fn multi_tenant_requests_are_striped_round_robin() {
        let args = parse(&["--tenants", "3", "--requests", "30"]).expect("valid");
        let case = mini_case();
        let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);
        let reqs = point_requests(&args, &spec, 50.0, 7);
        assert!(reqs.iter().all(|r| r.tenant == (r.id % 3) as u32));
        // Single-tenant parses leave the trace untouched (tenant 0 is
        // the default id), so the golden replay sees identical inputs.
        let one = parse(&["--scheduler", "drr", "--requests", "30"]).expect("valid");
        assert_eq!(point_requests(&one, &spec, 50.0, 7), {
            let off = parse(&["--requests", "30"]).expect("valid");
            point_requests(&off, &spec, 50.0, 7)
        });
    }

    #[test]
    fn diurnal_points_are_sorted_deterministic_and_distinct_from_poisson() {
        let mut args = parse(&["--arrivals", "diurnal", "--requests", "100"]).expect("valid");
        let case = mini_case();
        let spec = LoadSpec::standard(case_task(&case), case.model.layers, case.model.heads);
        let a = point_requests(&args, &spec, 50.0, 7);
        let b = point_requests(&args, &spec, 50.0, 7);
        assert_eq!(a, b, "diurnal traces are seeded");
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0].arrival_s < w[1].arrival_s));
        args.arrivals = Arrivals::Poisson;
        let p = point_requests(&args, &spec, 50.0, 7);
        assert_ne!(a, p, "diurnal modulation changes the trace");
    }

    #[test]
    fn csv_header_carries_schema_version() {
        assert_eq!(SWEEP_COLUMNS.last(), Some(&"schema_version"));
        assert_eq!(SCHEMA_VERSION, 2, "bump this pin alongside the layout");
        // Header renders exactly as downstream plotting scripts expect.
        let t = cta_bench::CsvTable::new("serve_sweep", SWEEP_COLUMNS);
        assert!(t.to_csv().starts_with(
            "replicas,load,offered_rps,completed,shed,tput_rps,\
             goodput_rps,p50_ms,p99_ms,util,schema_version\n"
        ));
    }
}
