//! Replica-selection policies.

use crate::replica::Replica;
use crate::CostModel;

/// How arriving requests are assigned to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through replicas in index order, ignoring state.
    RoundRobin,
    /// Send to the replica with the fewest requests in flight (queued +
    /// active); ties break to the lowest index.
    JoinShortestQueue,
    /// Send to the replica with the least estimated outstanding work in
    /// seconds (committed schedule + remaining layers + queued service);
    /// ties break to the lowest index. Costs come from the shared
    /// [`CostModel`], so the decision never re-runs the simulator.
    LeastOutstandingWork,
}

impl RoutingPolicy {
    /// Short identifier used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "rr",
            RoutingPolicy::JoinShortestQueue => "jsq",
            RoutingPolicy::LeastOutstandingWork => "low",
        }
    }

    /// Parses a CLI label (`rr` / `jsq` / `low`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" | "round-robin" => Some(RoutingPolicy::RoundRobin),
            "jsq" | "join-shortest-queue" => Some(RoutingPolicy::JoinShortestQueue),
            "low" | "least-outstanding-work" => Some(RoutingPolicy::LeastOutstandingWork),
            _ => None,
        }
    }

    /// Selects the replica for a request arriving at `now`, considering
    /// only healthy (`up`) replicas — arrivals never land on a down
    /// replica. When `routable` is given (the circuit-breaker mask, and
    /// the hedge dispatcher's primary-exclusion mask), replicas whose
    /// entry is `false` are skipped too: up but breaker-blocked replicas
    /// take no routed traffic. Returns `None` when no replica is
    /// eligible. `rr_cursor` is the round-robin state, advanced only by
    /// that policy.
    ///
    /// With every replica up and no mask (the fault-free,
    /// overload-control-off path) the picks are identical to the
    /// health-unaware policies, so healthy runs stay
    /// bitwise-reproducible.
    pub(crate) fn choose(
        &self,
        replicas: &mut [Replica],
        cost: &mut CostModel,
        now: f64,
        rr_cursor: &mut usize,
        routable: Option<&[bool]>,
    ) -> Option<usize> {
        let eligible = |i: usize, r: &Replica| r.up && routable.is_none_or(|mask| mask[i]);
        match self {
            RoutingPolicy::RoundRobin => {
                let n = replicas.len();
                for k in 0..n {
                    let i = (*rr_cursor + k) % n;
                    if eligible(i, &replicas[i]) {
                        *rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::JoinShortestQueue => replicas
                .iter()
                .enumerate()
                .filter(|(i, r)| eligible(*i, r))
                .min_by_key(|(i, r)| (r.load(), *i))
                .map(|(i, _)| i),
            RoutingPolicy::LeastOutstandingWork => {
                let mut best: Option<usize> = None;
                let mut best_work = f64::INFINITY;
                for (i, r) in replicas.iter_mut().enumerate() {
                    if !(r.up && routable.is_none_or(|mask| mask[i])) {
                        continue;
                    }
                    let work = r.outstanding_s(cost, now);
                    if work < best_work {
                        best_work = work;
                        best = Some(i);
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Pending;
    use crate::{QosClass, ServeRequest};
    use cta_sim::{AttentionTask, CtaSystem, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn replicas(n: usize) -> Vec<Replica> {
        (0..n).map(|i| Replica::new(i, CtaSystem::new(SystemConfig::paper()))).collect()
    }

    fn queued(id: u64, layers: usize) -> Pending {
        Pending::fresh(
            ServeRequest::uniform(id, 0.0, QosClass::standard(), task(), layers, 4),
            layers as f64,
        )
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::LeastOutstandingWork,
        ] {
            assert_eq!(RoutingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RoutingPolicy::parse("nope"), None);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rs = replicas(3);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        let picks: Vec<Option<usize>> = (0..6)
            .map(|_| RoutingPolicy::RoundRobin.choose(&mut rs, &mut cost, 0.0, &mut cursor, None))
            .collect();
        assert_eq!(picks, vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn round_robin_skips_down_replicas() {
        let mut rs = replicas(3);
        rs[1].crash(0.0);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        let picks: Vec<Option<usize>> = (0..4)
            .map(|_| RoutingPolicy::RoundRobin.choose(&mut rs, &mut cost, 0.0, &mut cursor, None))
            .collect();
        assert_eq!(picks, vec![Some(0), Some(2), Some(0), Some(2)]);
    }

    #[test]
    fn all_policies_return_none_when_fleet_is_down() {
        let mut rs = replicas(2);
        rs[0].crash(0.0);
        rs[1].crash(0.0);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        for p in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::LeastOutstandingWork,
        ] {
            assert_eq!(p.choose(&mut rs, &mut cost, 0.0, &mut cursor, None), None);
        }
    }

    #[test]
    fn jsq_and_low_never_pick_a_down_replica() {
        let mut rs = replicas(2);
        // Replica 0 is idle but down; replica 1 is loaded but up.
        rs[0].crash(0.0);
        rs[1].enqueue(queued(0, 10));
        let mut cost = CostModel::new();
        let mut cursor = 0;
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(1)
        );
        assert_eq!(
            RoutingPolicy::LeastOutstandingWork.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(1)
        );
    }

    #[test]
    fn jsq_prefers_emptier_replica() {
        let mut rs = replicas(2);
        rs[0].enqueue(queued(0, 1));
        rs[0].enqueue(queued(1, 1));
        let mut cost = CostModel::new();
        let mut cursor = 0;
        let pick =
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor, None);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn low_sees_work_not_just_counts() {
        // Replica 0 queues one LONG request, replica 1 queues two short
        // ones: JSQ picks 0, LOW picks 1... unless the short pair still
        // outweighs the long one. Make the long request 10 layers vs two
        // 1-layer shorts so the work comparison is unambiguous.
        let mut rs = replicas(2);
        rs[0].enqueue(queued(0, 10));
        rs[1].enqueue(queued(1, 1));
        rs[1].enqueue(queued(2, 1));
        let mut cost = CostModel::new();
        let mut cursor = 0;
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(0)
        );
        assert_eq!(
            RoutingPolicy::LeastOutstandingWork.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(1)
        );
    }

    #[test]
    fn routable_mask_excludes_up_replicas() {
        // Replica 0 is up but masked out (breaker open): every policy
        // must skip it; an all-false mask routes nowhere even though the
        // fleet is up.
        let mut rs = replicas(2);
        let mut cost = CostModel::new();
        for p in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::LeastOutstandingWork,
        ] {
            let mut cursor = 0;
            assert_eq!(
                p.choose(&mut rs, &mut cost, 0.0, &mut cursor, Some(&[false, true])),
                Some(1),
                "{p:?} must skip the masked replica"
            );
            assert_eq!(
                p.choose(&mut rs, &mut cost, 0.0, &mut cursor, Some(&[false, false])),
                None,
                "{p:?} must route nowhere under an all-false mask"
            );
        }
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut rs = replicas(4);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(0)
        );
        assert_eq!(
            RoutingPolicy::LeastOutstandingWork.choose(&mut rs, &mut cost, 0.0, &mut cursor, None),
            Some(0)
        );
    }
}
