//! Replica-selection policies.

use crate::replica::Replica;
use crate::CostModel;

/// How arriving requests are assigned to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through replicas in index order, ignoring state.
    RoundRobin,
    /// Send to the replica with the fewest requests in flight (queued +
    /// active); ties break to the lowest index.
    JoinShortestQueue,
    /// Send to the replica with the least estimated outstanding work in
    /// seconds (committed schedule + remaining layers + queued service);
    /// ties break to the lowest index. Costs come from the shared
    /// [`CostModel`], so the decision never re-runs the simulator.
    LeastOutstandingWork,
}

impl RoutingPolicy {
    /// Short identifier used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "rr",
            RoutingPolicy::JoinShortestQueue => "jsq",
            RoutingPolicy::LeastOutstandingWork => "low",
        }
    }

    /// Parses a CLI label (`rr` / `jsq` / `low`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" | "round-robin" => Some(RoutingPolicy::RoundRobin),
            "jsq" | "join-shortest-queue" => Some(RoutingPolicy::JoinShortestQueue),
            "low" | "least-outstanding-work" => Some(RoutingPolicy::LeastOutstandingWork),
            _ => None,
        }
    }

    /// Selects the replica for a request arriving at `now`. `rr_cursor`
    /// is the round-robin state, advanced only by that policy.
    pub(crate) fn choose(
        &self,
        replicas: &mut [Replica],
        cost: &mut CostModel,
        now: f64,
        rr_cursor: &mut usize,
    ) -> usize {
        match self {
            RoutingPolicy::RoundRobin => {
                let i = *rr_cursor % replicas.len();
                *rr_cursor = (*rr_cursor + 1) % replicas.len();
                i
            }
            RoutingPolicy::JoinShortestQueue => replicas
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.load(), *i))
                .map(|(i, _)| i)
                .expect("at least one replica"),
            RoutingPolicy::LeastOutstandingWork => {
                let mut best = 0usize;
                let mut best_work = f64::INFINITY;
                for (i, r) in replicas.iter_mut().enumerate() {
                    let work = r.outstanding_s(cost, now);
                    if work < best_work {
                        best_work = work;
                        best = i;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Pending;
    use crate::{QosClass, ServeRequest};
    use cta_sim::{AttentionTask, CtaSystem, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn replicas(n: usize) -> Vec<Replica> {
        (0..n).map(|i| Replica::new(i, CtaSystem::new(SystemConfig::paper()))).collect()
    }

    fn queued(id: u64, layers: usize) -> Pending {
        Pending {
            request: ServeRequest::uniform(id, 0.0, QosClass::standard(), task(), layers, 4),
            est_service_s: layers as f64,
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::LeastOutstandingWork,
        ] {
            assert_eq!(RoutingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RoutingPolicy::parse("nope"), None);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rs = replicas(3);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| RoutingPolicy::RoundRobin.choose(&mut rs, &mut cost, 0.0, &mut cursor))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_prefers_emptier_replica() {
        let mut rs = replicas(2);
        rs[0].enqueue(queued(0, 1));
        rs[0].enqueue(queued(1, 1));
        let mut cost = CostModel::new();
        let mut cursor = 0;
        let pick = RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor);
        assert_eq!(pick, 1);
    }

    #[test]
    fn low_sees_work_not_just_counts() {
        // Replica 0 queues one LONG request, replica 1 queues two short
        // ones: JSQ picks 0, LOW picks 1... unless the short pair still
        // outweighs the long one. Make the long request 10 layers vs two
        // 1-layer shorts so the work comparison is unambiguous.
        let mut rs = replicas(2);
        rs[0].enqueue(queued(0, 10));
        rs[1].enqueue(queued(1, 1));
        rs[1].enqueue(queued(2, 1));
        let mut cost = CostModel::new();
        let mut cursor = 0;
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor),
            0
        );
        assert_eq!(
            RoutingPolicy::LeastOutstandingWork.choose(&mut rs, &mut cost, 0.0, &mut cursor),
            1
        );
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut rs = replicas(4);
        let mut cost = CostModel::new();
        let mut cursor = 0;
        assert_eq!(
            RoutingPolicy::JoinShortestQueue.choose(&mut rs, &mut cost, 0.0, &mut cursor),
            0
        );
        assert_eq!(
            RoutingPolicy::LeastOutstandingWork.choose(&mut rs, &mut cost, 0.0, &mut cursor),
            0
        );
    }
}
