//! Deterministic fault injection and retry policy.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every crash
//! window, step slowdown and host-link stall is a concrete time interval
//! fixed before the simulation starts. [`FaultPlan::seeded`] draws such a
//! schedule from a seeded RNG (alternating exponential up/down intervals,
//! the classic MTBF/MTTR renewal model), so a fault scenario is exactly as
//! reproducible as the arrival trace it runs against — the same plan and
//! trace always produce the same [`FleetReport`](crate::FleetReport),
//! bit for bit.
//!
//! Failure semantics (pinned by the `faults` integration tests):
//!
//! * layer steps are **atomic** — a step committed before a crash instant
//!   finishes and retires its completions (the host receives per-layer
//!   activations as each step streams back, so completed layers are never
//!   lost);
//! * at the crash instant the replica's remaining work (mid-flight actives
//!   and queued requests) is evicted and requeued through routing with a
//!   bounded [`RetryPolicy`] budget, resuming from the last completed
//!   layer; requests that exhaust the budget, or whose deadline can no
//!   longer be met, are shed with
//!   [`ShedReason::ReplicaLost`](crate::ShedReason::ReplicaLost);
//! * arrivals never route to a down replica; if *no* replica is up the
//!   arrival is shed with `ReplicaLost`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One replica outage: down at `down_s`, back at `up_s` (`None` = never).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// Replica index the outage applies to.
    pub replica: usize,
    /// Crash instant, seconds.
    pub down_s: f64,
    /// Recovery instant, seconds; `None` for a permanent loss.
    pub up_s: Option<f64>,
}

/// A transient compute slowdown: layer steps *starting* inside
/// `[from_s, until_s)` on `replica` take `factor`× their nominal time
/// (thermal throttling, a noisy neighbour, a degraded unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Replica index the slowdown applies to.
    pub replica: usize,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub until_s: f64,
    /// Multiplier on step time; must be `> 0` (values `> 1` slow down).
    pub factor: f64,
}

/// A host-link stall: weight uploads paid by batch joins inside
/// `[from_s, until_s)` on `replica` take `factor`× their nominal time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStall {
    /// Replica index the stall applies to.
    pub replica: usize,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub until_s: f64,
    /// Multiplier on upload time; must be `> 0`.
    pub factor: f64,
}

/// A deterministic fault schedule for one fleet run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Replica outages. Per replica they must be time-sorted and
    /// non-overlapping ([`validate`](Self::validate) enforces this).
    pub crashes: Vec<CrashWindow>,
    /// Compute slowdown windows.
    pub slowdowns: Vec<Slowdown>,
    /// Host-link stall windows.
    pub link_stalls: Vec<LinkStall>,
}

impl FaultPlan {
    /// The healthy plan: no faults. With this plan the runtime reproduces
    /// the fault-free fleet bitwise (pinned by test).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty() && self.link_stalls.is_empty()
    }

    /// Draws a crash schedule from the MTBF/MTTR renewal model: each
    /// replica alternates exponential up intervals (mean `mtbf_s`) and
    /// down intervals (mean `mttr_s`), starting up at `t = 0`, until
    /// `horizon_s`. A window whose repair would land past the horizon is
    /// kept with its drawn `up_s` (recovery beyond the horizon is
    /// harmless), so the plan depends only on the arguments, never on the
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or any of `horizon_s`, `mtbf_s`,
    /// `mttr_s` is not positive and finite.
    pub fn seeded(replicas: usize, horizon_s: f64, mtbf_s: f64, mttr_s: f64, seed: u64) -> Self {
        assert!(replicas > 0, "at least one replica");
        assert!(horizon_s > 0.0 && horizon_s.is_finite(), "horizon must be positive and finite");
        assert!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive and finite");
        assert!(mttr_s > 0.0 && mttr_s.is_finite(), "MTTR must be positive and finite");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut crashes = Vec::new();
        for replica in 0..replicas {
            let mut t = 0.0f64;
            loop {
                t += exp_sample(&mut rng, mtbf_s);
                if t >= horizon_s {
                    break;
                }
                let down_s = t;
                t += exp_sample(&mut rng, mttr_s);
                crashes.push(CrashWindow { replica, down_s, up_s: Some(t) });
            }
        }
        Self { crashes, slowdowns: Vec::new(), link_stalls: Vec::new() }
    }

    /// Checks the plan against a fleet of `replicas`: indices in range,
    /// times finite and non-negative, windows well-ordered, per-replica
    /// crash windows sorted and non-overlapping, factors positive.
    ///
    /// # Panics
    ///
    /// Panics on any violation (plans are configuration; a malformed one
    /// is a caller bug, not a runtime condition).
    pub fn validate(&self, replicas: usize) {
        let window_ok = |from: f64, until: f64| from.is_finite() && from >= 0.0 && until > from;
        let mut last_up = vec![0.0f64; replicas];
        for c in &self.crashes {
            assert!(c.replica < replicas, "crash replica {} out of range", c.replica);
            assert!(c.down_s.is_finite() && c.down_s >= 0.0, "crash time must be non-negative");
            assert!(
                c.down_s >= last_up[c.replica],
                "replica {} crash windows must be sorted and non-overlapping",
                c.replica
            );
            match c.up_s {
                Some(up) => {
                    assert!(up.is_finite() && up > c.down_s, "recovery must follow the crash");
                    last_up[c.replica] = up;
                }
                // A permanent loss must be the replica's last window.
                None => last_up[c.replica] = f64::INFINITY,
            }
        }
        for s in &self.slowdowns {
            assert!(s.replica < replicas, "slowdown replica {} out of range", s.replica);
            assert!(window_ok(s.from_s, s.until_s), "slowdown window must be well-ordered");
            assert!(s.factor > 0.0 && s.factor.is_finite(), "slowdown factor must be positive");
        }
        for l in &self.link_stalls {
            assert!(l.replica < replicas, "link stall replica {} out of range", l.replica);
            assert!(window_ok(l.from_s, l.until_s), "link stall window must be well-ordered");
            assert!(l.factor > 0.0 && l.factor.is_finite(), "link stall factor must be positive");
        }
    }

    /// The crash schedule flattened to a time-sorted event list (ties by
    /// replica index, down before up).
    pub(crate) fn timeline(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(self.crashes.len() * 2);
        for c in &self.crashes {
            events.push(FaultEvent { t_s: c.down_s, replica: c.replica, up: false });
            if let Some(up) = c.up_s {
                events.push(FaultEvent { t_s: up, replica: c.replica, up: true });
            }
        }
        events.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite fault times")
                .then(a.replica.cmp(&b.replica))
                .then(a.up.cmp(&b.up))
        });
        events
    }

    /// Step-time multiplier for a layer step starting at `t_s` on
    /// `replica` (product over matching windows; `1.0` when none match).
    pub(crate) fn step_factor(&self, replica: usize, t_s: f64) -> f64 {
        let mut f = 1.0;
        for s in &self.slowdowns {
            if s.replica == replica && t_s >= s.from_s && t_s < s.until_s {
                f *= s.factor;
            }
        }
        f
    }

    /// Upload-time multiplier for batch joins at `t_s` on `replica`.
    pub(crate) fn link_factor(&self, replica: usize, t_s: f64) -> f64 {
        let mut f = 1.0;
        for l in &self.link_stalls {
            if l.replica == replica && t_s >= l.from_s && t_s < l.until_s {
                f *= l.factor;
            }
        }
        f
    }
}

/// One crash-schedule transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultEvent {
    pub t_s: f64,
    pub replica: usize,
    /// `true` = recovery, `false` = crash.
    pub up: bool,
}

/// Bounded-retry configuration for requests evicted by a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum requeue attempts per request before it is shed with
    /// [`ShedReason::ReplicaLost`](crate::ShedReason::ReplicaLost).
    pub max_attempts: u32,
    /// Base delay before the first requeue, seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the delay on each further attempt.
    pub multiplier: f64,
}

impl RetryPolicy {
    /// Default production policy: up to 3 attempts with 100 µs base
    /// backoff doubling per attempt.
    pub fn standard() -> Self {
        Self { max_attempts: 3, backoff_s: 1e-4, multiplier: 2.0 }
    }

    /// No retries: every evicted request is shed immediately.
    pub fn never() -> Self {
        Self { max_attempts: 0, backoff_s: 0.0, multiplier: 1.0 }
    }

    /// Delay before requeue attempt `attempt` (1-based), seconds.
    ///
    /// # Panics
    ///
    /// Panics if `attempt == 0`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        assert!(attempt > 0, "attempts are 1-based");
        self.backoff_s * self.multiplier.powi(attempt as i32 - 1)
    }
}

/// One exponential sample with mean `mean_s` via inverse transform; the
/// uniform is clamped away from 0 so `ln` stays finite (mirrors the
/// loadgen sampler).
fn exp_sample(rng: &mut StdRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() * mean_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_validates() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.validate(1);
        assert!(plan.timeline().is_empty());
        assert_eq!(plan.step_factor(0, 1.0), 1.0);
        assert_eq!(plan.link_factor(0, 1.0), 1.0);
    }

    #[test]
    fn seeded_is_deterministic_and_well_formed() {
        let a = FaultPlan::seeded(4, 100.0, 20.0, 2.0, 9);
        let b = FaultPlan::seeded(4, 100.0, 20.0, 2.0, 9);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(4, 100.0, 20.0, 2.0, 10));
        a.validate(4);
        assert!(!a.is_empty(), "100 s horizon at 20 s MTBF crashes essentially surely");
        for c in &a.crashes {
            assert!(c.down_s < 100.0, "crashes start inside the horizon");
        }
    }

    #[test]
    fn timeline_is_sorted_with_down_before_up() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 1, down_s: 1.0, up_s: Some(3.0) },
                CrashWindow { replica: 0, down_s: 2.0, up_s: None },
            ],
            ..FaultPlan::none()
        };
        plan.validate(2);
        let tl = plan.timeline();
        let shape: Vec<(f64, usize, bool)> = tl.iter().map(|e| (e.t_s, e.replica, e.up)).collect();
        assert_eq!(shape, vec![(1.0, 1, false), (2.0, 0, false), (3.0, 1, true)]);
    }

    #[test]
    fn factors_multiply_inside_windows_only() {
        let plan = FaultPlan {
            slowdowns: vec![
                Slowdown { replica: 0, from_s: 1.0, until_s: 2.0, factor: 3.0 },
                Slowdown { replica: 0, from_s: 1.5, until_s: 2.5, factor: 2.0 },
            ],
            link_stalls: vec![LinkStall { replica: 1, from_s: 0.0, until_s: 1.0, factor: 10.0 }],
            ..FaultPlan::none()
        };
        plan.validate(2);
        assert_eq!(plan.step_factor(0, 1.25), 3.0);
        assert_eq!(plan.step_factor(0, 1.75), 6.0);
        assert_eq!(plan.step_factor(0, 2.0), 2.0, "windows are end-exclusive");
        assert_eq!(plan.step_factor(1, 1.25), 1.0, "other replicas unaffected");
        assert_eq!(plan.link_factor(1, 0.5), 10.0);
        assert_eq!(plan.link_factor(0, 0.5), 1.0);
    }

    #[test]
    fn backoff_grows_geometrically() {
        let r = RetryPolicy::standard();
        assert_eq!(r.backoff(1), 1e-4);
        assert_eq!(r.backoff(2), 2e-4);
        assert_eq!(r.backoff(3), 4e-4);
        assert_eq!(RetryPolicy::never().max_attempts, 0);
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn overlapping_crash_windows_rejected() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 0, down_s: 1.0, up_s: Some(3.0) },
                CrashWindow { replica: 0, down_s: 2.0, up_s: Some(4.0) },
            ],
            ..FaultPlan::none()
        };
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_replica_rejected() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow { replica: 2, down_s: 1.0, up_s: None }],
            ..FaultPlan::none()
        };
        plan.validate(2);
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn crash_after_permanent_loss_rejected() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 0, down_s: 1.0, up_s: None },
                CrashWindow { replica: 0, down_s: 2.0, up_s: Some(3.0) },
            ],
            ..FaultPlan::none()
        };
        plan.validate(1);
    }
}
