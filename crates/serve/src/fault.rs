//! Deterministic fault injection and retry policy.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every crash
//! window, zone outage, partition, gray failure, step slowdown and
//! host-link stall is a concrete time interval fixed before the
//! simulation starts. [`FaultPlan::seeded`] draws such a schedule from a
//! seeded RNG (alternating exponential up/down intervals, the classic
//! MTBF/MTTR renewal model), so a fault scenario is exactly as
//! reproducible as the arrival trace it runs against — the same plan and
//! trace always produce the same [`FleetReport`](crate::FleetReport),
//! bit for bit.
//!
//! Failure semantics (pinned by the `faults` integration tests):
//!
//! * layer steps are **atomic** — a step committed before a crash instant
//!   finishes and retires its completions (the host receives per-layer
//!   activations as each step streams back, so completed layers are never
//!   lost);
//! * at the crash instant the replica's remaining work (mid-flight actives
//!   and queued requests) is evicted and requeued through routing with a
//!   bounded [`RetryPolicy`] budget, resuming from the last completed
//!   layer; requests that exhaust the budget, or whose deadline can no
//!   longer be met, are shed with
//!   [`ShedReason::ReplicaLost`](crate::ShedReason::ReplicaLost);
//! * arrivals never route to a down replica; if *no* replica is up the
//!   arrival is shed with `ReplicaLost`;
//! * a [`ZoneOutage`] is a *correlated* crash: every replica mapped to the
//!   zone crashes and recovers together, with the same eviction semantics
//!   as an individual [`CrashWindow`];
//! * a [`Partition`] cuts the host link to a replica without killing it:
//!   in-flight and queued work is *stranded* (steps pause at the next
//!   atomic layer boundary), **not** evicted, and resumes when the link
//!   heals. The router keeps dispatching to a partitioned replica — only
//!   the failure detector (when enabled) learns to avoid it;
//! * a [`GrayFailure`] is a persistent stochastic slowdown that never
//!   trips crash eviction: each layer step inside the window is stretched
//!   by `1 + severity·u`, where `u ∈ [0, 1)` is a pure hash of
//!   `(seed, replica, step start time)` so both fleet engines observe the
//!   identical factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One replica outage: down at `down_s`, back at `up_s` (`None` = never).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// Replica index the outage applies to.
    pub replica: usize,
    /// Crash instant, seconds.
    pub down_s: f64,
    /// Recovery instant, seconds; `None` for a permanent loss.
    pub up_s: Option<f64>,
}

/// A correlated outage taking a whole zone down: every replica whose
/// entry in [`FaultPlan::zones`] equals `zone` crashes at `down_s` and
/// recovers at `up_s` together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneOutage {
    /// Zone id (a value appearing in [`FaultPlan::zones`]).
    pub zone: usize,
    /// Crash instant, seconds.
    pub down_s: f64,
    /// Recovery instant, seconds; `None` for a permanent zone loss.
    pub up_s: Option<f64>,
}

/// A host-link partition: the router loses the link to `replica` over
/// `[from_s, until_s)`. Unlike a crash, nothing is evicted — queued and
/// mid-flight work is stranded until the link heals (the replica cannot
/// stream activations back), and the router keeps routing to the replica
/// unless a failure detector quarantines it. The window must end: a
/// partition that never heals is indistinguishable from a crash and must
/// be modelled as one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Replica index cut off from the host.
    pub replica: usize,
    /// Partition start, seconds (inclusive).
    pub from_s: f64,
    /// Heal instant, seconds (exclusive); must be finite.
    pub until_s: f64,
}

/// A gray failure: the replica stays up and keeps completing work, but
/// every layer step starting inside `[from_s, until_s)` is stretched by
/// `1 + severity·u` with `u ∈ [0, 1)` drawn as a pure hash of
/// `(seed, replica, step start time)` — deterministic, engine-agnostic,
/// and never severe enough to trip crash eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFailure {
    /// Replica index the slowdown applies to.
    pub replica: usize,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub until_s: f64,
    /// Slowdown severity: the per-step stretch is uniform in
    /// `[1, 1 + severity)`. Must be positive and finite.
    pub severity: f64,
    /// Hash seed for the per-step stretch draw.
    pub seed: u64,
}

/// A transient compute slowdown: layer steps *starting* inside
/// `[from_s, until_s)` on `replica` take `factor`× their nominal time
/// (thermal throttling, a noisy neighbour, a degraded unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// Replica index the slowdown applies to.
    pub replica: usize,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub until_s: f64,
    /// Multiplier on step time; must be `> 0` (values `> 1` slow down).
    pub factor: f64,
}

/// A host-link stall: weight uploads paid by batch joins inside
/// `[from_s, until_s)` on `replica` take `factor`× their nominal time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStall {
    /// Replica index the stall applies to.
    pub replica: usize,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub until_s: f64,
    /// Multiplier on upload time; must be `> 0`.
    pub factor: f64,
}

/// A structural defect in a [`FaultPlan`], reported by
/// [`FaultPlan::try_validate`] / [`FaultPlan::try_seeded`] instead of a
/// silently nonsensical schedule. The [`fmt::Display`] strings are pinned
/// by regression tests (the panicking [`FaultPlan::validate`] wrapper
/// re-uses them verbatim).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A window names a replica index `>= replicas`.
    ReplicaOutOfRange {
        /// Which window kind ("crash", "partition", ...).
        what: &'static str,
        /// The offending replica index.
        replica: usize,
    },
    /// A crash instant is negative, NaN or infinite.
    CrashTimeInvalid {
        /// The offending replica index.
        replica: usize,
    },
    /// A replica's explicit crash windows are out of order or overlap.
    CrashWindowsUnsorted {
        /// The offending replica index.
        replica: usize,
    },
    /// A crash window's recovery does not strictly follow its crash
    /// (zero-length or inverted outage).
    RecoveryBeforeCrash {
        /// The offending replica index.
        replica: usize,
    },
    /// A `[from_s, until_s)` window is empty, inverted or non-finite.
    WindowIllOrdered {
        /// Which window kind ("slowdown", "partition", ...).
        what: &'static str,
        /// The offending replica index.
        replica: usize,
    },
    /// A slowdown / link-stall factor is not positive and finite.
    FactorNotPositive {
        /// Which window kind.
        what: &'static str,
    },
    /// A gray-failure severity is not positive and finite.
    SeverityNotPositive {
        /// The offending replica index.
        replica: usize,
    },
    /// A partition window never heals (non-finite `until_s`).
    PartitionNeverHeals {
        /// The offending replica index.
        replica: usize,
    },
    /// Zone outages are present but [`FaultPlan::zones`] does not map
    /// every replica.
    ZoneMapIncomplete {
        /// `zones.len()` as given.
        mapped: usize,
        /// The fleet size the plan was validated against.
        replicas: usize,
    },
    /// A zone outage names a zone with no member replicas.
    ZoneUnknown {
        /// The offending zone id.
        zone: usize,
    },
    /// After expanding zone outages, some replica's crash windows
    /// (explicit + zone-induced) overlap.
    CorrelatedCrashOverlap {
        /// The offending replica index.
        replica: usize,
    },
    /// A [`FaultPlan::try_seeded`] parameter is non-positive or
    /// non-finite.
    BadParam {
        /// Human name of the parameter ("MTBF", "MTTR", "horizon").
        what: &'static str,
    },
    /// [`FaultPlan::try_seeded`] was asked for an empty fleet.
    NoReplicas,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ReplicaOutOfRange { what, replica } => {
                write!(f, "{what} replica {replica} out of range")
            }
            Self::CrashTimeInvalid { replica } => {
                write!(f, "replica {replica}: crash time must be non-negative and finite")
            }
            Self::CrashWindowsUnsorted { replica } => {
                write!(f, "replica {replica} crash windows must be sorted and non-overlapping")
            }
            Self::RecoveryBeforeCrash { replica } => {
                write!(f, "replica {replica}: recovery must follow the crash")
            }
            Self::WindowIllOrdered { what, replica } => {
                write!(f, "replica {replica}: {what} window must be well-ordered")
            }
            Self::FactorNotPositive { what } => write!(f, "{what} factor must be positive"),
            Self::SeverityNotPositive { replica } => {
                write!(f, "replica {replica}: gray severity must be positive")
            }
            Self::PartitionNeverHeals { replica } => {
                write!(
                    f,
                    "replica {replica}: partition must heal (model a permanent cut as a crash)"
                )
            }
            Self::ZoneMapIncomplete { mapped, replicas } => {
                write!(
                    f,
                    "zone map covers {mapped} of {replicas} replicas; zones must map every replica"
                )
            }
            Self::ZoneUnknown { zone } => write!(f, "zone {zone} has no member replicas"),
            Self::CorrelatedCrashOverlap { replica } => {
                write!(f, "replica {replica} crash and zone-outage windows must be sorted and non-overlapping")
            }
            Self::BadParam { what } => write!(f, "{what} must be positive and finite"),
            Self::NoReplicas => write!(f, "at least one replica"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic fault schedule for one fleet run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Replica outages. Per replica they must be time-sorted and
    /// non-overlapping ([`validate`](Self::validate) enforces this).
    pub crashes: Vec<CrashWindow>,
    /// Replica → zone id map for [`ZoneOutage`] expansion. May be empty
    /// when `zone_outages` is empty; otherwise must have one entry per
    /// replica.
    pub zones: Vec<usize>,
    /// Correlated zone outages, expanded against [`Self::zones`].
    pub zone_outages: Vec<ZoneOutage>,
    /// Host-link partitions (strand, don't evict).
    pub partitions: Vec<Partition>,
    /// Gray failures (stochastic persistent slowdowns).
    pub gray: Vec<GrayFailure>,
    /// Compute slowdown windows.
    pub slowdowns: Vec<Slowdown>,
    /// Host-link stall windows.
    pub link_stalls: Vec<LinkStall>,
}

impl FaultPlan {
    /// The healthy plan: no faults. With this plan the runtime reproduces
    /// the fault-free fleet bitwise (pinned by test).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all (a zone map alone does
    /// not: zones without outages are inert).
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.zone_outages.is_empty()
            && self.partitions.is_empty()
            && self.gray.is_empty()
            && self.slowdowns.is_empty()
            && self.link_stalls.is_empty()
    }

    /// Draws a crash schedule from the MTBF/MTTR renewal model: each
    /// replica alternates exponential up intervals (mean `mtbf_s`) and
    /// down intervals (mean `mttr_s`), starting up at `t = 0`, until
    /// `horizon_s`. A window whose repair would land past the horizon is
    /// kept with its drawn `up_s` (recovery beyond the horizon is
    /// harmless), so the plan depends only on the arguments, never on the
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or any of `horizon_s`, `mtbf_s`,
    /// `mttr_s` is not positive and finite. [`Self::try_seeded`] reports
    /// the same conditions as typed errors.
    pub fn seeded(replicas: usize, horizon_s: f64, mtbf_s: f64, mttr_s: f64, seed: u64) -> Self {
        match Self::try_seeded(replicas, horizon_s, mtbf_s, mttr_s, seed) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Self::seeded`]: rejects an empty fleet and
    /// non-positive / non-finite horizon, MTBF or MTTR with a typed
    /// [`FaultPlanError`] instead of panicking.
    pub fn try_seeded(
        replicas: usize,
        horizon_s: f64,
        mtbf_s: f64,
        mttr_s: f64,
        seed: u64,
    ) -> Result<Self, FaultPlanError> {
        if replicas == 0 {
            return Err(FaultPlanError::NoReplicas);
        }
        if !(horizon_s > 0.0 && horizon_s.is_finite()) {
            return Err(FaultPlanError::BadParam { what: "horizon" });
        }
        if !(mtbf_s > 0.0 && mtbf_s.is_finite()) {
            return Err(FaultPlanError::BadParam { what: "MTBF" });
        }
        if !(mttr_s > 0.0 && mttr_s.is_finite()) {
            return Err(FaultPlanError::BadParam { what: "MTTR" });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut crashes = Vec::new();
        for replica in 0..replicas {
            let mut t = 0.0f64;
            loop {
                t += exp_sample(&mut rng, mtbf_s);
                if t >= horizon_s {
                    break;
                }
                let down_s = t;
                t += exp_sample(&mut rng, mttr_s);
                crashes.push(CrashWindow { replica, down_s, up_s: Some(t) });
            }
        }
        Ok(Self { crashes, ..Self::none() })
    }

    /// Checks the plan against a fleet of `replicas`: indices in range,
    /// times finite and non-negative, windows well-ordered, per-replica
    /// crash windows (explicit and zone-expanded) sorted and
    /// non-overlapping, factors and severities positive, partitions
    /// finite, zone map complete when zone outages are present.
    ///
    /// # Panics
    ///
    /// Panics on any violation (plans are configuration; a malformed one
    /// is a caller bug, not a runtime condition). [`Self::try_validate`]
    /// reports the same conditions as typed errors.
    pub fn validate(&self, replicas: usize) {
        if let Err(e) = self.try_validate(replicas) {
            panic!("{e}");
        }
    }

    /// Fallible form of [`Self::validate`]: returns the first structural
    /// defect found as a typed [`FaultPlanError`].
    pub fn try_validate(&self, replicas: usize) -> Result<(), FaultPlanError> {
        let window_ok = |from: f64, until: f64| from.is_finite() && from >= 0.0 && until > from;
        let mut last_up = vec![0.0f64; replicas];
        for c in &self.crashes {
            if c.replica >= replicas {
                return Err(FaultPlanError::ReplicaOutOfRange {
                    what: "crash",
                    replica: c.replica,
                });
            }
            if !(c.down_s.is_finite() && c.down_s >= 0.0) {
                return Err(FaultPlanError::CrashTimeInvalid { replica: c.replica });
            }
            if c.down_s < last_up[c.replica] {
                return Err(FaultPlanError::CrashWindowsUnsorted { replica: c.replica });
            }
            match c.up_s {
                Some(up) => {
                    if !(up.is_finite() && up > c.down_s) {
                        return Err(FaultPlanError::RecoveryBeforeCrash { replica: c.replica });
                    }
                    last_up[c.replica] = up;
                }
                // A permanent loss must be the replica's last window.
                None => last_up[c.replica] = f64::INFINITY,
            }
        }
        if !self.zone_outages.is_empty() && self.zones.len() != replicas {
            return Err(FaultPlanError::ZoneMapIncomplete { mapped: self.zones.len(), replicas });
        }
        for z in &self.zone_outages {
            if !self.zones.contains(&z.zone) {
                return Err(FaultPlanError::ZoneUnknown { zone: z.zone });
            }
            if !(z.down_s.is_finite() && z.down_s >= 0.0) {
                return Err(FaultPlanError::BadParam { what: "zone outage time" });
            }
            if let Some(up) = z.up_s {
                if !(up.is_finite() && up > z.down_s) {
                    return Err(FaultPlanError::BadParam { what: "zone outage recovery" });
                }
            }
        }
        // Expanded per-replica outage windows (explicit + zone-induced)
        // must still be pairwise disjoint: a replica cannot crash while
        // already down.
        if !self.zone_outages.is_empty() {
            for replica in 0..replicas {
                let mut windows: Vec<(f64, f64)> = self
                    .crashes
                    .iter()
                    .filter(|c| c.replica == replica)
                    .map(|c| (c.down_s, c.up_s.unwrap_or(f64::INFINITY)))
                    .chain(
                        self.zone_outages
                            .iter()
                            .filter(|z| self.zones[replica] == z.zone)
                            .map(|z| (z.down_s, z.up_s.unwrap_or(f64::INFINITY))),
                    )
                    .collect();
                windows.sort_by(|a, b| a.partial_cmp(b).expect("finite outage times"));
                for pair in windows.windows(2) {
                    if pair[1].0 < pair[0].1 {
                        return Err(FaultPlanError::CorrelatedCrashOverlap { replica });
                    }
                }
            }
        }
        for p in &self.partitions {
            if p.replica >= replicas {
                return Err(FaultPlanError::ReplicaOutOfRange {
                    what: "partition",
                    replica: p.replica,
                });
            }
            if !p.until_s.is_finite() {
                return Err(FaultPlanError::PartitionNeverHeals { replica: p.replica });
            }
            if !window_ok(p.from_s, p.until_s) {
                return Err(FaultPlanError::WindowIllOrdered {
                    what: "partition",
                    replica: p.replica,
                });
            }
        }
        for g in &self.gray {
            if g.replica >= replicas {
                return Err(FaultPlanError::ReplicaOutOfRange { what: "gray", replica: g.replica });
            }
            if !window_ok(g.from_s, g.until_s) || !g.until_s.is_finite() {
                return Err(FaultPlanError::WindowIllOrdered { what: "gray", replica: g.replica });
            }
            if !(g.severity > 0.0 && g.severity.is_finite()) {
                return Err(FaultPlanError::SeverityNotPositive { replica: g.replica });
            }
        }
        for s in &self.slowdowns {
            if s.replica >= replicas {
                return Err(FaultPlanError::ReplicaOutOfRange {
                    what: "slowdown",
                    replica: s.replica,
                });
            }
            if !window_ok(s.from_s, s.until_s) {
                return Err(FaultPlanError::WindowIllOrdered {
                    what: "slowdown",
                    replica: s.replica,
                });
            }
            if !(s.factor > 0.0 && s.factor.is_finite()) {
                return Err(FaultPlanError::FactorNotPositive { what: "slowdown" });
            }
        }
        for l in &self.link_stalls {
            if l.replica >= replicas {
                return Err(FaultPlanError::ReplicaOutOfRange {
                    what: "link stall",
                    replica: l.replica,
                });
            }
            if !window_ok(l.from_s, l.until_s) {
                return Err(FaultPlanError::WindowIllOrdered {
                    what: "link stall",
                    replica: l.replica,
                });
            }
            if !(l.factor > 0.0 && l.factor.is_finite()) {
                return Err(FaultPlanError::FactorNotPositive { what: "link stall" });
            }
        }
        Ok(())
    }

    /// The fault schedule flattened to a time-sorted event list: explicit
    /// crashes, zone outages expanded to their member replicas, and
    /// partition start/heal transitions. Ties break by replica index,
    /// then crash before recovery before partition transitions.
    pub(crate) fn timeline(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(self.crashes.len() * 2 + self.partitions.len() * 2);
        for c in &self.crashes {
            events.push(FaultEvent { t_s: c.down_s, replica: c.replica, kind: FaultKind::Down });
            if let Some(up) = c.up_s {
                events.push(FaultEvent { t_s: up, replica: c.replica, kind: FaultKind::Up });
            }
        }
        for z in &self.zone_outages {
            for (replica, &zone) in self.zones.iter().enumerate() {
                if zone != z.zone {
                    continue;
                }
                events.push(FaultEvent { t_s: z.down_s, replica, kind: FaultKind::Down });
                if let Some(up) = z.up_s {
                    events.push(FaultEvent { t_s: up, replica, kind: FaultKind::Up });
                }
            }
        }
        for p in &self.partitions {
            events.push(FaultEvent {
                t_s: p.from_s,
                replica: p.replica,
                kind: FaultKind::PartitionStart,
            });
            events.push(FaultEvent {
                t_s: p.until_s,
                replica: p.replica,
                kind: FaultKind::PartitionEnd,
            });
        }
        events.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite fault times")
                .then(a.replica.cmp(&b.replica))
                .then((a.kind as u8).cmp(&(b.kind as u8)))
        });
        events
    }

    /// Step-time multiplier for a layer step starting at `t_s` on
    /// `replica` (product over matching slowdown and gray windows; `1.0`
    /// when none match).
    pub(crate) fn step_factor(&self, replica: usize, t_s: f64) -> f64 {
        let mut f = 1.0;
        for s in &self.slowdowns {
            if s.replica == replica && t_s >= s.from_s && t_s < s.until_s {
                f *= s.factor;
            }
        }
        for g in &self.gray {
            if g.replica == replica && t_s >= g.from_s && t_s < g.until_s {
                f *= 1.0 + g.severity * gray_unit(g.seed, replica, t_s);
            }
        }
        f
    }

    /// Upload-time multiplier for batch joins at `t_s` on `replica`.
    pub(crate) fn link_factor(&self, replica: usize, t_s: f64) -> f64 {
        let mut f = 1.0;
        for l in &self.link_stalls {
            if l.replica == replica && t_s >= l.from_s && t_s < l.until_s {
                f *= l.factor;
            }
        }
        f
    }

    /// Ground-truth fault intervals per replica — `(replica, start, end)`
    /// with `end = ∞` for permanent losses — across every fault class.
    /// Used to classify detector quarantines as true or false positives.
    pub(crate) fn fault_windows(&self) -> Vec<(usize, f64, f64)> {
        let mut w = Vec::new();
        for c in &self.crashes {
            w.push((c.replica, c.down_s, c.up_s.unwrap_or(f64::INFINITY)));
        }
        for z in &self.zone_outages {
            for (replica, &zone) in self.zones.iter().enumerate() {
                if zone == z.zone {
                    w.push((replica, z.down_s, z.up_s.unwrap_or(f64::INFINITY)));
                }
            }
        }
        for p in &self.partitions {
            w.push((p.replica, p.from_s, p.until_s));
        }
        for g in &self.gray {
            w.push((g.replica, g.from_s, g.until_s));
        }
        for s in &self.slowdowns {
            w.push((s.replica, s.from_s, s.until_s));
        }
        for l in &self.link_stalls {
            w.push((l.replica, l.from_s, l.until_s));
        }
        w
    }
}

/// The uniform draw behind [`GrayFailure`]: a pure SplitMix64-finalizer
/// hash of `(seed, replica, step start time)` mapped to `[0, 1)`. Both
/// fleet engines compute step start times identically, so the factor is
/// engine-agnostic by construction.
fn gray_unit(seed: u64, replica: usize, t_s: f64) -> f64 {
    let x =
        seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t_s.to_bits().rotate_left(17);
    let z = cta_events::mix64(x);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One fault-schedule transition kind. The discriminant order is the tie
/// order at equal `(t, replica)`: crash, recovery, partition start,
/// partition heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultKind {
    /// Replica crashes (work evicted).
    Down = 0,
    /// Replica recovers from a crash.
    Up = 1,
    /// Host link cut (work stranded).
    PartitionStart = 2,
    /// Host link heals.
    PartitionEnd = 3,
}

/// One fault-schedule transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultEvent {
    pub t_s: f64,
    pub replica: usize,
    pub kind: FaultKind,
}

/// Bounded-retry configuration for requests evicted by a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum requeue attempts per request before it is shed with
    /// [`ShedReason::ReplicaLost`](crate::ShedReason::ReplicaLost).
    pub max_attempts: u32,
    /// Base delay before the first requeue, seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the delay on each further attempt.
    pub multiplier: f64,
}

impl RetryPolicy {
    /// Ceiling on any single backoff delay, seconds. The geometric
    /// schedule saturates here instead of overflowing to infinity at
    /// large attempt counts (an infinite backoff would schedule a retry
    /// at `t = ∞` and wreck the makespan).
    pub const MAX_BACKOFF_S: f64 = 3600.0;

    /// Default production policy: up to 3 attempts with 100 µs base
    /// backoff doubling per attempt.
    pub fn standard() -> Self {
        Self { max_attempts: 3, backoff_s: 1e-4, multiplier: 2.0 }
    }

    /// No retries: every evicted request is shed immediately.
    pub fn never() -> Self {
        Self { max_attempts: 0, backoff_s: 0.0, multiplier: 1.0 }
    }

    /// Delay before requeue attempt `attempt` (1-based), seconds. The
    /// geometric schedule is clamped to [`Self::MAX_BACKOFF_S`]: the
    /// exponent saturates rather than wrapping (`attempt` may exceed
    /// `i32::MAX`) and an overflowed product saturates rather than
    /// returning `∞`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt == 0`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        assert!(attempt > 0, "attempts are 1-based");
        let exp = (attempt - 1).min(i32::MAX as u32) as i32;
        let raw = self.backoff_s * self.multiplier.powi(exp);
        if raw.is_finite() {
            raw.min(Self::MAX_BACKOFF_S)
        } else {
            Self::MAX_BACKOFF_S
        }
    }
}

/// One exponential sample with mean `mean_s` via inverse transform; the
/// uniform is clamped away from 0 so `ln` stays finite (mirrors the
/// loadgen sampler).
fn exp_sample(rng: &mut StdRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() * mean_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_validates() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.validate(1);
        assert!(plan.timeline().is_empty());
        assert_eq!(plan.step_factor(0, 1.0), 1.0);
        assert_eq!(plan.link_factor(0, 1.0), 1.0);
    }

    #[test]
    fn seeded_is_deterministic_and_well_formed() {
        let a = FaultPlan::seeded(4, 100.0, 20.0, 2.0, 9);
        let b = FaultPlan::seeded(4, 100.0, 20.0, 2.0, 9);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(4, 100.0, 20.0, 2.0, 10));
        a.validate(4);
        assert!(!a.is_empty(), "100 s horizon at 20 s MTBF crashes essentially surely");
        for c in &a.crashes {
            assert!(c.down_s < 100.0, "crashes start inside the horizon");
        }
    }

    #[test]
    fn timeline_is_sorted_with_down_before_up() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 1, down_s: 1.0, up_s: Some(3.0) },
                CrashWindow { replica: 0, down_s: 2.0, up_s: None },
            ],
            ..FaultPlan::none()
        };
        plan.validate(2);
        let tl = plan.timeline();
        let shape: Vec<(f64, usize, FaultKind)> =
            tl.iter().map(|e| (e.t_s, e.replica, e.kind)).collect();
        assert_eq!(
            shape,
            vec![(1.0, 1, FaultKind::Down), (2.0, 0, FaultKind::Down), (3.0, 1, FaultKind::Up)]
        );
    }

    #[test]
    fn zone_outage_expands_to_member_replicas() {
        let plan = FaultPlan {
            zones: vec![0, 1, 0],
            zone_outages: vec![ZoneOutage { zone: 0, down_s: 5.0, up_s: Some(7.0) }],
            ..FaultPlan::none()
        };
        plan.validate(3);
        assert!(!plan.is_empty());
        let tl = plan.timeline();
        let shape: Vec<(f64, usize, FaultKind)> =
            tl.iter().map(|e| (e.t_s, e.replica, e.kind)).collect();
        assert_eq!(
            shape,
            vec![
                (5.0, 0, FaultKind::Down),
                (5.0, 2, FaultKind::Down),
                (7.0, 0, FaultKind::Up),
                (7.0, 2, FaultKind::Up)
            ],
            "replica 1 (zone 1) is untouched; zone members fall and rise together"
        );
    }

    #[test]
    fn partition_events_flank_the_window() {
        let plan = FaultPlan {
            partitions: vec![Partition { replica: 1, from_s: 2.0, until_s: 4.0 }],
            ..FaultPlan::none()
        };
        plan.validate(2);
        let tl = plan.timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!((tl[0].t_s, tl[0].replica, tl[0].kind), (2.0, 1, FaultKind::PartitionStart));
        assert_eq!((tl[1].t_s, tl[1].replica, tl[1].kind), (4.0, 1, FaultKind::PartitionEnd));
    }

    #[test]
    fn factors_multiply_inside_windows_only() {
        let plan = FaultPlan {
            slowdowns: vec![
                Slowdown { replica: 0, from_s: 1.0, until_s: 2.0, factor: 3.0 },
                Slowdown { replica: 0, from_s: 1.5, until_s: 2.5, factor: 2.0 },
            ],
            link_stalls: vec![LinkStall { replica: 1, from_s: 0.0, until_s: 1.0, factor: 10.0 }],
            ..FaultPlan::none()
        };
        plan.validate(2);
        assert_eq!(plan.step_factor(0, 1.25), 3.0);
        assert_eq!(plan.step_factor(0, 1.75), 6.0);
        assert_eq!(plan.step_factor(0, 2.0), 2.0, "windows are end-exclusive");
        assert_eq!(plan.step_factor(1, 1.25), 1.0, "other replicas unaffected");
        assert_eq!(plan.link_factor(1, 0.5), 10.0);
        assert_eq!(plan.link_factor(0, 0.5), 1.0);
    }

    #[test]
    fn gray_factor_is_deterministic_bounded_and_windowed() {
        let plan = FaultPlan {
            gray: vec![GrayFailure {
                replica: 0,
                from_s: 1.0,
                until_s: 5.0,
                severity: 0.8,
                seed: 7,
            }],
            ..FaultPlan::none()
        };
        plan.validate(1);
        assert!(!plan.is_empty());
        for i in 0..100 {
            let t = 1.0 + (i as f64) * 0.04;
            let f = plan.step_factor(0, t);
            assert!((1.0..1.8).contains(&f), "stretch in [1, 1+severity): got {f}");
            assert_eq!(f, plan.step_factor(0, t), "pure function of (seed, replica, t)");
        }
        assert_eq!(plan.step_factor(0, 0.5), 1.0, "outside the window");
        assert_eq!(plan.step_factor(0, 5.0), 1.0, "end-exclusive");
        let different_seed = FaultPlan {
            gray: vec![GrayFailure {
                replica: 0,
                from_s: 1.0,
                until_s: 5.0,
                severity: 0.8,
                seed: 8,
            }],
            ..FaultPlan::none()
        };
        assert_ne!(plan.step_factor(0, 2.0), different_seed.step_factor(0, 2.0));
    }

    #[test]
    fn backoff_grows_geometrically() {
        let r = RetryPolicy::standard();
        assert_eq!(r.backoff(1), 1e-4);
        assert_eq!(r.backoff(2), 2e-4);
        assert_eq!(r.backoff(3), 4e-4);
        assert_eq!(RetryPolicy::never().max_attempts, 0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let r = RetryPolicy::standard();
        // 1e-4 · 2^25 ≈ 3355 s is the last un-clamped step; attempt 27
        // would be ≈ 6711 s and saturates.
        assert!(r.backoff(26) < RetryPolicy::MAX_BACKOFF_S);
        assert_eq!(r.backoff(27), RetryPolicy::MAX_BACKOFF_S);
        // Far past f64 overflow (2^1100 and beyond) and past i32::MAX:
        // still finite, still the cap, no wrap, no panic.
        assert_eq!(r.backoff(1_200), RetryPolicy::MAX_BACKOFF_S);
        assert_eq!(r.backoff(u32::MAX), RetryPolicy::MAX_BACKOFF_S);
        for a in 1..100 {
            assert!(r.backoff(a + 1) >= r.backoff(a), "schedule is monotone");
        }
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn overlapping_crash_windows_rejected() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 0, down_s: 1.0, up_s: Some(3.0) },
                CrashWindow { replica: 0, down_s: 2.0, up_s: Some(4.0) },
            ],
            ..FaultPlan::none()
        };
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_replica_rejected() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow { replica: 2, down_s: 1.0, up_s: None }],
            ..FaultPlan::none()
        };
        plan.validate(2);
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn crash_after_permanent_loss_rejected() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 0, down_s: 1.0, up_s: None },
                CrashWindow { replica: 0, down_s: 2.0, up_s: Some(3.0) },
            ],
            ..FaultPlan::none()
        };
        plan.validate(1);
    }

    #[test]
    fn typed_errors_name_each_rejection() {
        // Overlapping windows.
        let overlap = FaultPlan {
            crashes: vec![
                CrashWindow { replica: 0, down_s: 1.0, up_s: Some(3.0) },
                CrashWindow { replica: 0, down_s: 2.0, up_s: Some(4.0) },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(
            overlap.try_validate(1),
            Err(FaultPlanError::CrashWindowsUnsorted { replica: 0 })
        );
        // Zero-length outage (up == down).
        let zero = FaultPlan {
            crashes: vec![CrashWindow { replica: 0, down_s: 1.0, up_s: Some(1.0) }],
            ..FaultPlan::none()
        };
        assert_eq!(zero.try_validate(1), Err(FaultPlanError::RecoveryBeforeCrash { replica: 0 }));
        // Negative crash time.
        let neg = FaultPlan {
            crashes: vec![CrashWindow { replica: 0, down_s: -1.0, up_s: None }],
            ..FaultPlan::none()
        };
        assert_eq!(neg.try_validate(1), Err(FaultPlanError::CrashTimeInvalid { replica: 0 }));
        // Zero-length slowdown window.
        let flat = FaultPlan {
            slowdowns: vec![Slowdown { replica: 0, from_s: 2.0, until_s: 2.0, factor: 2.0 }],
            ..FaultPlan::none()
        };
        assert_eq!(
            flat.try_validate(1),
            Err(FaultPlanError::WindowIllOrdered { what: "slowdown", replica: 0 })
        );
        // Negative MTBF / MTTR via the seeded constructor.
        assert_eq!(
            FaultPlan::try_seeded(2, 10.0, -5.0, 1.0, 0),
            Err(FaultPlanError::BadParam { what: "MTBF" })
        );
        assert_eq!(
            FaultPlan::try_seeded(2, 10.0, 5.0, -1.0, 0),
            Err(FaultPlanError::BadParam { what: "MTTR" })
        );
        assert_eq!(
            FaultPlan::try_seeded(2, f64::NAN, 5.0, 1.0, 0),
            Err(FaultPlanError::BadParam { what: "horizon" })
        );
        assert_eq!(FaultPlan::try_seeded(0, 10.0, 5.0, 1.0, 0), Err(FaultPlanError::NoReplicas));
        // Infinite partition.
        let cut = FaultPlan {
            partitions: vec![Partition { replica: 0, from_s: 1.0, until_s: f64::INFINITY }],
            ..FaultPlan::none()
        };
        assert_eq!(cut.try_validate(1), Err(FaultPlanError::PartitionNeverHeals { replica: 0 }));
        // Non-positive gray severity.
        let gray = FaultPlan {
            gray: vec![GrayFailure {
                replica: 0,
                from_s: 1.0,
                until_s: 2.0,
                severity: 0.0,
                seed: 0,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(gray.try_validate(1), Err(FaultPlanError::SeverityNotPositive { replica: 0 }));
        // Zone outages without a complete zone map.
        let unmapped = FaultPlan {
            zone_outages: vec![ZoneOutage { zone: 0, down_s: 1.0, up_s: Some(2.0) }],
            ..FaultPlan::none()
        };
        assert_eq!(
            unmapped.try_validate(2),
            Err(FaultPlanError::ZoneMapIncomplete { mapped: 0, replicas: 2 })
        );
        // Zone outage naming an absent zone.
        let ghost = FaultPlan {
            zones: vec![0, 0],
            zone_outages: vec![ZoneOutage { zone: 3, down_s: 1.0, up_s: Some(2.0) }],
            ..FaultPlan::none()
        };
        assert_eq!(ghost.try_validate(2), Err(FaultPlanError::ZoneUnknown { zone: 3 }));
        // Zone outage colliding with an explicit crash on a member.
        let collide = FaultPlan {
            zones: vec![0, 1],
            crashes: vec![CrashWindow { replica: 0, down_s: 1.0, up_s: Some(3.0) }],
            zone_outages: vec![ZoneOutage { zone: 0, down_s: 2.0, up_s: Some(4.0) }],
            ..FaultPlan::none()
        };
        assert_eq!(
            collide.try_validate(2),
            Err(FaultPlanError::CorrelatedCrashOverlap { replica: 0 })
        );
        // Errors render human-readable messages.
        assert!(FaultPlanError::CrashWindowsUnsorted { replica: 0 }
            .to_string()
            .contains("sorted and non-overlapping"));
        assert!(FaultPlanError::BadParam { what: "MTBF" }
            .to_string()
            .contains("MTBF must be positive and finite"));
    }

    #[test]
    fn fault_windows_cover_every_class() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow { replica: 0, down_s: 1.0, up_s: None }],
            zones: vec![0, 1],
            zone_outages: vec![ZoneOutage { zone: 1, down_s: 2.0, up_s: Some(3.0) }],
            partitions: vec![Partition { replica: 0, from_s: 4.0, until_s: 5.0 }],
            gray: vec![GrayFailure {
                replica: 1,
                from_s: 6.0,
                until_s: 7.0,
                severity: 0.5,
                seed: 1,
            }],
            slowdowns: vec![Slowdown { replica: 0, from_s: 8.0, until_s: 9.0, factor: 2.0 }],
            link_stalls: vec![LinkStall { replica: 1, from_s: 10.0, until_s: 11.0, factor: 2.0 }],
        };
        plan.validate(2);
        let w = plan.fault_windows();
        assert_eq!(w.len(), 6);
        assert!(w.contains(&(0, 1.0, f64::INFINITY)));
        assert!(w.contains(&(1, 2.0, 3.0)));
        assert!(w.contains(&(0, 4.0, 5.0)));
        assert!(w.contains(&(1, 6.0, 7.0)));
    }
}
