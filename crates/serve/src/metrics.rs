//! Fleet-level serving metrics.
//!
//! Latency percentiles are exact (computed over every completion through
//! [`cta_sim::latency_percentile`] — the same nearest-rank method the
//! single-replica path uses), not approximated from histogram buckets.

use cta_sim::{latency_percentile, ServingMetrics};

use crate::replica::Completion;
use crate::Shed;

/// Aggregate metrics of one fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Requests offered to the fleet.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// Completions that met their class deadline (deadline-free classes
    /// always count) per second of makespan.
    pub goodput_rps: f64,
    /// Latency distribution over completions (`None` when everything was
    /// shed). Identical in definition to the single-replica
    /// [`ServingMetrics`]: its `busy_fraction` is the mean replica
    /// utilization.
    pub latency: Option<ServingMetrics>,
    /// Trace start to last completion, seconds.
    pub makespan_s: f64,
    /// Per-replica fraction of the makespan spent executing steps.
    pub per_replica_utilization: Vec<f64>,
    /// Per-replica completion counts.
    pub per_replica_completed: Vec<usize>,
    /// Requests that survived at least one crash-eviction requeue
    /// (completed or eventually shed).
    pub retried: usize,
    /// Total crash-eviction requeues across all requests.
    pub retry_events: usize,
    /// Per-replica fraction of the makespan the replica was up
    /// (`1.0` everywhere on a fault-free run).
    pub per_replica_availability: Vec<f64>,
    /// Overload-control accounting (all zero when
    /// [`OverloadControl::off`](crate::OverloadControl::off) is in force).
    pub overload: OverloadStats,
    /// Per-tenant fairness and isolation accounting (`None` unless the
    /// fleet runs with a tenancy configuration; the runtime fills it in
    /// before publishing the report).
    pub tenancy: Option<cta_tenancy::TenancyStats>,
    /// Failure-detector accounting (`None` unless the fleet runs with a
    /// [`DetectorPolicy`](crate::DetectorPolicy); the runtime fills it in
    /// before publishing the report).
    pub detector: Option<crate::DetectorStats>,
    /// Decode-session accounting (`None` unless the fleet runs with a
    /// [`SessionPolicy`](crate::SessionPolicy); the runtime fills it in
    /// before publishing the report).
    pub sessions: Option<SessionStats>,
}

/// Accounting for long-lived decode sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Distinct sessions in the offered trace.
    pub sessions: usize,
    /// Session turns that completed.
    pub turns_completed: usize,
    /// Session turns that were shed (any reason).
    pub turns_shed: usize,
    /// Sessions that lost at least one turn (every later turn sheds
    /// [`ShedReason::SessionLost`](crate::ShedReason::SessionLost)).
    pub sessions_lost: usize,
    /// Re-prefill events on turns past the first: crash evictions and
    /// non-sticky replica moves that had to rebuild session state.
    pub re_prefills: usize,
    /// `re_prefills` per completed turn (0 when nothing completed).
    pub re_prefill_rate: f64,
    /// Mean inter-token latency over completed turns — end-to-end turn
    /// latency divided by the turn's decode length — seconds/token.
    pub mean_itl_s: f64,
    /// p99 inter-token latency over completed turns, seconds/token
    /// (nearest-rank, like every other percentile in the crate).
    pub p99_itl_s: f64,
}

impl SessionStats {
    /// Builds the aggregate from the engine's counters plus the
    /// per-completed-turn inter-token latencies (unsorted; empty when no
    /// turn completed).
    pub fn new(
        sessions: usize,
        turns_completed: usize,
        turns_shed: usize,
        sessions_lost: usize,
        re_prefills: usize,
        itls_s: &[f64],
    ) -> Self {
        let (mean_itl_s, p99_itl_s) = if itls_s.is_empty() {
            (0.0, 0.0)
        } else {
            let mut sorted = itls_s.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite inter-token latencies"));
            (sorted.iter().sum::<f64>() / sorted.len() as f64, latency_percentile(&sorted, 0.99))
        };
        Self {
            sessions,
            turns_completed,
            turns_shed,
            sessions_lost,
            re_prefills,
            re_prefill_rate: if turns_completed > 0 {
                re_prefills as f64 / turns_completed as f64
            } else {
                0.0
            },
            mean_itl_s,
            p99_itl_s,
        }
    }
}

/// Accounting for the closed-loop overload controls: quality brownout,
/// circuit breakers, and hedged dispatch.
///
/// [`FleetMetrics::from_outcomes`] derives the accuracy-loss figures from
/// the completion stream; the runtime fills the event counters in before
/// publishing the report. With overload control off every field is zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadStats {
    /// Requests that had a hedge copy dispatched.
    pub hedged: usize,
    /// Hedged requests whose *hedge copy* finished first.
    pub hedge_wins: usize,
    /// Hedge copies cancelled after the sibling finished first (each
    /// hedged completion cancels exactly one loser, so on a crash-free
    /// run this equals `hedged` minus any copies still in flight at the
    /// end).
    pub hedge_cancelled: usize,
    /// Brownout ladder transitions (escalations + recoveries) across all
    /// replicas.
    pub brownout_transitions: usize,
    /// Per-replica wall-clock seconds spent executing at a degraded
    /// operating point (level > 0).
    pub per_replica_brownout_s: Vec<f64>,
    /// Circuit-breaker open events across all replicas.
    pub breaker_opens: usize,
    /// Mean pre-measured accuracy loss over completions, percent
    /// (completions served entirely at baseline contribute 0).
    pub mean_accuracy_loss_pct: f64,
    /// Largest per-completion accuracy loss observed, percent.
    pub max_accuracy_loss_pct: f64,
}

impl FleetMetrics {
    /// Builds the aggregate from raw outcomes. `replica_busy_s[i]` is the
    /// wall-clock time replica `i` spent executing; `replica_down_s[i]`
    /// the time it spent crashed.
    ///
    /// # Panics
    ///
    /// Panics if `completed + shed != offered` (the runtime's conservation
    /// invariant), `replica_busy_s` is empty, or the two per-replica
    /// slices disagree in length.
    pub fn from_outcomes(
        offered: usize,
        completions: &[Completion],
        shed: &[Shed],
        replica_busy_s: &[f64],
        replica_down_s: &[f64],
    ) -> Self {
        assert_eq!(completions.len() + shed.len(), offered, "request conservation violated");
        assert!(!replica_busy_s.is_empty(), "at least one replica");
        assert_eq!(replica_busy_s.len(), replica_down_s.len(), "per-replica slices must agree");
        let makespan_s = completions.iter().map(|c| c.finish_s).fold(0.0, f64::max);
        let span = makespan_s.max(f64::EPSILON);
        let latencies: Vec<f64> = completions.iter().map(|c| c.latency_s()).collect();
        let busy_total: f64 = replica_busy_s.iter().sum();
        let latency = if latencies.is_empty() {
            None
        } else {
            // busy fraction = mean over replicas of busy/span.
            Some(ServingMetrics::from_latencies(
                &latencies,
                span,
                busy_total / replica_busy_s.len() as f64,
            ))
        };
        let good = completions.iter().filter(|c| c.deadline_met.unwrap_or(true)).count();
        let mut per_replica_completed = vec![0usize; replica_busy_s.len()];
        for c in completions {
            per_replica_completed[c.replica] += 1;
        }
        let retried = completions.iter().filter(|c| c.retries > 0).count()
            + shed.iter().filter(|s| s.retries > 0).count();
        let retry_events = completions.iter().map(|c| c.retries as usize).sum::<usize>()
            + shed.iter().map(|s| s.retries as usize).sum::<usize>();
        let overload = OverloadStats {
            mean_accuracy_loss_pct: if completions.is_empty() {
                0.0
            } else {
                completions.iter().map(|c| c.accuracy_loss_pct).sum::<f64>()
                    / completions.len() as f64
            },
            max_accuracy_loss_pct: completions
                .iter()
                .map(|c| c.accuracy_loss_pct)
                .fold(0.0, f64::max),
            ..OverloadStats::default()
        };
        Self {
            offered,
            completed: completions.len(),
            shed: shed.len(),
            shed_rate: shed.len() as f64 / offered.max(1) as f64,
            goodput_rps: good as f64 / span,
            latency,
            makespan_s,
            per_replica_utilization: replica_busy_s.iter().map(|b| b / span).collect(),
            per_replica_completed,
            retried,
            retry_events,
            per_replica_availability: replica_down_s
                .iter()
                .map(|d| ((span - d) / span).clamp(0.0, 1.0))
                .collect(),
            overload,
            tenancy: None,
            detector: None,
            sessions: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShedReason;

    fn completion(id: u64, arrival: f64, finish: f64, replica: usize) -> Completion {
        Completion {
            id,
            class: "standard",
            arrival_s: arrival,
            finish_s: finish,
            replica,
            deadline_met: None,
            retries: 0,
            accuracy_loss_pct: 0.0,
            tenant: 0,
            session: None,
        }
    }

    #[test]
    fn session_stats_aggregate_itl_and_rates() {
        let itls = [0.002, 0.001, 0.010, 0.003];
        let s = SessionStats::new(5, 4, 2, 1, 3, &itls);
        assert_eq!((s.sessions, s.turns_completed, s.turns_shed), (5, 4, 2));
        assert_eq!((s.sessions_lost, s.re_prefills), (1, 3));
        assert_eq!(s.re_prefill_rate, 0.75);
        assert!((s.mean_itl_s - 0.004).abs() < 1e-15);
        assert_eq!(s.p99_itl_s, 0.010);
        // No completed turns: every derived figure collapses to zero.
        let empty = SessionStats::new(2, 0, 2, 2, 0, &[]);
        assert_eq!((empty.re_prefill_rate, empty.mean_itl_s, empty.p99_itl_s), (0.0, 0.0, 0.0));
    }

    #[test]
    fn accuracy_loss_aggregates_mean_and_max() {
        let mut degraded = completion(0, 0.0, 1.0, 0);
        degraded.accuracy_loss_pct = 1.8;
        let baseline = completion(1, 0.0, 2.0, 0);
        let m = FleetMetrics::from_outcomes(2, &[degraded, baseline], &[], &[2.0], &[0.0]);
        assert_eq!(m.overload.mean_accuracy_loss_pct, 0.9);
        assert_eq!(m.overload.max_accuracy_loss_pct, 1.8);
        // Counters the runtime fills in stay zero here.
        assert_eq!(m.overload.hedged, 0);
        assert_eq!(m.overload.brownout_transitions, 0);
    }

    #[test]
    fn aggregates_counts_and_percentiles() {
        let completions = vec![
            completion(0, 0.0, 1.0, 0),
            completion(1, 0.0, 3.0, 1),
            completion(2, 1.0, 5.0, 0),
        ];
        let shed = vec![Shed {
            id: 3,
            class: "standard",
            arrival_s: 2.0,
            reason: ShedReason::QueueFull,
            retries: 0,
            tenant: 0,
        }];
        let m = FleetMetrics::from_outcomes(4, &completions, &shed, &[2.0, 3.0], &[0.0, 0.0]);
        assert_eq!((m.offered, m.completed, m.shed), (4, 3, 1));
        assert_eq!(m.shed_rate, 0.25);
        assert_eq!(m.makespan_s, 5.0);
        let lat = m.latency.expect("has completions");
        assert_eq!(lat.completed, 3);
        assert_eq!(lat.p50_s, 3.0); // latencies 1, 3, 4 -> median 3
        assert_eq!(lat.p99_s, 4.0);
        assert_eq!(m.per_replica_completed, vec![2, 1]);
        assert_eq!(m.per_replica_utilization, vec![0.4, 0.6]);
    }

    #[test]
    fn goodput_counts_deadline_misses_out() {
        let mut ok = completion(0, 0.0, 1.0, 0);
        ok.deadline_met = Some(true);
        let mut miss = completion(1, 0.0, 2.0, 0);
        miss.deadline_met = Some(false);
        let m = FleetMetrics::from_outcomes(2, &[ok, miss], &[], &[2.0], &[0.0]);
        assert_eq!(m.goodput_rps, 0.5); // 1 good completion / 2 s
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn all_shed_yields_no_latency_distribution() {
        let shed: Vec<Shed> = (0..3)
            .map(|id| Shed {
                id,
                class: "standard",
                arrival_s: 0.0,
                reason: ShedReason::QueueFull,
                retries: 0,
                tenant: 0,
            })
            .collect();
        let m = FleetMetrics::from_outcomes(3, &[], &shed, &[0.0], &[0.0]);
        assert!(m.latency.is_none());
        assert_eq!(m.shed_rate, 1.0);
        assert_eq!(m.goodput_rps, 0.0);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn lost_requests_rejected() {
        let _ = FleetMetrics::from_outcomes(5, &[], &[], &[1.0], &[0.0]);
    }

    #[test]
    fn retry_and_availability_accounting() {
        let mut survived = completion(0, 0.0, 4.0, 0);
        survived.retries = 2;
        let fresh = completion(1, 0.0, 2.0, 1);
        let shed = vec![Shed {
            id: 2,
            class: "standard",
            arrival_s: 1.0,
            reason: ShedReason::ReplicaLost,
            retries: 3,
            tenant: 0,
        }];
        // Makespan 4 s; replica 1 was down for 1 s of it.
        let m = FleetMetrics::from_outcomes(3, &[survived, fresh], &shed, &[2.0, 1.0], &[0.0, 1.0]);
        assert_eq!(m.retried, 2, "one retried completion + one retried shed");
        assert_eq!(m.retry_events, 5);
        assert_eq!(m.per_replica_availability, vec![1.0, 0.75]);
    }

    // --- degenerate completion sets (satellite: percentile hardening) ----

    #[test]
    fn single_completion_pins_every_percentile_to_that_sample() {
        let m = FleetMetrics::from_outcomes(1, &[completion(0, 1.0, 3.0, 0)], &[], &[2.0], &[0.0]);
        let lat = m.latency.expect("one completion");
        assert_eq!(lat.completed, 1);
        // n = 1: the 2 s latency IS the whole distribution.
        assert_eq!((lat.p50_s, lat.p95_s, lat.p99_s), (2.0, 2.0, 2.0));
        assert_eq!(lat.mean_latency_s, 2.0);
    }

    #[test]
    fn two_completions_pin_percentiles_to_the_upper_sample() {
        // Latencies 1 s and 9 s. Nearest-rank with round-half-away-from-
        // zero puts p50 (index round(0.5) = 1) on the UPPER sample, and
        // p95/p99 follow; the mean still sees both.
        let completions = vec![completion(0, 0.0, 1.0, 0), completion(1, 1.0, 10.0, 0)];
        let m = FleetMetrics::from_outcomes(2, &completions, &[], &[5.0], &[0.0]);
        let lat = m.latency.expect("two completions");
        assert_eq!(lat.completed, 2);
        assert_eq!((lat.p50_s, lat.p95_s, lat.p99_s), (9.0, 9.0, 9.0));
        assert_eq!(lat.mean_latency_s, 5.0);
    }

    #[test]
    fn three_completions_pin_median_to_middle_and_tails_to_max() {
        // Latencies 1, 3, 4 s: p50 = middle sample, p95/p99 = max.
        let completions = vec![
            completion(0, 0.0, 1.0, 0),
            completion(1, 0.0, 3.0, 0),
            completion(2, 1.0, 5.0, 0),
        ];
        let m = FleetMetrics::from_outcomes(3, &completions, &[], &[4.0], &[0.0]);
        let lat = m.latency.expect("three completions");
        assert_eq!((lat.p50_s, lat.p95_s, lat.p99_s), (3.0, 4.0, 4.0));
    }
}
