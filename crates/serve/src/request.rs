//! Requests and service classes as the runtime sees them.

use cta_sim::{AttentionTask, ServingRequest};

/// A quality-of-service class: a scheduling priority plus an optional
/// completion deadline.
///
/// Priorities order replica queues (higher first); the deadline, when
/// present and enforced by the [`AdmissionPolicy`](crate::AdmissionPolicy),
/// is a *relative* latency budget from the request's arrival, used both to
/// shed requests that cannot meet it and to score goodput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosClass {
    /// Human-readable class name (reported in metrics breakdowns).
    pub name: &'static str,
    /// Scheduling priority; higher is served first within a queue.
    pub priority: u8,
    /// End-to-end latency budget from arrival, seconds, if the class has
    /// an SLO.
    pub deadline_s: Option<f64>,
}

impl QosClass {
    /// An interactive class: high priority with a deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s <= 0`.
    pub fn interactive(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        Self { name: "interactive", priority: 200, deadline_s: Some(deadline_s) }
    }

    /// The default class: mid priority, no deadline.
    pub fn standard() -> Self {
        Self { name: "standard", priority: 100, deadline_s: None }
    }

    /// A throughput-oriented background class: lowest priority, no
    /// deadline.
    pub fn batch() -> Self {
        Self { name: "batch", priority: 0, deadline_s: None }
    }
}

/// One inference request as admitted to the fleet: identity, arrival,
/// class, and the per-layer head tasks of its model (layer-major, exactly
/// as [`cta_sim::CtaSystem::run_layers`] takes them).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Unique request id; used as the deterministic tie-breaker wherever
    /// two events coincide in time.
    pub id: u64,
    /// Arrival time, seconds from trace start.
    pub arrival_s: f64,
    /// The request's service class.
    pub class: QosClass,
    /// Owning tenant id (0 in single-tenant configurations).
    pub tenant: u32,
    /// Per-layer head tasks.
    pub layer_tasks: Vec<Vec<AttentionTask>>,
}

impl ServeRequest {
    /// Builds a request, validating its shape.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_s < 0`, `layer_tasks` is empty, or any layer has
    /// no head tasks.
    pub fn new(
        id: u64,
        arrival_s: f64,
        class: QosClass,
        layer_tasks: Vec<Vec<AttentionTask>>,
    ) -> Self {
        assert!(arrival_s >= 0.0, "arrival time must be non-negative");
        assert!(!layer_tasks.is_empty(), "a request needs at least one layer");
        assert!(layer_tasks.iter().all(|l| !l.is_empty()), "every layer needs at least one head");
        Self { id, arrival_s, class, tenant: 0, layer_tasks }
    }

    /// The same request owned by `tenant`.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// A request whose every layer runs `heads` copies of one head task
    /// (mirror of [`ServingRequest::uniform`]).
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `heads == 0`, or `arrival_s < 0`.
    pub fn uniform(
        id: u64,
        arrival_s: f64,
        class: QosClass,
        task: AttentionTask,
        layers: usize,
        heads: usize,
    ) -> Self {
        assert!(layers > 0 && heads > 0, "layers and heads must be positive");
        Self::new(id, arrival_s, class, vec![vec![task; heads]; layers])
    }

    /// Adopts a `cta-sim` serving request under a class, keeping its
    /// arrival time and layer tasks.
    pub fn from_serving(id: u64, class: QosClass, r: &ServingRequest) -> Self {
        Self::new(id, r.arrival_s, class, r.layer_tasks.clone())
    }

    /// Number of layers the request still owes from `cursor` (layers
    /// already dispatched).
    pub(crate) fn remaining_layers(&self, cursor: usize) -> usize {
        self.layer_tasks.len().saturating_sub(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    #[test]
    fn uniform_builds_layer_major_tasks() {
        let r = ServeRequest::uniform(7, 1.5, QosClass::standard(), task(), 3, 4);
        assert_eq!(r.layer_tasks.len(), 3);
        assert!(r.layer_tasks.iter().all(|l| l.len() == 4));
        assert_eq!(r.remaining_layers(0), 3);
        assert_eq!(r.remaining_layers(2), 1);
        assert_eq!(r.remaining_layers(5), 0);
    }

    #[test]
    fn from_serving_preserves_arrival_and_shape() {
        let s = ServingRequest::uniform(2.0, task(), 2, 3);
        let r = ServeRequest::from_serving(1, QosClass::batch(), &s);
        assert_eq!(r.arrival_s, 2.0);
        assert_eq!(r.layer_tasks, s.layer_tasks);
    }

    #[test]
    fn tenant_defaults_to_zero_and_rebinds() {
        let r = ServeRequest::uniform(7, 0.0, QosClass::standard(), task(), 1, 1);
        assert_eq!(r.tenant, 0);
        assert_eq!(r.with_tenant(5).tenant, 5);
    }

    #[test]
    fn class_constructors_order_priorities() {
        assert!(QosClass::interactive(0.1).priority > QosClass::standard().priority);
        assert!(QosClass::standard().priority > QosClass::batch().priority);
        assert_eq!(QosClass::interactive(0.1).deadline_s, Some(0.1));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_request_rejected() {
        let _ = ServeRequest::new(0, 0.0, QosClass::standard(), vec![]);
    }

    #[test]
    #[should_panic(expected = "every layer needs at least one head")]
    fn empty_layer_rejected() {
        let _ = ServeRequest::new(0, 0.0, QosClass::standard(), vec![vec![task()], vec![]]);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn non_positive_deadline_rejected() {
        let _ = QosClass::interactive(0.0);
    }
}
