//! Requests and service classes as the runtime sees them.

use cta_sim::{AttentionTask, ServingRequest};

/// A quality-of-service class: a scheduling priority plus an optional
/// completion deadline.
///
/// Priorities order replica queues (higher first); the deadline, when
/// present and enforced by the [`AdmissionPolicy`](crate::AdmissionPolicy),
/// is a *relative* latency budget from the request's arrival, used both to
/// shed requests that cannot meet it and to score goodput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosClass {
    /// Human-readable class name (reported in metrics breakdowns).
    pub name: &'static str,
    /// Scheduling priority; higher is served first within a queue.
    pub priority: u8,
    /// End-to-end latency budget from arrival, seconds, if the class has
    /// an SLO.
    pub deadline_s: Option<f64>,
}

impl QosClass {
    /// An interactive class: high priority with a deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s <= 0`.
    pub fn interactive(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        Self { name: "interactive", priority: 200, deadline_s: Some(deadline_s) }
    }

    /// The default class: mid priority, no deadline.
    pub fn standard() -> Self {
        Self { name: "standard", priority: 100, deadline_s: None }
    }

    /// A throughput-oriented background class: lowest priority, no
    /// deadline.
    pub fn batch() -> Self {
        Self { name: "batch", priority: 0, deadline_s: None }
    }
}

/// One turn of a long-lived decode session, as carried by a
/// [`ServeRequest`].
///
/// A session-tagged request is priced as a decode *segment* (per-token
/// incremental compression against the resident prefix, see
/// [`cta_sim::schedule_decode`]) instead of a full prefill, and — when the
/// fleet runs with a [`SessionPolicy`](crate::SessionPolicy) — is routed
/// sticky to the replica holding the session's compression state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionTurn {
    /// Session identifier shared by all turns of one session.
    pub session: u64,
    /// Turn index within the session, from 0.
    pub turn: u32,
    /// Tokens this turn decodes incrementally.
    pub decode_tokens: u32,
    /// Level-2 re-cluster events expected during the turn (from the
    /// streaming compressor's drift trigger; see
    /// [`cta_sim::reclusters_for`]).
    pub reclusters: u32,
    /// Whether this is the session's final turn (completing it releases
    /// the replica's session state).
    pub last: bool,
}

/// One inference request as admitted to the fleet: identity, arrival,
/// class, and the per-layer head tasks of its model (layer-major, exactly
/// as [`cta_sim::CtaSystem::run_layers`] takes them).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Unique request id; used as the deterministic tie-breaker wherever
    /// two events coincide in time.
    pub id: u64,
    /// Arrival time, seconds from trace start.
    pub arrival_s: f64,
    /// The request's service class.
    pub class: QosClass,
    /// Owning tenant id (0 in single-tenant configurations).
    pub tenant: u32,
    /// Decode-session turn this request represents (`None` for ordinary
    /// one-shot prefill requests — every pre-session constructor leaves it
    /// `None`, keeping existing traces and goldens byte-identical).
    pub session: Option<SessionTurn>,
    /// Per-layer head tasks.
    pub layer_tasks: Vec<Vec<AttentionTask>>,
}

impl ServeRequest {
    /// Builds a request, validating its shape.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_s < 0`, `layer_tasks` is empty, or any layer has
    /// no head tasks.
    pub fn new(
        id: u64,
        arrival_s: f64,
        class: QosClass,
        layer_tasks: Vec<Vec<AttentionTask>>,
    ) -> Self {
        assert!(arrival_s >= 0.0, "arrival time must be non-negative");
        assert!(!layer_tasks.is_empty(), "a request needs at least one layer");
        assert!(layer_tasks.iter().all(|l| !l.is_empty()), "every layer needs at least one head");
        Self { id, arrival_s, class, tenant: 0, session: None, layer_tasks }
    }

    /// The same request owned by `tenant`.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The same request tagged as one turn of a decode session.
    ///
    /// # Panics
    ///
    /// Panics if `turn.decode_tokens == 0` (a decode segment needs at
    /// least one token).
    pub fn with_session(mut self, turn: SessionTurn) -> Self {
        assert!(turn.decode_tokens > 0, "a decode turn needs at least one token");
        self.session = Some(turn);
        self
    }

    /// A request whose every layer runs `heads` copies of one head task
    /// (mirror of [`ServingRequest::uniform`]).
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `heads == 0`, or `arrival_s < 0`.
    pub fn uniform(
        id: u64,
        arrival_s: f64,
        class: QosClass,
        task: AttentionTask,
        layers: usize,
        heads: usize,
    ) -> Self {
        assert!(layers > 0 && heads > 0, "layers and heads must be positive");
        Self::new(id, arrival_s, class, vec![vec![task; heads]; layers])
    }

    /// Adopts a `cta-sim` serving request under a class, keeping its
    /// arrival time and layer tasks.
    pub fn from_serving(id: u64, class: QosClass, r: &ServingRequest) -> Self {
        Self::new(id, r.arrival_s, class, r.layer_tasks.clone())
    }

    /// Number of layers the request still owes from `cursor` (layers
    /// already dispatched).
    pub(crate) fn remaining_layers(&self, cursor: usize) -> usize {
        self.layer_tasks.len().saturating_sub(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    #[test]
    fn uniform_builds_layer_major_tasks() {
        let r = ServeRequest::uniform(7, 1.5, QosClass::standard(), task(), 3, 4);
        assert_eq!(r.layer_tasks.len(), 3);
        assert!(r.layer_tasks.iter().all(|l| l.len() == 4));
        assert_eq!(r.remaining_layers(0), 3);
        assert_eq!(r.remaining_layers(2), 1);
        assert_eq!(r.remaining_layers(5), 0);
    }

    #[test]
    fn from_serving_preserves_arrival_and_shape() {
        let s = ServingRequest::uniform(2.0, task(), 2, 3);
        let r = ServeRequest::from_serving(1, QosClass::batch(), &s);
        assert_eq!(r.arrival_s, 2.0);
        assert_eq!(r.layer_tasks, s.layer_tasks);
    }

    #[test]
    fn tenant_defaults_to_zero_and_rebinds() {
        let r = ServeRequest::uniform(7, 0.0, QosClass::standard(), task(), 1, 1);
        assert_eq!(r.tenant, 0);
        assert_eq!(r.with_tenant(5).tenant, 5);
    }

    #[test]
    fn session_defaults_to_none_and_tags() {
        let r = ServeRequest::uniform(7, 0.0, QosClass::standard(), task(), 1, 1);
        assert_eq!(r.session, None);
        let turn =
            SessionTurn { session: 3, turn: 1, decode_tokens: 64, reclusters: 2, last: true };
        assert_eq!(r.with_session(turn).session, Some(turn));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_decode_turn_rejected() {
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 1, 1);
        let _ = r.with_session(SessionTurn {
            session: 0,
            turn: 0,
            decode_tokens: 0,
            reclusters: 0,
            last: false,
        });
    }

    #[test]
    fn class_constructors_order_priorities() {
        assert!(QosClass::interactive(0.1).priority > QosClass::standard().priority);
        assert!(QosClass::standard().priority > QosClass::batch().priority);
        assert_eq!(QosClass::interactive(0.1).deadline_s, Some(0.1));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_request_rejected() {
        let _ = ServeRequest::new(0, 0.0, QosClass::standard(), vec![]);
    }

    #[test]
    #[should_panic(expected = "every layer needs at least one head")]
    fn empty_layer_rejected() {
        let _ = ServeRequest::new(0, 0.0, QosClass::standard(), vec![vec![task()], vec![]]);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn non_positive_deadline_rejected() {
        let _ = QosClass::interactive(0.0);
    }
}
