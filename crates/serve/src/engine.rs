//! The fleet engine: shared event handlers behind two drivers.
//!
//! All five event sources — fault transitions, arrivals, retry requeues,
//! hedge timers, replica layer steps — are handled by methods on
//! [`EngineState`], and two drivers decide *which* handler runs next:
//!
//! * [`FleetEngine::StepGranular`] — the original loop: every iteration
//!   scans all replicas for the earliest step and cascades through the
//!   due-conditions. O(replicas) per event; the reference semantics.
//! * [`FleetEngine::EventDriven`] — a `cta-events` calendar queue holds
//!   one event per pending source (the next arrival and next fault are
//!   chained; each replica keeps at most one scheduled step; every retry
//!   backoff and hedge timer is an event with a cancellation token).
//!   O(1) amortized per event, which is what makes 1k+ replica fleets
//!   tractable.
//!
//! Both drivers invoke the *same* handler code, so every floating-point
//! operation happens in the same order and the reports are bitwise
//! identical — the `engine` integration test and the golden pins enforce
//! this. The event order contract is encoded in the class ranks below:
//! at one instant, fault < arrival < retry < hedge < step, matching the
//! step-granular cascade's `<=` comparisons; within a class the tie is
//! the fault timeline index / arrival index / request id / request id /
//! replica index; and the calendar queue breaks any remaining tie by
//! schedule order.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cta_events::{EventId, EventLoop};
use cta_sim::CtaSystem;
use cta_telemetry::{Module, SpanClass, TraceSink, TrackId};
use cta_tenancy::{
    Autoscaler, Backpressure, FairQueue, ScaleEvent, TenancyStats, TenantOutcome, TokenBucket,
};

use crate::detector::DetectorBank;
use crate::fault::{FaultEvent, FaultKind};
use crate::overload::{BreakerEvent, BreakerState, CircuitBreaker, Transition};
use crate::replica::{Completion, Pending, Replica};
use crate::runtime::{FleetConfig, FleetReport, Shed};
use crate::{
    BrownoutController, BrownoutLadder, CostModel, FleetMetrics, ServeRequest, SessionStats,
    ShedReason,
};

/// Which driver advances the fleet simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetEngine {
    /// Scan all replicas for the earliest step every iteration (the
    /// original loop). O(replicas) per event; the reference semantics.
    #[default]
    StepGranular,
    /// Calendar-queue event loop: O(1) amortized per event, bitwise
    /// identical reports (pinned by test).
    EventDriven,
}

impl FleetEngine {
    /// Short identifier used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            FleetEngine::StepGranular => "step",
            FleetEngine::EventDriven => "event",
        }
    }

    /// Parses a CLI label (`step` / `event`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "step" | "step-granular" => Some(FleetEngine::StepGranular),
            "event" | "event-driven" => Some(FleetEngine::EventDriven),
            _ => None,
        }
    }
}

/// Event class ranks: the pop order at one instant. These mirror the
/// step-granular cascade (`fault_due` before `arrival_due` before …), so
/// the two drivers process coincident events identically.
const CLASS_FAULT: u8 = 0;
const CLASS_ARRIVAL: u8 = 1;
const CLASS_RETRY: u8 = 2;
const CLASS_HEDGE: u8 = 3;
const CLASS_STEP: u8 = 4;

/// Event payloads for the event-driven driver. The key's `tie` field
/// identifies the instance (arrival index, request id, replica index);
/// the payload only routes to the right handler.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Fault,
    Arrival,
    Retry,
    Hedge,
    Step,
}

/// A crash-evicted request waiting out its backoff before re-entering
/// routing.
#[derive(Debug, Clone)]
struct RetryEntry {
    /// When the requeue fires, seconds.
    retry_s: f64,
    /// Requeue attempts consumed (this entry is attempt number `attempt`).
    attempt: u32,
    /// Layer to resume from.
    cursor: usize,
    request: ServeRequest,
}

/// Inserts keeping (retry_s asc, id asc) order.
fn push_retry(retries: &mut Vec<RetryEntry>, entry: RetryEntry) {
    let pos = retries
        .binary_search_by(|probe| {
            probe
                .retry_s
                .partial_cmp(&entry.retry_s)
                .expect("finite retry times")
                .then(probe.request.id.cmp(&entry.request.id))
        })
        .unwrap_or_else(|e| e);
    retries.insert(pos, entry);
}

/// A scheduled hedge check: if the request is still in flight when the
/// timer fires, a copy is dispatched to a second replica.
#[derive(Debug, Clone)]
struct HedgeEntry {
    /// When the check fires, seconds.
    fire_s: f64,
    /// Snapshot of the request (the copy restarts from layer 0).
    request: ServeRequest,
    /// Solo service estimate cached at admission.
    est_service_s: f64,
}

/// Inserts keeping (fire_s asc, id asc) order.
fn push_hedge(hedges: &mut Vec<HedgeEntry>, entry: HedgeEntry) {
    let pos = hedges
        .binary_search_by(|probe| {
            probe
                .fire_s
                .partial_cmp(&entry.fire_s)
                .expect("finite hedge times")
                .then(probe.request.id.cmp(&entry.request.id))
        })
        .unwrap_or_else(|e| e);
    hedges.insert(pos, entry);
}

/// Settles open→half-open breaker transitions as of `now` (emitting the
/// finished open interval) and returns the routable mask, or `None` when
/// breakers are disabled.
fn settle_breakers<S: TraceSink>(
    breakers: &mut Option<Vec<CircuitBreaker>>,
    now: f64,
    sink: &mut S,
) -> Option<Vec<bool>> {
    let bs = breakers.as_mut()?;
    let mut mask = Vec::with_capacity(bs.len());
    for (i, b) in bs.iter_mut().enumerate() {
        if let Some(BreakerEvent::HalfOpened { since_s, at_s }) = b.tick(now) {
            if S::ENABLED {
                let track = TrackId::new(i as u32, Module::Breaker);
                sink.span(track, "open", since_s, at_s, SpanClass::Control, true);
            }
        }
        mask.push(b.routable());
    }
    Some(mask)
}

/// Applies a brownout transition to replica `i` and emits the level-change
/// marks plus the `accuracy_loss_pct` counter the aggregate report
/// integrates for quality-loss attribution.
fn apply_transition<S: TraceSink>(
    replicas: &mut [Replica],
    ladder: &BrownoutLadder,
    i: usize,
    tr: Transition,
    now: f64,
    transitions_total: &mut usize,
    sink: &mut S,
) {
    replicas[i].set_level(ladder, tr.to);
    *transitions_total += 1;
    if S::ENABLED {
        let track = TrackId::new(i as u32, Module::Brownout);
        sink.instant(track, if tr.to > tr.from { "level-up" } else { "level-down" }, now);
        sink.counter(track, "accuracy_loss_pct", now, ladder.level(tr.to).accuracy_loss_pct);
    }
}

/// What became of one dispatch attempt out of the tenancy fair queue
/// (or straight off the wire when tenancy is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    /// Admitted to a replica queue.
    Enqueued,
    /// Rejected and recorded in the shed list.
    Shed,
    /// Hold backpressure: the target queue is full (or the fleet is
    /// down); the request goes back to the head of the fair queue.
    Blocked,
}

/// Runtime state of the tenancy stage: the fair queue in front of
/// admission, the per-tenant quota buckets, and the autoscaler.
struct TenancyState {
    queue: FairQueue<ServeRequest>,
    buckets: Option<Vec<TokenBucket>>,
    scaler: Option<Autoscaler>,
    /// Hold backpressure: a full replica queue parks the request in the
    /// fair queue instead of shedding it.
    hold: bool,
}

/// All simulation state, shared by both drivers. The handlers are the
/// single definition of what each event does; the drivers only decide
/// ordering — which the class ranks make identical.
struct EngineState<'a> {
    cfg: &'a FleetConfig,
    requests: &'a [ServeRequest],
    system: CtaSystem,
    replicas: Vec<Replica>,
    cost: CostModel,
    completions: Vec<Completion>,
    shed: Vec<Shed>,
    rr_cursor: usize,
    next_arrival: usize,
    fault_events: Vec<FaultEvent>,
    next_fault: usize,
    retries: Vec<RetryEntry>,
    requeues_total: usize,
    overload_on: bool,
    controllers: Option<Vec<BrownoutController>>,
    breakers: Option<Vec<CircuitBreaker>>,
    hedges: Vec<HedgeEntry>,
    /// Hedged requests with two live copies: id → primary replica at
    /// hedge-dispatch time (lookup only, never iterated — determinism).
    hedged_live: HashMap<u64, usize>,
    lat_window: Vec<f64>,
    lat_next: usize,
    hedged: usize,
    hedge_wins: usize,
    hedge_cancelled: usize,
    transitions_total: usize,
    /// Handler invocations so far (one per simulated event; equal across
    /// drivers, asserted by the equivalence tests).
    events_processed: u64,
    /// Event-driver bookkeeping, recorded only when `record` is set:
    /// replica indices whose `next_step_time` may have changed, retry
    /// events to schedule `(retry_s, id)` / cancel by id, and hedge
    /// events to schedule `(fire_s, id)`. Pure integer bookkeeping — the
    /// step-granular float stream is untouched.
    record: bool,
    touched: Vec<usize>,
    retry_added: Vec<(f64, u64)>,
    retry_removed: Vec<u64>,
    hedge_added: Vec<(f64, u64)>,
    /// Multi-tenant stage (`None` = the single-tenant fleet, bitwise:
    /// every tenancy hook below is guarded on it).
    tenancy: Option<TenancyState>,
    /// Failure detector (`None` = routing trusts `up` alone, bitwise:
    /// every detector hook below is guarded on it).
    detector: Option<DetectorBank>,
    /// Whether the fleet runs a [`SessionPolicy`](crate::SessionPolicy).
    /// Every session hook below is guarded on it, so the sessions-off
    /// fleet executes the exact pre-session event loop (pinned bitwise by
    /// the goldens).
    session_on: bool,
    /// Session residency: session id → replica holding its compression
    /// state. `BTreeMap` so any iteration is deterministic.
    sessions: BTreeMap<u64, usize>,
    /// Sessions with a shed turn: the state can never advance past the
    /// hole, so every later turn sheds [`ShedReason::SessionLost`] at
    /// arrival.
    lost_sessions: BTreeSet<u64>,
    /// Re-prefill events charged to turns past the first (crash
    /// evictions and non-sticky replica moves).
    re_prefills: usize,
    /// Session turns shed, for conservation accounting.
    session_turns_shed: usize,
}

impl<'a> EngineState<'a> {
    fn new(cfg: &'a FleetConfig, requests: &'a [ServeRequest]) -> Self {
        let system = CtaSystem::new(cfg.system);
        let replicas: Vec<Replica> =
            (0..cfg.replicas).map(|i| Replica::new(i, system.clone())).collect();
        // Overload-control state. Every structure is `None`/empty when the
        // corresponding mechanism is off, so the disabled path executes the
        // exact pre-overload event loop (the `is_none_or` guards below
        // reduce to their old expressions; pinned bitwise by test).
        let overload_on = !cfg.overload.is_off();
        let controllers: Option<Vec<BrownoutController>> =
            cfg.overload.brownout.as_ref().map(|b| {
                (0..cfg.replicas)
                    .map(|_| BrownoutController::new(b.policy, b.ladder.max_level()))
                    .collect()
            });
        let breakers: Option<Vec<CircuitBreaker>> = cfg
            .overload
            .breaker
            .map(|p| (0..cfg.replicas).map(|_| CircuitBreaker::new(p)).collect());
        if let Some(hp) = &cfg.overload.hedge {
            hp.validate();
        }
        let detector = cfg.detector.map(|p| DetectorBank::new(p, cfg.replicas));
        let tenancy = cfg.tenancy.as_ref().map(|t| TenancyState {
            queue: FairQueue::new(t.scheduler, &t.weights),
            buckets: t.quota.map(|q| (0..t.tenants).map(|_| TokenBucket::new(q)).collect()),
            scaler: t.autoscale.map(|p| Autoscaler::new(p, cfg.replicas)),
            hold: t.backpressure == Backpressure::Hold,
        });
        Self {
            cfg,
            requests,
            system,
            replicas,
            cost: CostModel::new(),
            completions: Vec::with_capacity(requests.len()),
            shed: Vec::new(),
            rr_cursor: 0,
            next_arrival: 0,
            fault_events: cfg.faults.timeline(),
            next_fault: 0,
            retries: Vec::new(),
            requeues_total: 0,
            overload_on,
            controllers,
            breakers,
            hedges: Vec::new(),
            hedged_live: HashMap::new(),
            lat_window: Vec::new(),
            lat_next: 0,
            hedged: 0,
            hedge_wins: 0,
            hedge_cancelled: 0,
            transitions_total: 0,
            events_processed: 0,
            record: false,
            touched: Vec::new(),
            retry_added: Vec::new(),
            retry_removed: Vec::new(),
            hedge_added: Vec::new(),
            tenancy,
            detector,
            session_on: cfg.sessions.is_some(),
            sessions: BTreeMap::new(),
            lost_sessions: BTreeSet::new(),
            re_prefills: 0,
            session_turns_shed: 0,
        }
    }

    /// Records a shed session turn: the whole session is lost (its prefix
    /// state cannot advance past a hole in the turn sequence) and any
    /// resident state is released.
    fn note_session_shed(&mut self, request: &ServeRequest) {
        if !self.session_on {
            return;
        }
        if let Some(turn) = &request.session {
            self.session_turns_shed += 1;
            self.lost_sessions.insert(turn.session);
            if let Some(r) = self.sessions.remove(&turn.session) {
                self.replicas[r].resident_sessions.retain(|(s, _)| *s != turn.session);
            }
        }
    }

    /// Records that `turn`'s session state now lives on `target` (called
    /// after the turn is enqueued there). A move off the previous replica
    /// releases the old residency; a move on a turn past the first is a
    /// re-prefill event. `hold_s` is the occupancy charge the new replica
    /// carries while the state is resident (0 with state accounting off).
    fn place_session(&mut self, session: u64, turn: u32, target: usize, hold_s: f64) {
        let prev = self.sessions.insert(session, target);
        if prev == Some(target) {
            return;
        }
        if let Some(p) = prev {
            self.replicas[p].resident_sessions.retain(|(s, _)| *s != session);
        }
        self.replicas[target].resident_sessions.push((session, hold_s));
        if turn > 0 {
            self.re_prefills += 1;
        }
    }

    /// Routable-replica mask: breaker state ANDed with the autoscaler's
    /// enabled-and-warmed set ANDed with the failure detector's
    /// quarantine state. `None` when all three mechanisms are off — the
    /// exact pre-tenancy expression, so the disabled path stays bitwise.
    fn routable_mask<S: TraceSink>(&mut self, now: f64, sink: &mut S) -> Option<Vec<bool>> {
        let breaker = settle_breakers(&mut self.breakers, now, sink);
        let det = match self.detector.as_mut() {
            Some(d) => Some(d.mask(&self.replicas, now, sink)),
            None => None,
        };
        let scaler = self.tenancy.as_ref().and_then(|t| t.scaler.as_ref());
        match (&breaker, scaler, &det) {
            (None, None, None) => None,
            (_, scaler, _) => Some(
                (0..self.replicas.len())
                    .map(|i| {
                        breaker.as_ref().is_none_or(|m| m[i])
                            && scaler.is_none_or(|s| s.routable(i, now))
                            && det.as_ref().is_none_or(|m| m[i])
                    })
                    .collect(),
            ),
        }
    }

    /// Queues a retry entry, recording the event for the event driver.
    fn queue_retry(&mut self, entry: RetryEntry) {
        if self.record {
            self.retry_added.push((entry.retry_s, entry.request.id));
        }
        push_retry(&mut self.retries, entry);
    }

    /// Marks replica `i`'s next step time as possibly changed.
    fn touch(&mut self, i: usize) {
        if self.record {
            self.touched.push(i);
        }
    }

    /// Processes `fault_events[next_fault]`: a replica crash (orphaning
    /// its queue into retries or sheds), a recovery, or a host-link
    /// partition transition (stranding / resuming work in place).
    fn handle_fault<S: TraceSink>(&mut self, sink: &mut S) {
        self.events_processed += 1;
        let cfg = self.cfg;
        let ev = self.fault_events[self.next_fault];
        self.next_fault += 1;
        self.touch(ev.replica);
        let track = TrackId::new(ev.replica as u32, Module::Fault);
        match ev.kind {
            FaultKind::PartitionStart => {
                self.replicas[ev.replica].partition_start(ev.t_s);
                if S::ENABLED {
                    sink.instant(track, "partition-start", ev.t_s);
                }
                return;
            }
            FaultKind::PartitionEnd => {
                let since = self.replicas[ev.replica].partition_since;
                self.replicas[ev.replica].partition_heal(ev.t_s);
                if S::ENABLED {
                    sink.span(track, "partition", since, ev.t_s, SpanClass::Fault, true);
                    sink.instant(track, "partition-heal", ev.t_s);
                }
                return;
            }
            FaultKind::Down | FaultKind::Up => {}
        }
        if ev.kind == FaultKind::Up {
            let since = self.replicas[ev.replica].down_since;
            self.replicas[ev.replica].recover(ev.t_s);
            if S::ENABLED {
                sink.span(track, "outage", since, ev.t_s, SpanClass::Fault, true);
                sink.instant(track, "replica-up", ev.t_s);
            }
            // A recovery opens routing capacity: held tenancy work can
            // move now rather than waiting for the next arrival.
            if self.tenancy.is_some() {
                self.drain_tenancy(ev.t_s, sink);
            }
        } else {
            let orphans = self.replicas[ev.replica].crash(ev.t_s);
            if S::ENABLED {
                sink.instant(track, "replica-down", ev.t_s);
            }
            // A crash evicts every resident session's compression state:
            // the next turn of each must re-prefill wherever it lands.
            if self.session_on {
                for (s, _) in std::mem::take(&mut self.replicas[ev.replica].resident_sessions) {
                    if self.sessions.get(&s) == Some(&ev.replica) {
                        self.sessions.remove(&s);
                    }
                }
            }
            if let Some(bs) = self.breakers.as_mut() {
                let prev = bs[ev.replica].state();
                if let Some(BreakerEvent::Opened { at_s }) = bs[ev.replica].record_failure(ev.t_s) {
                    if S::ENABLED {
                        let btrack = TrackId::new(ev.replica as u32, Module::Breaker);
                        // A failed probe closes its half-open interval.
                        if let BreakerState::HalfOpen { since_s, .. } = prev {
                            sink.span(btrack, "half-open", since_s, at_s, SpanClass::Control, true);
                        }
                        sink.instant(btrack, "breaker-open", at_s);
                    }
                }
            }
            for p in orphans {
                // A hedge copy whose sibling is still live elsewhere is
                // dropped silently (accounted as a cancellation): the
                // surviving copy carries the request, so requeueing or
                // shedding this one would double-resolve it.
                if self.hedged_live.contains_key(&p.request.id)
                    && self.replicas.iter().any(|r| r.holds_request(p.request.id))
                {
                    self.hedge_cancelled += 1;
                    if S::ENABLED {
                        let htrack = TrackId::new(ev.replica as u32, Module::Hedge);
                        sink.instant(htrack, "hedge-cancel", ev.t_s);
                    }
                    continue;
                }
                let attempt = p.attempt + 1;
                // An orphaned session turn loses its layer progress with
                // the evicted compression state: it resumes from layer 0
                // (and re-prefills wherever it is placed).
                let cursor = if p.request.session.is_some() { 0 } else { p.resume_cursor };
                let lost_reason = if p.request.session.is_some() {
                    ShedReason::SessionLost
                } else {
                    ShedReason::ReplicaLost
                };
                if attempt > cfg.retry.max_attempts {
                    self.shed.push(Shed {
                        id: p.request.id,
                        class: p.request.class.name,
                        arrival_s: p.request.arrival_s,
                        reason: lost_reason,
                        retries: p.attempt,
                        tenant: p.request.tenant,
                    });
                    self.note_session_shed(&p.request);
                    continue;
                }
                let retry_s = ev.t_s + cfg.retry.backoff(attempt);
                // Deadline-aware requeue: if even an unobstructed resume
                // cannot meet the SLO, shed now instead of burning the
                // budget.
                if cfg.admission.enforce_deadlines {
                    if let Some(d) = p.request.class.deadline_s {
                        let mut remaining =
                            self.cost.remaining_service_s(&self.system, &p.request, cursor)
                                + if cursor > 0 { self.system.weight_upload_s() } else { 0.0 };
                        if p.request.session.is_some() {
                            remaining += self.cost.session_prefill_s(&self.system, &p.request);
                        }
                        if retry_s + remaining > p.request.arrival_s + d {
                            self.shed.push(Shed {
                                id: p.request.id,
                                class: p.request.class.name,
                                arrival_s: p.request.arrival_s,
                                reason: lost_reason,
                                retries: p.attempt,
                                tenant: p.request.tenant,
                            });
                            self.note_session_shed(&p.request);
                            continue;
                        }
                    }
                }
                self.requeues_total += 1;
                if S::ENABLED {
                    sink.instant(track, "requeue", ev.t_s);
                    sink.counter(track, "retries", ev.t_s, self.requeues_total as f64);
                }
                self.queue_retry(RetryEntry { retry_s, attempt, cursor, request: p.request });
            }
        }
    }

    /// Routes and admission-checks one request at `now`: the dispatch
    /// stage shared by the direct arrival path and the tenancy fair
    /// queue. With `hold` set (tenancy Hold backpressure) a full target
    /// queue — or a fleet with no routable replica — blocks instead of
    /// shedding, so the caller can park the request.
    fn dispatch_request<S: TraceSink>(
        &mut self,
        request: &ServeRequest,
        now: f64,
        hold: bool,
        sink: &mut S,
    ) -> Dispatch {
        let cfg = self.cfg;
        // Lost-session fast path: a session that already shed a turn can
        // never complete, so later turns shed before touching any routing
        // or admission state.
        if self.session_on {
            if let Some(turn) = &request.session {
                if self.lost_sessions.contains(&turn.session) {
                    if S::ENABLED {
                        let track = TrackId::new(0, Module::Runtime);
                        sink.instant(track, "shed-session-lost", now);
                    }
                    self.shed.push(Shed {
                        id: request.id,
                        class: request.class.name,
                        arrival_s: request.arrival_s,
                        reason: ShedReason::SessionLost,
                        retries: 0,
                        tenant: request.tenant,
                    });
                    self.note_session_shed(request);
                    return Dispatch::Shed;
                }
            }
        }
        let mask = self.routable_mask(now, sink);
        // Sticky routing: a turn of a resident session goes back to the
        // replica holding its compression state, under the same
        // eligibility `choose` applies (up, not masked out). An ineligible
        // holder falls through to the configured policy — and pays the
        // re-prefill below.
        let sticky = if self.session_on && cfg.sessions.as_ref().is_some_and(|p| p.sticky) {
            request
                .session
                .and_then(|turn| self.sessions.get(&turn.session).copied())
                .filter(|&i| self.replicas[i].up && mask.as_ref().is_none_or(|m| m[i]))
        } else {
            None
        };
        let chosen = match sticky {
            Some(t) => Some(t),
            None => cfg.routing.choose(
                &mut self.replicas,
                &mut self.cost,
                now,
                &mut self.rr_cursor,
                mask.as_deref(),
            ),
        };
        let Some(target) = chosen else {
            // No routable replica: the whole fleet is down (or every
            // enabled replica is still warming). Hold parks the request;
            // otherwise nothing can take it.
            if hold {
                return Dispatch::Blocked;
            }
            if S::ENABLED {
                let track = TrackId::new(0, Module::Fault);
                sink.instant(track, "shed-fleet-down", now);
            }
            self.shed.push(Shed {
                id: request.id,
                class: request.class.name,
                arrival_s: request.arrival_s,
                reason: if request.session.is_some() {
                    ShedReason::SessionLost
                } else {
                    ShedReason::ReplicaLost
                },
                retries: 0,
                tenant: request.tenant,
            });
            self.note_session_shed(request);
            return Dispatch::Shed;
        };
        let mut est_service_s = self.cost.request_service_s(&self.system, request);
        // A turn landing anywhere but its resident replica (including
        // every session's first turn) rebuilds the prefix state before it
        // can decode; the debt rides both the admission estimate and the
        // queued entry.
        let mut re_prefill_s = 0.0;
        if self.session_on {
            if let Some(turn) = &request.session {
                if self.sessions.get(&turn.session) != Some(&target) {
                    re_prefill_s = self.cost.session_prefill_s(&self.system, request);
                    est_service_s += re_prefill_s;
                }
            }
        }
        let est_wait_s = self.replicas[target].outstanding_s(&mut self.cost, now);
        // A held request has already aged in the fair queue; its deadline
        // budget shrinks accordingly. The guard keeps the direct path
        // (where now == arrival) float-for-float untouched.
        let mut est_latency_s = est_wait_s + est_service_s;
        if now > request.arrival_s {
            est_latency_s += now - request.arrival_s;
        }
        match cfg.admission.admit(
            &request.class,
            self.replicas[target].queue_depth(),
            est_latency_s,
        ) {
            Ok(()) => {
                let mut pending = Pending::fresh(request.clone(), est_service_s);
                if re_prefill_s > 0.0 {
                    pending.re_prefill_s = re_prefill_s;
                }
                self.replicas[target].enqueue(pending);
                if self.session_on {
                    if let Some(turn) = &request.session {
                        let account = cfg.sessions.as_ref().is_some_and(|p| p.account_state);
                        let hold_s = if account { re_prefill_s } else { 0.0 };
                        self.place_session(turn.session, turn.turn, target, hold_s);
                        if S::ENABLED && re_prefill_s > 0.0 && turn.turn > 0 {
                            let track = TrackId::new(target as u32, Module::Runtime);
                            sink.instant(track, "session-re-prefill", now);
                        }
                    }
                }
                self.touch(target);
                if let Some(bs) = self.breakers.as_mut() {
                    bs[target].on_dispatch();
                }
                // Deadline-bearing admissions arm a hedge timer at the
                // windowed-p99 delay; the check fires only if the request
                // is still in flight then. Session turns never hedge — a
                // copy on a second replica would fork the session's
                // compression state.
                if let Some(hp) = &cfg.overload.hedge {
                    if request.class.deadline_s.is_some() && request.session.is_none() {
                        let fire_s = now + hp.delay_s(&self.lat_window);
                        if self.record {
                            self.hedge_added.push((fire_s, request.id));
                        }
                        push_hedge(
                            &mut self.hedges,
                            HedgeEntry { fire_s, request: request.clone(), est_service_s },
                        );
                    }
                }
                if S::ENABLED {
                    let track = TrackId::new(target as u32, Module::Runtime);
                    sink.instant(track, "enqueue", now);
                    sink.counter(
                        track,
                        "queue_depth",
                        now,
                        self.replicas[target].queue_depth() as f64,
                    );
                }
                Dispatch::Enqueued
            }
            Err(reason) => {
                if hold && reason == ShedReason::QueueFull {
                    return Dispatch::Blocked;
                }
                if S::ENABLED {
                    let track = TrackId::new(target as u32, Module::Runtime);
                    sink.instant(track, "shed", now);
                }
                self.shed.push(Shed {
                    id: request.id,
                    class: request.class.name,
                    arrival_s: request.arrival_s,
                    reason,
                    retries: 0,
                    tenant: request.tenant,
                });
                self.note_session_shed(request);
                Dispatch::Shed
            }
        }
    }

    /// Arrival entry of the tenancy stage: an autoscaler observation of
    /// the state the arrival found, then the quota gate, the fair
    /// queue, and an immediate drain.
    fn tenant_arrival<S: TraceSink>(&mut self, now: f64, sink: &mut S) {
        // Observe *before* admitting the arrival: the sample reflects
        // the backlog this request found, so an idle fleet reads a zero
        // signal (the arrival itself would otherwise pin the signal at
        // `1/active` and scale-down could never trigger).
        self.observe_autoscaler(now, sink);
        let request = self.requests[self.next_arrival - 1].clone();
        let tenant = request.tenant;
        let quota_ok = match self.tenancy.as_mut().expect("tenancy on").buckets.as_mut() {
            Some(buckets) => buckets[tenant as usize].try_take(now, 1.0),
            None => true,
        };
        if !quota_ok {
            if S::ENABLED {
                let track = TrackId::new(tenant, Module::Tenancy);
                sink.instant(track, "quota-shed", now);
            }
            self.shed.push(Shed {
                id: request.id,
                class: request.class.name,
                arrival_s: request.arrival_s,
                reason: ShedReason::QuotaExceeded,
                retries: 0,
                tenant,
            });
            self.note_session_shed(&request);
            return;
        }
        let ts = self.tenancy.as_mut().expect("tenancy on");
        ts.queue.push(tenant, request);
        self.drain_tenancy(now, sink);
    }

    /// Dispatches fair-queue requests in scheduler order until the queue
    /// empties or (Hold backpressure) a dispatch blocks — the blocked
    /// request goes back to the queue head, preserving the schedule.
    fn drain_tenancy<S: TraceSink>(&mut self, now: f64, sink: &mut S) {
        loop {
            let Some((tenant, request)) = self.tenancy.as_mut().and_then(|t| t.queue.pop()) else {
                return;
            };
            let hold = self.tenancy.as_ref().expect("tenancy on").hold;
            match self.dispatch_request(&request, now, hold, sink) {
                Dispatch::Enqueued => continue,
                Dispatch::Shed => {
                    // The shed consumed no fleet time: refund the DRR
                    // quantum so a doomed backlog cannot eat the
                    // tenant's service share.
                    self.tenancy.as_mut().expect("tenancy on").queue.refund(tenant);
                    continue;
                }
                Dispatch::Blocked => {}
            }
            {
                let ts = self.tenancy.as_mut().expect("tenancy on");
                ts.queue.unpop(tenant, request);
                // The backlog counter records *contention* — held work —
                // so a pass-through (never-blocking) configuration emits
                // nothing on the tenancy lane and its trace stays
                // byte-identical to the tenancy-off fleet.
                if S::ENABLED {
                    let backlog = ts.queue.backlog(tenant) as f64;
                    let track = TrackId::new(tenant, Module::Tenancy);
                    sink.counter(track, "tenant_backlog", now, backlog);
                }
                return;
            }
        }
    }

    /// Feeds the autoscaler one queued-work-per-active-replica sample
    /// (front-end backlog plus replica queues) and emits its decision.
    fn observe_autoscaler<S: TraceSink>(&mut self, now: f64, sink: &mut S) {
        if self.tenancy.as_ref().is_none_or(|t| t.scaler.is_none()) {
            return;
        }
        let backlog = self.tenancy.as_ref().map_or(0, |t| t.queue.len());
        let queued: usize = self.replicas.iter().map(|r| r.queue_depth()).sum();
        let scaler = self.tenancy.as_mut().and_then(|t| t.scaler.as_mut()).expect("scaler on");
        let signal = (backlog + queued) as f64 / scaler.active() as f64;
        if let Some(ev) = scaler.observe(now, signal) {
            if S::ENABLED {
                let track = TrackId::new(0, Module::Tenancy);
                let (name, to) = match ev {
                    ScaleEvent::Up { to, .. } => ("scale-up", to),
                    ScaleEvent::Down { to, .. } => ("scale-down", to),
                };
                sink.instant(track, name, now);
                sink.counter(track, "active_replicas", now, to as f64);
            }
        }
    }

    /// Processes `requests[next_arrival]`: routing, admission, hedge
    /// arming, and the brownout depth observation. With tenancy on, the
    /// request passes the quota gate and fair queue first.
    fn handle_arrival<S: TraceSink>(&mut self, sink: &mut S) {
        self.events_processed += 1;
        let cfg = self.cfg;
        let requests = self.requests;
        let request = &requests[self.next_arrival];
        self.next_arrival += 1;
        let now = request.arrival_s;
        if self.tenancy.is_some() {
            self.tenant_arrival(now, sink);
        } else {
            self.dispatch_request(request, now, false, sink);
        }
        // Closed-loop sensing: every arrival feeds each up replica's
        // controller one availability-weighted depth sample, so the
        // sampling cadence tracks offered load and survivors of a partial
        // outage see proportionally inflated depth.
        if let (Some(ctrls), Some(bc)) = (self.controllers.as_mut(), cfg.overload.brownout.as_ref())
        {
            let up_count = self.replicas.iter().filter(|r| r.up).count();
            if up_count > 0 {
                let up_frac = up_count as f64 / self.replicas.len() as f64;
                for (i, ctrl) in ctrls.iter_mut().enumerate() {
                    if !self.replicas[i].up {
                        continue;
                    }
                    let depth = self.replicas[i].queue_depth() as f64 / up_frac;
                    if let Some(tr) = ctrl.observe_depth(depth) {
                        apply_transition(
                            &mut self.replicas,
                            &bc.ladder,
                            i,
                            tr,
                            now,
                            &mut self.transitions_total,
                            sink,
                        );
                    }
                }
            }
        }
    }

    /// Processes `retries[0]`: route the requeue back into a queue, or
    /// consume another attempt and back off again.
    fn handle_retry<S: TraceSink>(&mut self, sink: &mut S) {
        self.events_processed += 1;
        let cfg = self.cfg;
        let entry = self.retries.remove(0);
        let now = entry.retry_s;
        // A later turn of the same session may have shed while this one
        // waited out its backoff; the session is already lost, so placing
        // the requeue would waste fleet time on a dead session.
        if self.session_on {
            if let Some(turn) = &entry.request.session {
                if self.lost_sessions.contains(&turn.session) {
                    self.shed.push(Shed {
                        id: entry.request.id,
                        class: entry.request.class.name,
                        arrival_s: entry.request.arrival_s,
                        reason: ShedReason::SessionLost,
                        retries: entry.attempt,
                        tenant: entry.request.tenant,
                    });
                    self.note_session_shed(&entry.request);
                    return;
                }
            }
        }
        let mask = self.routable_mask(now, sink);
        match cfg.routing.choose(
            &mut self.replicas,
            &mut self.cost,
            now,
            &mut self.rr_cursor,
            mask.as_deref(),
        ) {
            Some(target) => {
                // A requeue was already admitted once; it re-enters the
                // queue directly (no depth shedding) with a remaining-work
                // estimate that charges the fresh weight upload its resume
                // will pay.
                let mut est_service_s =
                    self.cost.remaining_service_s(&self.system, &entry.request, entry.cursor)
                        + if entry.cursor > 0 { self.system.weight_upload_s() } else { 0.0 };
                // A crash-evicted session turn re-prefills on its new
                // replica (its residency died with the crashed one).
                let mut re_prefill_s = 0.0;
                if self.session_on {
                    if let Some(turn) = &entry.request.session {
                        if self.sessions.get(&turn.session) != Some(&target) {
                            re_prefill_s =
                                self.cost.session_prefill_s(&self.system, &entry.request);
                            est_service_s += re_prefill_s;
                        }
                    }
                }
                if S::ENABLED {
                    let track = TrackId::new(target as u32, Module::Runtime);
                    sink.instant(track, "requeue-placed", now);
                }
                let session_turn = entry.request.session;
                self.replicas[target].enqueue(Pending {
                    request: entry.request,
                    est_service_s,
                    resume_cursor: entry.cursor,
                    attempt: entry.attempt,
                    re_prefill_s,
                });
                if self.session_on {
                    if let Some(turn) = &session_turn {
                        let account = cfg.sessions.as_ref().is_some_and(|p| p.account_state);
                        let hold_s = if account { re_prefill_s } else { 0.0 };
                        self.place_session(turn.session, turn.turn, target, hold_s);
                        if S::ENABLED && re_prefill_s > 0.0 && turn.turn > 0 {
                            let track = TrackId::new(target as u32, Module::Runtime);
                            sink.instant(track, "session-re-prefill", now);
                        }
                    }
                }
                self.touch(target);
                if let Some(bs) = self.breakers.as_mut() {
                    bs[target].on_dispatch();
                }
            }
            None => {
                // Still no healthy replica: consume another attempt or
                // give up.
                let attempt = entry.attempt + 1;
                if attempt > cfg.retry.max_attempts {
                    self.shed.push(Shed {
                        id: entry.request.id,
                        class: entry.request.class.name,
                        arrival_s: entry.request.arrival_s,
                        reason: if entry.request.session.is_some() {
                            ShedReason::SessionLost
                        } else {
                            ShedReason::ReplicaLost
                        },
                        retries: entry.attempt,
                        tenant: entry.request.tenant,
                    });
                    self.note_session_shed(&entry.request);
                } else {
                    self.requeues_total += 1;
                    if S::ENABLED {
                        let track = TrackId::new(0, Module::Fault);
                        sink.counter(track, "retries", now, self.requeues_total as f64);
                    }
                    self.queue_retry(RetryEntry {
                        retry_s: now + cfg.retry.backoff(attempt),
                        attempt,
                        cursor: entry.cursor,
                        request: entry.request,
                    });
                }
            }
        }
    }

    /// Processes `hedges[0]`: if the request is still in flight, dispatch
    /// a copy to a second replica (excluding the slow primary's).
    fn handle_hedge<S: TraceSink>(&mut self, sink: &mut S) {
        self.events_processed += 1;
        let cfg = self.cfg;
        let entry = self.hedges.remove(0);
        let now = entry.fire_s;
        let id = entry.request.id;
        // Still in flight? (Not found anywhere = completed, shed, or
        // waiting out a retry backoff — no hedge then.)
        if let Some(primary) = self.replicas.iter().position(|r| r.holds_request(id)) {
            let breaker_mask = self.routable_mask(now, sink);
            // The copy must land on a *different* replica than the one
            // holding the slow primary.
            let mask: Vec<bool> = (0..self.replicas.len())
                .map(|i| i != primary && breaker_mask.as_ref().is_none_or(|m| m[i]))
                .collect();
            if let Some(target) = cfg.routing.choose(
                &mut self.replicas,
                &mut self.cost,
                now,
                &mut self.rr_cursor,
                Some(&mask),
            ) {
                // Hedge copies bypass admission: the request was already
                // admitted once; the copy exists purely to cut its tail.
                self.replicas[target].enqueue(Pending::fresh(entry.request, entry.est_service_s));
                self.touch(target);
                if let Some(bs) = self.breakers.as_mut() {
                    bs[target].on_dispatch();
                }
                self.hedged += 1;
                self.hedged_live.insert(id, primary);
                if S::ENABLED {
                    let htrack = TrackId::new(target as u32, Module::Hedge);
                    sink.instant(htrack, "hedge-dispatch", now);
                }
            }
        }
    }

    /// Executes replica `i`'s next layer step and feeds the resulting
    /// completions back into the overload controllers, breakers, latency
    /// window and hedge cancellation.
    fn handle_step<S: TraceSink>(&mut self, i: usize, sink: &mut S) {
        self.events_processed += 1;
        let cfg = self.cfg;
        let before = self.completions.len();
        let t0 = self.replicas[i].execute_step(
            &cfg.batch,
            &cfg.faults,
            &mut self.cost,
            &mut self.completions,
            sink,
        );
        self.touch(i);
        if self.overload_on {
            for idx in before..self.completions.len() {
                let c = self.completions[idx].clone();
                // Hedge delay sensing: sliding window of completion
                // latencies.
                if let Some(hp) = &cfg.overload.hedge {
                    let lat = c.latency_s();
                    if self.lat_window.len() == hp.latency_window {
                        self.lat_window[self.lat_next % hp.latency_window] = lat;
                    } else {
                        self.lat_window.push(lat);
                    }
                    self.lat_next = (self.lat_next + 1) % hp.latency_window;
                }
                // A completion is breaker evidence of health (a successful
                // half-open probe closes the breaker).
                if let Some(bs) = self.breakers.as_mut() {
                    if let Some(BreakerEvent::Closed { since_s, at_s }) =
                        bs[c.replica].record_success(c.finish_s)
                    {
                        if S::ENABLED {
                            let btrack = TrackId::new(c.replica as u32, Module::Breaker);
                            sink.span(
                                btrack,
                                "half-open",
                                since_s,
                                at_s,
                                SpanClass::Control,
                                false,
                            );
                        }
                    }
                }
                // ... and brownout evidence (deadline outcome).
                if let (Some(ctrls), Some(bc)) =
                    (self.controllers.as_mut(), cfg.overload.brownout.as_ref())
                {
                    if let Some(tr) =
                        ctrls[c.replica].observe_completion(c.deadline_met == Some(false))
                    {
                        apply_transition(
                            &mut self.replicas,
                            &bc.ladder,
                            c.replica,
                            tr,
                            c.finish_s,
                            &mut self.transitions_total,
                            sink,
                        );
                    }
                }
                // First outcome wins: cancel every losing copy (other
                // replicas' queues/actives at their layer boundary, plus
                // any retry backoff entry) the moment the winner completes,
                // so exactly one completion is ever reported per hedged id.
                if let Some(primary) = self.hedged_live.remove(&c.id) {
                    for j in 0..self.replicas.len() {
                        if j == c.replica {
                            continue;
                        }
                        let n = self.replicas[j].cancel_request(c.id);
                        if n > 0 {
                            self.hedge_cancelled += n;
                            self.touch(j);
                            if S::ENABLED {
                                let htrack = TrackId::new(j as u32, Module::Hedge);
                                sink.instant(htrack, "hedge-cancel", c.finish_s);
                            }
                        }
                    }
                    let before_retry = self.retries.len();
                    self.retries.retain(|r| r.request.id != c.id);
                    if self.retries.len() != before_retry && self.record {
                        self.retry_removed.push(c.id);
                    }
                    self.hedge_cancelled += before_retry - self.retries.len();
                    if c.replica != primary {
                        self.hedge_wins += 1;
                        if S::ENABLED {
                            let htrack = TrackId::new(c.replica as u32, Module::Hedge);
                            sink.instant(htrack, "hedge-win", c.finish_s);
                        }
                    }
                }
            }
        }
        // A session's final turn retiring releases the replica's resident
        // compression state (and the occupancy hold that came with it).
        if self.session_on {
            for idx in before..self.completions.len() {
                if let Some(turn) = self.completions[idx].session {
                    if turn.last {
                        if let Some(r) = self.sessions.remove(&turn.session) {
                            self.replicas[r].resident_sessions.retain(|(s, _)| *s != turn.session);
                        }
                    }
                }
            }
        }
        // Completions are the detector's only sensory input: a real load
        // balancer sees responses, not replica internals.
        if let Some(d) = self.detector.as_mut() {
            for idx in before..self.completions.len() {
                let (replica, finish_s) =
                    (self.completions[idx].replica, self.completions[idx].finish_s);
                d.observe(replica, finish_s);
            }
        }
        // The step moved queued work into the batch, freeing queue
        // space: held tenancy work can dispatch now. `t0` is the step's
        // start — the instant this event occupies on the shared timeline.
        if self.tenancy.is_some() {
            self.drain_tenancy(t0, sink);
        }
    }

    /// End-of-run bookkeeping: close open outages and breaker intervals,
    /// assemble metrics.
    fn finish<S: TraceSink>(mut self, sink: &mut S) -> FleetReport {
        // Requests still parked in the fair queue when the run ends (the
        // fleet was down, or warming capacity never arrived): shed as
        // ReplicaLost so the conservation invariant holds.
        while let Some((tenant, request)) = self.tenancy.as_mut().and_then(|t| t.queue.pop()) {
            self.shed.push(Shed {
                id: request.id,
                class: request.class.name,
                arrival_s: request.arrival_s,
                reason: if request.session.is_some() {
                    ShedReason::SessionLost
                } else {
                    ShedReason::ReplicaLost
                },
                retries: 0,
                tenant,
            });
            self.note_session_shed(&request);
        }
        // Close the books on replicas still down at the end of the run:
        // their open outage extends to the fleet makespan (or the crash
        // instant if nothing completed after it).
        let makespan_s = self.completions.iter().map(|c| c.finish_s).fold(0.0, f64::max);
        for r in &mut self.replicas {
            if !r.up {
                let end = makespan_s.max(r.down_since);
                r.down_s += end - r.down_since;
                if S::ENABLED {
                    let track = TrackId::new(r.index as u32, Module::Fault);
                    sink.span(track, "outage", r.down_since, end, SpanClass::Fault, true);
                }
            }
        }

        // Likewise for quarantines still in force: their span extends to
        // the makespan.
        if let Some(d) = self.detector.as_ref() {
            d.close_spans(makespan_s, sink);
        }

        // Likewise for breakers still open (or probing) at the end of the
        // run: their blocking interval extends to the makespan.
        if S::ENABLED {
            if let Some(bs) = self.breakers.as_ref() {
                for (i, b) in bs.iter().enumerate() {
                    let track = TrackId::new(i as u32, Module::Breaker);
                    match b.state() {
                        BreakerState::Open { since_s, .. } => {
                            sink.span(
                                track,
                                "open",
                                since_s,
                                makespan_s.max(since_s),
                                SpanClass::Control,
                                true,
                            );
                        }
                        BreakerState::HalfOpen { since_s, .. } => {
                            sink.span(
                                track,
                                "half-open",
                                since_s,
                                makespan_s.max(since_s),
                                SpanClass::Control,
                                true,
                            );
                        }
                        BreakerState::Closed { .. } => {}
                    }
                }
            }
        }

        let busy: Vec<f64> = self.replicas.iter().map(|r| r.busy_s).collect();
        let down: Vec<f64> = self.replicas.iter().map(|r| r.down_s).collect();
        let mut metrics = FleetMetrics::from_outcomes(
            self.requests.len(),
            &self.completions,
            &self.shed,
            &busy,
            &down,
        );
        metrics.overload.hedged = self.hedged;
        metrics.overload.hedge_wins = self.hedge_wins;
        metrics.overload.hedge_cancelled = self.hedge_cancelled;
        metrics.overload.brownout_transitions = self.transitions_total;
        metrics.overload.per_replica_brownout_s =
            self.replicas.iter().map(|r| r.brownout_s).collect();
        metrics.overload.breaker_opens =
            self.breakers.as_ref().map_or(0, |bs| bs.iter().map(|b| b.opens).sum());
        if let Some(tcfg) = self.cfg.tenancy.as_ref() {
            let mut outcomes: Vec<TenantOutcome> =
                (0..tcfg.tenants).map(TenantOutcome::new).collect();
            for r in self.requests {
                outcomes[r.tenant as usize].offered += 1;
            }
            for s in &self.shed {
                let o = &mut outcomes[s.tenant as usize];
                o.shed += 1;
                if s.reason == ShedReason::QuotaExceeded {
                    o.quota_shed += 1;
                }
            }
            for c in &self.completions {
                let o = &mut outcomes[c.tenant as usize];
                o.latencies_s.push(c.latency_s());
                if c.deadline_met.unwrap_or(true) {
                    o.good += 1;
                }
            }
            let mut stats = TenancyStats::from_outcomes(&outcomes, metrics.makespan_s);
            let scaler = self.tenancy.as_ref().and_then(|t| t.scaler.as_ref());
            stats.scale_ups = scaler.map_or(0, |s| s.scale_ups);
            stats.scale_downs = scaler.map_or(0, |s| s.scale_downs);
            stats.final_active = scaler.map_or(self.cfg.replicas, |s| s.active());
            metrics.tenancy = Some(stats);
        }
        metrics.detector = self.detector.as_ref().map(|d| d.stats(&self.cfg.faults));
        if self.cfg.sessions.is_some() {
            let mut ids: BTreeSet<u64> = BTreeSet::new();
            for r in self.requests {
                if let Some(t) = &r.session {
                    ids.insert(t.session);
                }
            }
            let mut itls: Vec<f64> = Vec::new();
            let mut turns_completed = 0usize;
            for c in &self.completions {
                if let Some(t) = &c.session {
                    turns_completed += 1;
                    itls.push(c.latency_s() / t.decode_tokens as f64);
                }
            }
            metrics.sessions = Some(SessionStats::new(
                ids.len(),
                turns_completed,
                self.session_turns_shed,
                self.lost_sessions.len(),
                self.re_prefills,
                &itls,
            ));
        }
        FleetReport {
            metrics,
            completions: self.completions,
            shed: self.shed,
            events_processed: self.events_processed,
            event_queue_samples: Vec::new(),
        }
    }
}

/// Validates preconditions, builds the engine state and dispatches to
/// the configured driver.
pub(crate) fn run<S: TraceSink>(
    cfg: &FleetConfig,
    requests: &[ServeRequest],
    sink: &mut S,
) -> FleetReport {
    assert!(cfg.replicas > 0, "at least one replica");
    assert!(!requests.is_empty(), "at least one request");
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival time"
    );
    cfg.faults.validate(cfg.replicas);
    if cfg.sessions.is_none() {
        assert!(
            requests.iter().all(|r| r.session.is_none()),
            "session-tagged requests require a session policy (FleetConfig::sessions)"
        );
    }
    if let Some(d) = &cfg.detector {
        d.validate();
    }
    if let Some(t) = &cfg.tenancy {
        t.validate(cfg.replicas);
        assert!(
            requests.iter().all(|r| r.tenant < t.tenants),
            "request tenant id out of range for the tenancy configuration"
        );
    }

    let state = EngineState::new(cfg, requests);
    match cfg.engine {
        FleetEngine::StepGranular => run_step_granular(state, sink),
        FleetEngine::EventDriven => run_event_driven(state, sink),
    }
}

/// The original driver: scan all replicas for the earliest step every
/// iteration and cascade through the due-conditions. The cascade's `<=`
/// comparisons define the coincident-instant tie order the event driver
/// reproduces through class ranks.
fn run_step_granular<S: TraceSink>(mut state: EngineState<'_>, sink: &mut S) -> FleetReport {
    loop {
        // Earliest replica step, ties to the lowest index.
        let next_step: Option<(f64, usize)> = state
            .replicas
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next_step_time().map(|t| (t, i)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite step times").then(a.1.cmp(&b.1)));

        // Tie order at one instant: fault < arrival < retry < hedge <
        // step. With an empty fault plan the fault and retry sources never
        // fire, and with hedging off the hedge queue stays empty, so the
        // conditions reduce to the plain fault-free expressions.
        let fault_due = state.next_fault < state.fault_events.len() && {
            let tf = state.fault_events[state.next_fault].t_s;
            next_step.is_none_or(|(t, _)| tf <= t)
                && (state.next_arrival >= state.requests.len()
                    || tf <= state.requests[state.next_arrival].arrival_s)
                && state.retries.first().is_none_or(|r| tf <= r.retry_s)
                && state.hedges.first().is_none_or(|h| tf <= h.fire_s)
        };

        let arrival_due = !fault_due
            && state.next_arrival < state.requests.len()
            && next_step.is_none_or(|(t, _)| state.requests[state.next_arrival].arrival_s <= t)
            && state
                .retries
                .first()
                .is_none_or(|r| state.requests[state.next_arrival].arrival_s <= r.retry_s)
            && state
                .hedges
                .first()
                .is_none_or(|h| state.requests[state.next_arrival].arrival_s <= h.fire_s);

        let retry_due = !fault_due
            && !arrival_due
            && state.retries.first().is_some_and(|r| {
                next_step.is_none_or(|(t, _)| r.retry_s <= t)
                    && state.hedges.first().is_none_or(|h| r.retry_s <= h.fire_s)
            });

        let hedge_due = !fault_due
            && !arrival_due
            && !retry_due
            && state.hedges.first().is_some_and(|h| next_step.is_none_or(|(t, _)| h.fire_s <= t));

        if fault_due {
            state.handle_fault(sink);
        } else if arrival_due {
            state.handle_arrival(sink);
        } else if retry_due {
            state.handle_retry(sink);
        } else if hedge_due {
            state.handle_hedge(sink);
        } else if let Some((_, i)) = next_step {
            state.handle_step(i, sink);
        } else {
            break;
        }
    }
    state.finish(sink)
}

/// Pending-event cadence of the occupancy samples (every 64th event).
const QUEUE_SAMPLE_EVERY: u64 = 64;

/// The calendar-queue driver. The queue holds: the next arrival and the
/// next fault (chained — scheduled one at a time, which guarantees
/// index order at coincident timestamps), at most one step event per
/// replica (rescheduled whenever a handler touches the replica), and one
/// event per pending retry backoff / hedge timer (retries carry
/// cancellation tokens so hedge-winner completions can remove them).
///
/// Handlers are shared with the step-granular driver, so the float
/// stream — and therefore the report and any emitted trace — is bitwise
/// identical; only the *cost* of finding the next event changes, from
/// O(replicas) to O(1) amortized.
fn run_event_driven<S: TraceSink>(mut state: EngineState<'_>, sink: &mut S) -> FleetReport {
    state.record = true;
    let mut el: EventLoop<Ev> = EventLoop::new();
    // Per-replica scheduled step: the exact time it was scheduled at plus
    // its cancellation token (times compare bitwise — both sides computed
    // by the same `next_step_time`).
    let mut step_events: Vec<Option<(f64, EventId)>> = vec![None; state.replicas.len()];
    // Pending retry backoffs: request id → cancellation token. Lookup
    // only, never iterated — determinism-safe.
    let mut retry_ids: HashMap<u64, EventId> = HashMap::new();
    let mut samples: Vec<(f64, usize)> = Vec::new();

    if !state.fault_events.is_empty() {
        el.schedule(state.fault_events[0].t_s, CLASS_FAULT, 0, Ev::Fault);
    }
    el.schedule(state.requests[0].arrival_s, CLASS_ARRIVAL, 0, Ev::Arrival);

    while let Some((key, ev)) = el.pop() {
        match ev {
            Ev::Fault => {
                state.handle_fault(sink);
                if state.next_fault < state.fault_events.len() {
                    el.schedule(
                        state.fault_events[state.next_fault].t_s,
                        CLASS_FAULT,
                        state.next_fault as u64,
                        Ev::Fault,
                    );
                }
            }
            Ev::Arrival => {
                state.handle_arrival(sink);
                if state.next_arrival < state.requests.len() {
                    el.schedule(
                        state.requests[state.next_arrival].arrival_s,
                        CLASS_ARRIVAL,
                        state.next_arrival as u64,
                        Ev::Arrival,
                    );
                }
            }
            Ev::Retry => {
                retry_ids.remove(&key.tie);
                debug_assert!(
                    state
                        .retries
                        .first()
                        .is_some_and(|r| r.retry_s == key.t && r.request.id == key.tie),
                    "retry event out of sync with the backoff queue"
                );
                state.handle_retry(sink);
            }
            Ev::Hedge => {
                debug_assert!(
                    state
                        .hedges
                        .first()
                        .is_some_and(|h| h.fire_s == key.t && h.request.id == key.tie),
                    "hedge event out of sync with the timer queue"
                );
                state.handle_hedge(sink);
            }
            Ev::Step => {
                let i = key.tie as usize;
                step_events[i] = None;
                debug_assert_eq!(
                    state.replicas[i].next_step_time(),
                    Some(key.t),
                    "step event out of sync with replica {i}"
                );
                state.handle_step(i, sink);
            }
        }

        // Reconcile the queue with what the handler changed: new retry
        // backoffs, cancelled retries (hedge winners), new hedge timers,
        // and the step times of every touched replica.
        for (t, id) in state.retry_added.drain(..) {
            retry_ids.insert(id, el.schedule(t, CLASS_RETRY, id, Ev::Retry));
        }
        for id in state.retry_removed.drain(..) {
            let eid = retry_ids.remove(&id).expect("cancelled retry was scheduled");
            el.cancel(eid).expect("cancelled retry token was live");
        }
        for (t, id) in state.hedge_added.drain(..) {
            el.schedule(t, CLASS_HEDGE, id, Ev::Hedge);
        }
        state.touched.sort_unstable();
        state.touched.dedup();
        for i in std::mem::take(&mut state.touched) {
            let want = state.replicas[i].next_step_time();
            let have = step_events[i].map(|(t, _)| t);
            if want != have {
                if let Some((_, eid)) = step_events[i].take() {
                    el.cancel(eid);
                }
                if let Some(t) = want {
                    let eid = el.schedule(t, CLASS_STEP, i as u64, Ev::Step);
                    step_events[i] = Some((t, eid));
                }
            }
        }

        if state.events_processed % QUEUE_SAMPLE_EVERY == 1 {
            samples.push((key.t, el.len()));
        }
    }

    let mut report = state.finish(sink);
    report.event_queue_samples = samples;
    report
}
