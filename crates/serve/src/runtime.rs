//! The discrete-event fleet runtime.
//!
//! The simulation interleaves four event sources in time order: fault
//! transitions (replica crashes and recoveries from the
//! [`FaultPlan`]), request arrivals (routed and admission-checked the
//! instant they occur), retry requeues (crash-evicted requests re-entering
//! routing after their backoff), and per-replica layer steps (each replica
//! dispatches its active batch one layer at a time; see
//! [`crate::replica`]). Ties are deterministic: at one instant a fault is
//! processed before an arrival, an arrival before a retry — so it can
//! still join a coincident step's batch — and coincident replica steps
//! run in replica index order. All state evolution is pure `f64`
//! arithmetic over the trace, so a fixed trace, configuration and fault
//! plan always reproduce the same report — and with
//! [`FaultPlan::none`] the fault machinery stays fully dormant, keeping
//! reports bitwise identical to the fault-free runtime (pinned by test).

use cta_sim::CtaSystem;
use cta_telemetry::{Module, NullSink, SpanClass, TraceSink, TrackId};

use crate::replica::{Completion, Pending, Replica};
use crate::{
    AdmissionPolicy, BatchPolicy, CostModel, FaultPlan, FleetMetrics, RetryPolicy, RoutingPolicy,
    ServeRequest, ShedReason,
};

/// A request rejected by admission control or orphaned by a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct Shed {
    /// The request id.
    pub id: u64,
    /// Class name of the request.
    pub class: &'static str,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Why it was shed.
    pub reason: ShedReason,
    /// Crash-eviction requeues the request survived before being shed
    /// (0 for arrival-time sheds).
    pub retries: u32,
}

/// Full fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-replica system (all replicas share one configuration, so task
    /// costs are memoised fleet-wide).
    pub system: cta_sim::SystemConfig,
    /// Number of independent replicas.
    pub replicas: usize,
    /// Arrival routing policy.
    pub routing: RoutingPolicy,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Continuous-batching width.
    pub batch: BatchPolicy,
    /// Deterministic fault schedule ([`FaultPlan::none`] = healthy run).
    pub faults: FaultPlan,
    /// Retry budget for requests evicted by a crash.
    pub retry: RetryPolicy,
}

impl FleetConfig {
    /// The compatibility configuration: one replica, round-robin (trivial)
    /// routing, batching off, admit everything, no faults. In this
    /// configuration [`simulate_fleet`] reproduces
    /// `cta_sim::simulate_serving` exactly.
    pub fn single_fifo(system: cta_sim::SystemConfig) -> Self {
        Self {
            system,
            replicas: 1,
            routing: RoutingPolicy::RoundRobin,
            admission: AdmissionPolicy::admit_all(),
            batch: BatchPolicy::off(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::standard(),
        }
    }

    /// A sharded fleet at the given width with sensible production
    /// defaults: least-outstanding-work routing, bounded queues, batching
    /// up to 4 requests.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn sharded(system: cta_sim::SystemConfig, replicas: usize) -> Self {
        assert!(replicas > 0, "at least one replica");
        Self {
            system,
            replicas,
            routing: RoutingPolicy::LeastOutstandingWork,
            admission: AdmissionPolicy::bounded(64),
            batch: BatchPolicy::up_to(4),
            faults: FaultPlan::none(),
            retry: RetryPolicy::standard(),
        }
    }
}

/// A crash-evicted request waiting out its backoff before re-entering
/// routing.
#[derive(Debug, Clone)]
struct RetryEntry {
    /// When the requeue fires, seconds.
    retry_s: f64,
    /// Requeue attempts consumed (this entry is attempt number `attempt`).
    attempt: u32,
    /// Layer to resume from.
    cursor: usize,
    request: ServeRequest,
}

/// Inserts keeping (retry_s asc, id asc) order.
fn push_retry(retries: &mut Vec<RetryEntry>, entry: RetryEntry) {
    let pos = retries
        .binary_search_by(|probe| {
            probe
                .retry_s
                .partial_cmp(&entry.retry_s)
                .expect("finite retry times")
                .then(probe.request.id.cmp(&entry.request.id))
        })
        .unwrap_or_else(|e| e);
    retries.insert(pos, entry);
}

/// Everything a fleet simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Aggregate metrics.
    pub metrics: FleetMetrics,
    /// Every completion, in completion order.
    pub completions: Vec<Completion>,
    /// Every shed request, in arrival order.
    pub shed: Vec<Shed>,
}

/// Plays `requests` (sorted by arrival) through the fleet.
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet(cfg: &FleetConfig, requests: &[ServeRequest]) -> FleetReport {
    simulate_fleet_traced(cfg, requests, &mut NullSink)
}

/// [`simulate_fleet`] with telemetry: every replica's layer steps, host
/// transfers, request lifecycle intervals and queue-depth counters are
/// emitted to `sink`.
///
/// The sink is generic over [`TraceSink`], and instrumentation is guarded
/// by its `ENABLED` constant, so with [`NullSink`] this *is*
/// [`simulate_fleet`] — same instructions, bitwise-identical report (the
/// determinism-guard integration test pins this).
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet_traced<S: TraceSink>(
    cfg: &FleetConfig,
    requests: &[ServeRequest],
    sink: &mut S,
) -> FleetReport {
    assert!(cfg.replicas > 0, "at least one replica");
    assert!(!requests.is_empty(), "at least one request");
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival time"
    );
    cfg.faults.validate(cfg.replicas);

    let system = CtaSystem::new(cfg.system);
    let mut replicas: Vec<Replica> =
        (0..cfg.replicas).map(|i| Replica::new(i, system.clone())).collect();
    let mut cost = CostModel::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
    let mut shed: Vec<Shed> = Vec::new();
    let mut rr_cursor = 0usize;
    let mut next_arrival = 0usize;
    let fault_events = cfg.faults.timeline();
    let mut next_fault = 0usize;
    let mut retries: Vec<RetryEntry> = Vec::new();
    let mut requeues_total = 0usize;

    loop {
        // Earliest replica step, ties to the lowest index.
        let next_step: Option<(f64, usize)> = replicas
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next_step_time().map(|t| (t, i)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite step times").then(a.1.cmp(&b.1)));

        // Tie order at one instant: fault < arrival < retry < step. With
        // an empty fault plan the fault and retry sources never fire and
        // the arrival condition reduces to the fault-free expression.
        let fault_due = next_fault < fault_events.len() && {
            let tf = fault_events[next_fault].t_s;
            next_step.is_none_or(|(t, _)| tf <= t)
                && (next_arrival >= requests.len() || tf <= requests[next_arrival].arrival_s)
                && retries.first().is_none_or(|r| tf <= r.retry_s)
        };

        let arrival_due = !fault_due
            && next_arrival < requests.len()
            && next_step.is_none_or(|(t, _)| requests[next_arrival].arrival_s <= t)
            && retries.first().is_none_or(|r| requests[next_arrival].arrival_s <= r.retry_s);

        let retry_due = !fault_due
            && !arrival_due
            && retries.first().is_some_and(|r| next_step.is_none_or(|(t, _)| r.retry_s <= t));

        if fault_due {
            let ev = fault_events[next_fault];
            next_fault += 1;
            let track = TrackId::new(ev.replica as u32, Module::Fault);
            if ev.up {
                let since = replicas[ev.replica].down_since;
                replicas[ev.replica].recover(ev.t_s);
                if S::ENABLED {
                    sink.span(track, "outage", since, ev.t_s, SpanClass::Fault, true);
                    sink.instant(track, "replica-up", ev.t_s);
                }
            } else {
                let orphans = replicas[ev.replica].crash(ev.t_s);
                if S::ENABLED {
                    sink.instant(track, "replica-down", ev.t_s);
                }
                for p in orphans {
                    let attempt = p.attempt + 1;
                    if attempt > cfg.retry.max_attempts {
                        shed.push(Shed {
                            id: p.request.id,
                            class: p.request.class.name,
                            arrival_s: p.request.arrival_s,
                            reason: ShedReason::ReplicaLost,
                            retries: p.attempt,
                        });
                        continue;
                    }
                    let retry_s = ev.t_s + cfg.retry.backoff(attempt);
                    // Deadline-aware requeue: if even an unobstructed
                    // resume cannot meet the SLO, shed now instead of
                    // burning the budget.
                    if cfg.admission.enforce_deadlines {
                        if let Some(d) = p.request.class.deadline_s {
                            let remaining =
                                cost.remaining_service_s(&system, &p.request, p.resume_cursor)
                                    + if p.resume_cursor > 0 {
                                        system.weight_upload_s()
                                    } else {
                                        0.0
                                    };
                            if retry_s + remaining > p.request.arrival_s + d {
                                shed.push(Shed {
                                    id: p.request.id,
                                    class: p.request.class.name,
                                    arrival_s: p.request.arrival_s,
                                    reason: ShedReason::ReplicaLost,
                                    retries: p.attempt,
                                });
                                continue;
                            }
                        }
                    }
                    requeues_total += 1;
                    if S::ENABLED {
                        sink.instant(track, "requeue", ev.t_s);
                        sink.counter(track, "retries", ev.t_s, requeues_total as f64);
                    }
                    push_retry(
                        &mut retries,
                        RetryEntry {
                            retry_s,
                            attempt,
                            cursor: p.resume_cursor,
                            request: p.request,
                        },
                    );
                }
            }
        } else if arrival_due {
            let request = &requests[next_arrival];
            next_arrival += 1;
            let now = request.arrival_s;
            let Some(target) = cfg.routing.choose(&mut replicas, &mut cost, now, &mut rr_cursor)
            else {
                // The whole fleet is down: nothing can take the request.
                if S::ENABLED {
                    let track = TrackId::new(0, Module::Fault);
                    sink.instant(track, "shed-fleet-down", now);
                }
                shed.push(Shed {
                    id: request.id,
                    class: request.class.name,
                    arrival_s: now,
                    reason: ShedReason::ReplicaLost,
                    retries: 0,
                });
                continue;
            };
            let est_service_s = cost.request_service_s(&system, request);
            let est_wait_s = replicas[target].outstanding_s(&mut cost, now);
            match cfg.admission.admit(
                &request.class,
                replicas[target].queue_depth(),
                est_wait_s + est_service_s,
            ) {
                Ok(()) => {
                    replicas[target].enqueue(Pending::fresh(request.clone(), est_service_s));
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "enqueue", now);
                        sink.counter(
                            track,
                            "queue_depth",
                            now,
                            replicas[target].queue_depth() as f64,
                        );
                    }
                }
                Err(reason) => {
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "shed", now);
                    }
                    shed.push(Shed {
                        id: request.id,
                        class: request.class.name,
                        arrival_s: now,
                        reason,
                        retries: 0,
                    });
                }
            }
        } else if retry_due {
            let entry = retries.remove(0);
            let now = entry.retry_s;
            match cfg.routing.choose(&mut replicas, &mut cost, now, &mut rr_cursor) {
                Some(target) => {
                    // A requeue was already admitted once; it re-enters the
                    // queue directly (no depth shedding) with a remaining-
                    // work estimate that charges the fresh weight upload
                    // its resume will pay.
                    let est_service_s =
                        cost.remaining_service_s(&system, &entry.request, entry.cursor)
                            + if entry.cursor > 0 { system.weight_upload_s() } else { 0.0 };
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "requeue-placed", now);
                    }
                    replicas[target].enqueue(Pending {
                        request: entry.request,
                        est_service_s,
                        resume_cursor: entry.cursor,
                        attempt: entry.attempt,
                    });
                }
                None => {
                    // Still no healthy replica: consume another attempt or
                    // give up.
                    let attempt = entry.attempt + 1;
                    if attempt > cfg.retry.max_attempts {
                        shed.push(Shed {
                            id: entry.request.id,
                            class: entry.request.class.name,
                            arrival_s: entry.request.arrival_s,
                            reason: ShedReason::ReplicaLost,
                            retries: entry.attempt,
                        });
                    } else {
                        requeues_total += 1;
                        if S::ENABLED {
                            let track = TrackId::new(0, Module::Fault);
                            sink.counter(track, "retries", now, requeues_total as f64);
                        }
                        push_retry(
                            &mut retries,
                            RetryEntry {
                                retry_s: now + cfg.retry.backoff(attempt),
                                attempt,
                                cursor: entry.cursor,
                                request: entry.request,
                            },
                        );
                    }
                }
            }
        } else if let Some((_, i)) = next_step {
            replicas[i].execute_step(&cfg.batch, &cfg.faults, &mut cost, &mut completions, sink);
        } else {
            break;
        }
    }

    // Close the books on replicas still down at the end of the run: their
    // open outage extends to the fleet makespan (or the crash instant if
    // nothing completed after it).
    let makespan_s = completions.iter().map(|c| c.finish_s).fold(0.0, f64::max);
    for r in &mut replicas {
        if !r.up {
            let end = makespan_s.max(r.down_since);
            r.down_s += end - r.down_since;
            if S::ENABLED {
                let track = TrackId::new(r.index as u32, Module::Fault);
                sink.span(track, "outage", r.down_since, end, SpanClass::Fault, true);
            }
        }
    }

    let busy: Vec<f64> = replicas.iter().map(|r| r.busy_s).collect();
    let down: Vec<f64> = replicas.iter().map(|r| r.down_s).collect();
    let metrics = FleetMetrics::from_outcomes(requests.len(), &completions, &shed, &busy, &down);
    FleetReport { metrics, completions, shed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::{AttentionTask, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn trace(n: usize, gap_s: f64) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::uniform(
                    i as u64,
                    i as f64 * gap_s,
                    QosClass::standard(),
                    task(),
                    2,
                    4,
                )
            })
            .collect()
    }

    #[test]
    fn conservation_holds() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 3);
        let report = simulate_fleet(&cfg, &trace(40, 1e-5));
        assert_eq!(report.metrics.completed + report.metrics.shed, 40);
        assert_eq!(report.completions.len() + report.shed.len(), 40);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_load() {
        let requests = trace(60, 1e-5); // heavy burst
        let one = simulate_fleet(&FleetConfig::single_fifo(SystemConfig::paper()), &requests);
        let mut cfg4 = FleetConfig::single_fifo(SystemConfig::paper());
        cfg4.replicas = 4;
        cfg4.routing = RoutingPolicy::JoinShortestQueue;
        let four = simulate_fleet(&cfg4, &requests);
        let p99_1 = one.metrics.latency.as_ref().expect("completions").p99_s;
        let p99_4 = four.metrics.latency.as_ref().expect("completions").p99_s;
        assert!(p99_4 < p99_1 / 2.0, "4 replicas p99 {p99_4} vs 1 replica {p99_1}");
    }

    #[test]
    fn deadline_shedding_caps_tail_and_reports_shed() {
        let mut requests = trace(50, 1e-5);
        for r in &mut requests {
            r.class = QosClass { name: "tight", priority: 100, deadline_s: Some(5e-4) };
        }
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission.enforce_deadlines = true;
        let report = simulate_fleet(&cfg, &requests);
        assert!(report.metrics.shed > 0, "overload with tight deadline must shed");
        // Everything that did complete met the deadline (admission only
        // admits meetable work, and estimates are solo lower bounds that
        // are exact when batching is off and queue estimates are exact).
        for c in &report.completions {
            assert_eq!(c.deadline_met, Some(true), "completion {} missed", c.id);
        }
    }

    #[test]
    fn queue_depth_shedding_triggers_under_burst() {
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission = AdmissionPolicy::bounded(2);
        let report = simulate_fleet(&cfg, &trace(30, 1e-6));
        assert!(report.metrics.shed > 0);
        assert!(report.shed.iter().all(|s| s.reason == ShedReason::QueueFull));
    }

    #[test]
    fn interactive_class_overtakes_batch_backlog() {
        // 10 batch requests arrive at t=0; an interactive one arrives
        // just after. With priorities it should complete far earlier than
        // the batch tail.
        let mut requests: Vec<ServeRequest> = (0..10)
            .map(|i| ServeRequest::uniform(i, 0.0, QosClass::batch(), task(), 2, 4))
            .collect();
        requests.push(ServeRequest::uniform(10, 1e-6, QosClass::interactive(10.0), task(), 2, 4));
        requests.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let report = simulate_fleet(&cfg, &requests);
        let finish =
            |id: u64| report.completions.iter().find(|c| c.id == id).expect("completed").finish_s;
        let batch_last = (0..10).map(finish).fold(0.0, f64::max);
        assert!(finish(10) < batch_last, "interactive must not wait out the batch backlog");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 2);
        let requests = trace(25, 1e-4);
        let a = simulate_fleet(&cfg, &requests);
        let b = simulate_fleet(&cfg, &requests);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_rejected() {
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 1.0, QosClass::standard(), task(), 1, 1);
        let b = ServeRequest::uniform(1, 0.0, QosClass::standard(), task(), 1, 1);
        let _ = simulate_fleet(&cfg, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn nan_arrival_rejected_up_front_rather_than_livelocking() {
        // A NaN timestamp defeats every `<=` the event loop orders by;
        // the sortedness precondition must reject it before the loop
        // starts (NaN makes the windows comparison false).
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 1, 1);
        let mut b = ServeRequest::uniform(1, 1.0, QosClass::standard(), task(), 1, 1);
        b.arrival_s = f64::NAN;
        let _ = simulate_fleet(&cfg, &[a, b]);
    }
}
