//! The discrete-event fleet runtime.
//!
//! The simulation interleaves five event sources in time order: fault
//! transitions (replica crashes and recoveries from the
//! [`FaultPlan`]), request arrivals (routed and admission-checked the
//! instant they occur), retry requeues (crash-evicted requests re-entering
//! routing after their backoff), hedge timers (deadline-bearing requests
//! duplicating to a second replica after the windowed-p99 delay; see
//! [`crate::OverloadControl`]), and per-replica layer steps (each replica
//! dispatches its active batch one layer at a time; see
//! [`crate::replica`]). Ties are deterministic: at one instant a fault is
//! processed before an arrival, an arrival before a retry — so it can
//! still join a coincident step's batch — a retry before a hedge, and
//! coincident replica steps run in replica index order. All state
//! evolution is pure `f64` arithmetic over the trace, so a fixed trace,
//! configuration and fault plan always reproduce the same report — and
//! with [`FaultPlan::none`] the fault machinery stays fully dormant and
//! with [`OverloadControl::off`] the brownout/breaker/hedge machinery
//! stays fully dormant, keeping reports bitwise identical to the plain
//! runtime (both pinned by test).

use std::collections::HashMap;

use cta_sim::CtaSystem;
use cta_telemetry::{Module, NullSink, SpanClass, TraceSink, TrackId};

use crate::overload::{BreakerEvent, BreakerState, CircuitBreaker, Transition};
use crate::replica::{Completion, Pending, Replica};
use crate::{
    AdmissionPolicy, BatchPolicy, BrownoutController, BrownoutLadder, CostModel, FaultPlan,
    FleetMetrics, OverloadControl, RetryPolicy, RoutingPolicy, ServeRequest, ShedReason,
};

/// A request rejected by admission control or orphaned by a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct Shed {
    /// The request id.
    pub id: u64,
    /// Class name of the request.
    pub class: &'static str,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Why it was shed.
    pub reason: ShedReason,
    /// Crash-eviction requeues the request survived before being shed
    /// (0 for arrival-time sheds).
    pub retries: u32,
}

/// Full fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-replica system (all replicas share one configuration, so task
    /// costs are memoised fleet-wide).
    pub system: cta_sim::SystemConfig,
    /// Number of independent replicas.
    pub replicas: usize,
    /// Arrival routing policy.
    pub routing: RoutingPolicy,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Continuous-batching width.
    pub batch: BatchPolicy,
    /// Deterministic fault schedule ([`FaultPlan::none`] = healthy run).
    pub faults: FaultPlan,
    /// Retry budget for requests evicted by a crash.
    pub retry: RetryPolicy,
    /// Closed-loop overload control ([`OverloadControl::off`] = the plain
    /// fleet, bitwise).
    pub overload: OverloadControl,
}

impl FleetConfig {
    /// The compatibility configuration: one replica, round-robin (trivial)
    /// routing, batching off, admit everything, no faults. In this
    /// configuration [`simulate_fleet`] reproduces
    /// `cta_sim::simulate_serving` exactly.
    pub fn single_fifo(system: cta_sim::SystemConfig) -> Self {
        Self {
            system,
            replicas: 1,
            routing: RoutingPolicy::RoundRobin,
            admission: AdmissionPolicy::admit_all(),
            batch: BatchPolicy::off(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::standard(),
            overload: OverloadControl::off(),
        }
    }

    /// A sharded fleet at the given width with sensible production
    /// defaults: least-outstanding-work routing, bounded queues, batching
    /// up to 4 requests.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn sharded(system: cta_sim::SystemConfig, replicas: usize) -> Self {
        assert!(replicas > 0, "at least one replica");
        Self {
            system,
            replicas,
            routing: RoutingPolicy::LeastOutstandingWork,
            admission: AdmissionPolicy::bounded(64),
            batch: BatchPolicy::up_to(4),
            faults: FaultPlan::none(),
            retry: RetryPolicy::standard(),
            overload: OverloadControl::off(),
        }
    }
}

/// A crash-evicted request waiting out its backoff before re-entering
/// routing.
#[derive(Debug, Clone)]
struct RetryEntry {
    /// When the requeue fires, seconds.
    retry_s: f64,
    /// Requeue attempts consumed (this entry is attempt number `attempt`).
    attempt: u32,
    /// Layer to resume from.
    cursor: usize,
    request: ServeRequest,
}

/// Inserts keeping (retry_s asc, id asc) order.
fn push_retry(retries: &mut Vec<RetryEntry>, entry: RetryEntry) {
    let pos = retries
        .binary_search_by(|probe| {
            probe
                .retry_s
                .partial_cmp(&entry.retry_s)
                .expect("finite retry times")
                .then(probe.request.id.cmp(&entry.request.id))
        })
        .unwrap_or_else(|e| e);
    retries.insert(pos, entry);
}

/// A scheduled hedge check: if the request is still in flight when the
/// timer fires, a copy is dispatched to a second replica.
#[derive(Debug, Clone)]
struct HedgeEntry {
    /// When the check fires, seconds.
    fire_s: f64,
    /// Snapshot of the request (the copy restarts from layer 0).
    request: ServeRequest,
    /// Solo service estimate cached at admission.
    est_service_s: f64,
}

/// Inserts keeping (fire_s asc, id asc) order.
fn push_hedge(hedges: &mut Vec<HedgeEntry>, entry: HedgeEntry) {
    let pos = hedges
        .binary_search_by(|probe| {
            probe
                .fire_s
                .partial_cmp(&entry.fire_s)
                .expect("finite hedge times")
                .then(probe.request.id.cmp(&entry.request.id))
        })
        .unwrap_or_else(|e| e);
    hedges.insert(pos, entry);
}

/// Settles open→half-open breaker transitions as of `now` (emitting the
/// finished open interval) and returns the routable mask, or `None` when
/// breakers are disabled.
fn settle_breakers<S: TraceSink>(
    breakers: &mut Option<Vec<CircuitBreaker>>,
    now: f64,
    sink: &mut S,
) -> Option<Vec<bool>> {
    let bs = breakers.as_mut()?;
    let mut mask = Vec::with_capacity(bs.len());
    for (i, b) in bs.iter_mut().enumerate() {
        if let Some(BreakerEvent::HalfOpened { since_s, at_s }) = b.tick(now) {
            if S::ENABLED {
                let track = TrackId::new(i as u32, Module::Breaker);
                sink.span(track, "open", since_s, at_s, SpanClass::Control, true);
            }
        }
        mask.push(b.routable());
    }
    Some(mask)
}

/// Applies a brownout transition to replica `i` and emits the level-change
/// marks plus the `accuracy_loss_pct` counter the aggregate report
/// integrates for quality-loss attribution.
fn apply_transition<S: TraceSink>(
    replicas: &mut [Replica],
    ladder: &BrownoutLadder,
    i: usize,
    tr: Transition,
    now: f64,
    transitions_total: &mut usize,
    sink: &mut S,
) {
    replicas[i].set_level(ladder, tr.to);
    *transitions_total += 1;
    if S::ENABLED {
        let track = TrackId::new(i as u32, Module::Brownout);
        sink.instant(track, if tr.to > tr.from { "level-up" } else { "level-down" }, now);
        sink.counter(track, "accuracy_loss_pct", now, ladder.level(tr.to).accuracy_loss_pct);
    }
}

/// Everything a fleet simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Aggregate metrics.
    pub metrics: FleetMetrics,
    /// Every completion, in completion order.
    pub completions: Vec<Completion>,
    /// Every shed request, in arrival order.
    pub shed: Vec<Shed>,
}

/// Plays `requests` (sorted by arrival) through the fleet.
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet(cfg: &FleetConfig, requests: &[ServeRequest]) -> FleetReport {
    simulate_fleet_traced(cfg, requests, &mut NullSink)
}

/// [`simulate_fleet`] with telemetry: every replica's layer steps, host
/// transfers, request lifecycle intervals and queue-depth counters are
/// emitted to `sink`.
///
/// The sink is generic over [`TraceSink`], and instrumentation is guarded
/// by its `ENABLED` constant, so with [`NullSink`] this *is*
/// [`simulate_fleet`] — same instructions, bitwise-identical report (the
/// determinism-guard integration test pins this).
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet_traced<S: TraceSink>(
    cfg: &FleetConfig,
    requests: &[ServeRequest],
    sink: &mut S,
) -> FleetReport {
    assert!(cfg.replicas > 0, "at least one replica");
    assert!(!requests.is_empty(), "at least one request");
    assert!(
        requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival time"
    );
    cfg.faults.validate(cfg.replicas);

    let system = CtaSystem::new(cfg.system);
    let mut replicas: Vec<Replica> =
        (0..cfg.replicas).map(|i| Replica::new(i, system.clone())).collect();
    let mut cost = CostModel::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
    let mut shed: Vec<Shed> = Vec::new();
    let mut rr_cursor = 0usize;
    let mut next_arrival = 0usize;
    let fault_events = cfg.faults.timeline();
    let mut next_fault = 0usize;
    let mut retries: Vec<RetryEntry> = Vec::new();
    let mut requeues_total = 0usize;

    // Overload-control state. Every structure is `None`/empty when the
    // corresponding mechanism is off, so the disabled path executes the
    // exact pre-overload event loop (the `is_none_or` guards below reduce
    // to their old expressions; pinned bitwise by test).
    let overload_on = !cfg.overload.is_off();
    let mut controllers: Option<Vec<BrownoutController>> =
        cfg.overload.brownout.as_ref().map(|b| {
            (0..cfg.replicas)
                .map(|_| BrownoutController::new(b.policy, b.ladder.max_level()))
                .collect()
        });
    let mut breakers: Option<Vec<CircuitBreaker>> =
        cfg.overload.breaker.map(|p| (0..cfg.replicas).map(|_| CircuitBreaker::new(p)).collect());
    if let Some(hp) = &cfg.overload.hedge {
        hp.validate();
    }
    let mut hedges: Vec<HedgeEntry> = Vec::new();
    // Hedged requests with two live copies: id → primary replica at
    // hedge-dispatch time (lookup only, never iterated — determinism).
    let mut hedged_live: HashMap<u64, usize> = HashMap::new();
    let mut lat_window: Vec<f64> = Vec::new();
    let mut lat_next = 0usize;
    let mut hedged = 0usize;
    let mut hedge_wins = 0usize;
    let mut hedge_cancelled = 0usize;
    let mut transitions_total = 0usize;

    loop {
        // Earliest replica step, ties to the lowest index.
        let next_step: Option<(f64, usize)> = replicas
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next_step_time().map(|t| (t, i)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite step times").then(a.1.cmp(&b.1)));

        // Tie order at one instant: fault < arrival < retry < hedge <
        // step. With an empty fault plan the fault and retry sources never
        // fire, and with hedging off the hedge queue stays empty, so the
        // conditions reduce to the plain fault-free expressions.
        let fault_due = next_fault < fault_events.len() && {
            let tf = fault_events[next_fault].t_s;
            next_step.is_none_or(|(t, _)| tf <= t)
                && (next_arrival >= requests.len() || tf <= requests[next_arrival].arrival_s)
                && retries.first().is_none_or(|r| tf <= r.retry_s)
                && hedges.first().is_none_or(|h| tf <= h.fire_s)
        };

        let arrival_due = !fault_due
            && next_arrival < requests.len()
            && next_step.is_none_or(|(t, _)| requests[next_arrival].arrival_s <= t)
            && retries.first().is_none_or(|r| requests[next_arrival].arrival_s <= r.retry_s)
            && hedges.first().is_none_or(|h| requests[next_arrival].arrival_s <= h.fire_s);

        let retry_due = !fault_due
            && !arrival_due
            && retries.first().is_some_and(|r| {
                next_step.is_none_or(|(t, _)| r.retry_s <= t)
                    && hedges.first().is_none_or(|h| r.retry_s <= h.fire_s)
            });

        let hedge_due = !fault_due
            && !arrival_due
            && !retry_due
            && hedges.first().is_some_and(|h| next_step.is_none_or(|(t, _)| h.fire_s <= t));

        if fault_due {
            let ev = fault_events[next_fault];
            next_fault += 1;
            let track = TrackId::new(ev.replica as u32, Module::Fault);
            if ev.up {
                let since = replicas[ev.replica].down_since;
                replicas[ev.replica].recover(ev.t_s);
                if S::ENABLED {
                    sink.span(track, "outage", since, ev.t_s, SpanClass::Fault, true);
                    sink.instant(track, "replica-up", ev.t_s);
                }
            } else {
                let orphans = replicas[ev.replica].crash(ev.t_s);
                if S::ENABLED {
                    sink.instant(track, "replica-down", ev.t_s);
                }
                if let Some(bs) = breakers.as_mut() {
                    let prev = bs[ev.replica].state();
                    if let Some(BreakerEvent::Opened { at_s }) =
                        bs[ev.replica].record_failure(ev.t_s)
                    {
                        if S::ENABLED {
                            let btrack = TrackId::new(ev.replica as u32, Module::Breaker);
                            // A failed probe closes its half-open interval.
                            if let BreakerState::HalfOpen { since_s, .. } = prev {
                                sink.span(
                                    btrack,
                                    "half-open",
                                    since_s,
                                    at_s,
                                    SpanClass::Control,
                                    true,
                                );
                            }
                            sink.instant(btrack, "breaker-open", at_s);
                        }
                    }
                }
                for p in orphans {
                    // A hedge copy whose sibling is still live elsewhere is
                    // dropped silently (accounted as a cancellation): the
                    // surviving copy carries the request, so requeueing or
                    // shedding this one would double-resolve it.
                    if hedged_live.contains_key(&p.request.id)
                        && replicas.iter().any(|r| r.holds_request(p.request.id))
                    {
                        hedge_cancelled += 1;
                        if S::ENABLED {
                            let htrack = TrackId::new(ev.replica as u32, Module::Hedge);
                            sink.instant(htrack, "hedge-cancel", ev.t_s);
                        }
                        continue;
                    }
                    let attempt = p.attempt + 1;
                    if attempt > cfg.retry.max_attempts {
                        shed.push(Shed {
                            id: p.request.id,
                            class: p.request.class.name,
                            arrival_s: p.request.arrival_s,
                            reason: ShedReason::ReplicaLost,
                            retries: p.attempt,
                        });
                        continue;
                    }
                    let retry_s = ev.t_s + cfg.retry.backoff(attempt);
                    // Deadline-aware requeue: if even an unobstructed
                    // resume cannot meet the SLO, shed now instead of
                    // burning the budget.
                    if cfg.admission.enforce_deadlines {
                        if let Some(d) = p.request.class.deadline_s {
                            let remaining =
                                cost.remaining_service_s(&system, &p.request, p.resume_cursor)
                                    + if p.resume_cursor > 0 {
                                        system.weight_upload_s()
                                    } else {
                                        0.0
                                    };
                            if retry_s + remaining > p.request.arrival_s + d {
                                shed.push(Shed {
                                    id: p.request.id,
                                    class: p.request.class.name,
                                    arrival_s: p.request.arrival_s,
                                    reason: ShedReason::ReplicaLost,
                                    retries: p.attempt,
                                });
                                continue;
                            }
                        }
                    }
                    requeues_total += 1;
                    if S::ENABLED {
                        sink.instant(track, "requeue", ev.t_s);
                        sink.counter(track, "retries", ev.t_s, requeues_total as f64);
                    }
                    push_retry(
                        &mut retries,
                        RetryEntry {
                            retry_s,
                            attempt,
                            cursor: p.resume_cursor,
                            request: p.request,
                        },
                    );
                }
            }
        } else if arrival_due {
            let request = &requests[next_arrival];
            next_arrival += 1;
            let now = request.arrival_s;
            let mask = settle_breakers(&mut breakers, now, sink);
            let Some(target) =
                cfg.routing.choose(&mut replicas, &mut cost, now, &mut rr_cursor, mask.as_deref())
            else {
                // The whole fleet is down: nothing can take the request.
                if S::ENABLED {
                    let track = TrackId::new(0, Module::Fault);
                    sink.instant(track, "shed-fleet-down", now);
                }
                shed.push(Shed {
                    id: request.id,
                    class: request.class.name,
                    arrival_s: now,
                    reason: ShedReason::ReplicaLost,
                    retries: 0,
                });
                continue;
            };
            let est_service_s = cost.request_service_s(&system, request);
            let est_wait_s = replicas[target].outstanding_s(&mut cost, now);
            match cfg.admission.admit(
                &request.class,
                replicas[target].queue_depth(),
                est_wait_s + est_service_s,
            ) {
                Ok(()) => {
                    replicas[target].enqueue(Pending::fresh(request.clone(), est_service_s));
                    if let Some(bs) = breakers.as_mut() {
                        bs[target].on_dispatch();
                    }
                    // Deadline-bearing admissions arm a hedge timer at the
                    // windowed-p99 delay; the check fires only if the
                    // request is still in flight then.
                    if let Some(hp) = &cfg.overload.hedge {
                        if request.class.deadline_s.is_some() {
                            push_hedge(
                                &mut hedges,
                                HedgeEntry {
                                    fire_s: now + hp.delay_s(&lat_window),
                                    request: request.clone(),
                                    est_service_s,
                                },
                            );
                        }
                    }
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "enqueue", now);
                        sink.counter(
                            track,
                            "queue_depth",
                            now,
                            replicas[target].queue_depth() as f64,
                        );
                    }
                }
                Err(reason) => {
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "shed", now);
                    }
                    shed.push(Shed {
                        id: request.id,
                        class: request.class.name,
                        arrival_s: now,
                        reason,
                        retries: 0,
                    });
                }
            }
            // Closed-loop sensing: every arrival feeds each up replica's
            // controller one availability-weighted depth sample, so the
            // sampling cadence tracks offered load and survivors of a
            // partial outage see proportionally inflated depth.
            if let (Some(ctrls), Some(bc)) = (controllers.as_mut(), cfg.overload.brownout.as_ref())
            {
                let up_count = replicas.iter().filter(|r| r.up).count();
                if up_count > 0 {
                    let up_frac = up_count as f64 / replicas.len() as f64;
                    for i in 0..replicas.len() {
                        if !replicas[i].up {
                            continue;
                        }
                        let depth = replicas[i].queue_depth() as f64 / up_frac;
                        if let Some(tr) = ctrls[i].observe_depth(depth) {
                            apply_transition(
                                &mut replicas,
                                &bc.ladder,
                                i,
                                tr,
                                now,
                                &mut transitions_total,
                                sink,
                            );
                        }
                    }
                }
            }
        } else if retry_due {
            let entry = retries.remove(0);
            let now = entry.retry_s;
            let mask = settle_breakers(&mut breakers, now, sink);
            match cfg.routing.choose(&mut replicas, &mut cost, now, &mut rr_cursor, mask.as_deref())
            {
                Some(target) => {
                    // A requeue was already admitted once; it re-enters the
                    // queue directly (no depth shedding) with a remaining-
                    // work estimate that charges the fresh weight upload
                    // its resume will pay.
                    let est_service_s =
                        cost.remaining_service_s(&system, &entry.request, entry.cursor)
                            + if entry.cursor > 0 { system.weight_upload_s() } else { 0.0 };
                    if S::ENABLED {
                        let track = TrackId::new(target as u32, Module::Runtime);
                        sink.instant(track, "requeue-placed", now);
                    }
                    replicas[target].enqueue(Pending {
                        request: entry.request,
                        est_service_s,
                        resume_cursor: entry.cursor,
                        attempt: entry.attempt,
                    });
                    if let Some(bs) = breakers.as_mut() {
                        bs[target].on_dispatch();
                    }
                }
                None => {
                    // Still no healthy replica: consume another attempt or
                    // give up.
                    let attempt = entry.attempt + 1;
                    if attempt > cfg.retry.max_attempts {
                        shed.push(Shed {
                            id: entry.request.id,
                            class: entry.request.class.name,
                            arrival_s: entry.request.arrival_s,
                            reason: ShedReason::ReplicaLost,
                            retries: entry.attempt,
                        });
                    } else {
                        requeues_total += 1;
                        if S::ENABLED {
                            let track = TrackId::new(0, Module::Fault);
                            sink.counter(track, "retries", now, requeues_total as f64);
                        }
                        push_retry(
                            &mut retries,
                            RetryEntry {
                                retry_s: now + cfg.retry.backoff(attempt),
                                attempt,
                                cursor: entry.cursor,
                                request: entry.request,
                            },
                        );
                    }
                }
            }
        } else if hedge_due {
            let entry = hedges.remove(0);
            let now = entry.fire_s;
            let id = entry.request.id;
            // Still in flight? (Not found anywhere = completed, shed, or
            // waiting out a retry backoff — no hedge then.)
            if let Some(primary) = replicas.iter().position(|r| r.holds_request(id)) {
                let breaker_mask = settle_breakers(&mut breakers, now, sink);
                // The copy must land on a *different* replica than the one
                // holding the slow primary.
                let mask: Vec<bool> = (0..replicas.len())
                    .map(|i| i != primary && breaker_mask.as_ref().is_none_or(|m| m[i]))
                    .collect();
                if let Some(target) =
                    cfg.routing.choose(&mut replicas, &mut cost, now, &mut rr_cursor, Some(&mask))
                {
                    // Hedge copies bypass admission: the request was
                    // already admitted once; the copy exists purely to cut
                    // its tail.
                    replicas[target].enqueue(Pending::fresh(entry.request, entry.est_service_s));
                    if let Some(bs) = breakers.as_mut() {
                        bs[target].on_dispatch();
                    }
                    hedged += 1;
                    hedged_live.insert(id, primary);
                    if S::ENABLED {
                        let htrack = TrackId::new(target as u32, Module::Hedge);
                        sink.instant(htrack, "hedge-dispatch", now);
                    }
                }
            }
        } else if let Some((_, i)) = next_step {
            let before = completions.len();
            replicas[i].execute_step(&cfg.batch, &cfg.faults, &mut cost, &mut completions, sink);
            if overload_on {
                for c in completions[before..].iter().cloned() {
                    // Hedge delay sensing: sliding window of completion
                    // latencies.
                    if let Some(hp) = &cfg.overload.hedge {
                        let lat = c.latency_s();
                        if lat_window.len() == hp.latency_window {
                            lat_window[lat_next % hp.latency_window] = lat;
                        } else {
                            lat_window.push(lat);
                        }
                        lat_next = (lat_next + 1) % hp.latency_window;
                    }
                    // A completion is breaker evidence of health (a
                    // successful half-open probe closes the breaker).
                    if let Some(bs) = breakers.as_mut() {
                        if let Some(BreakerEvent::Closed { since_s, at_s }) =
                            bs[c.replica].record_success(c.finish_s)
                        {
                            if S::ENABLED {
                                let btrack = TrackId::new(c.replica as u32, Module::Breaker);
                                sink.span(
                                    btrack,
                                    "half-open",
                                    since_s,
                                    at_s,
                                    SpanClass::Control,
                                    false,
                                );
                            }
                        }
                    }
                    // ... and brownout evidence (deadline outcome).
                    if let (Some(ctrls), Some(bc)) =
                        (controllers.as_mut(), cfg.overload.brownout.as_ref())
                    {
                        if let Some(tr) =
                            ctrls[c.replica].observe_completion(c.deadline_met == Some(false))
                        {
                            apply_transition(
                                &mut replicas,
                                &bc.ladder,
                                c.replica,
                                tr,
                                c.finish_s,
                                &mut transitions_total,
                                sink,
                            );
                        }
                    }
                    // First outcome wins: cancel every losing copy (other
                    // replicas' queues/actives at their layer boundary,
                    // plus any retry backoff entry) the moment the winner
                    // completes, so exactly one completion is ever
                    // reported per hedged id.
                    if let Some(primary) = hedged_live.remove(&c.id) {
                        for (j, replica) in replicas.iter_mut().enumerate() {
                            if j == c.replica {
                                continue;
                            }
                            let n = replica.cancel_request(c.id);
                            if n > 0 {
                                hedge_cancelled += n;
                                if S::ENABLED {
                                    let htrack = TrackId::new(j as u32, Module::Hedge);
                                    sink.instant(htrack, "hedge-cancel", c.finish_s);
                                }
                            }
                        }
                        let before_retry = retries.len();
                        retries.retain(|r| r.request.id != c.id);
                        hedge_cancelled += before_retry - retries.len();
                        if c.replica != primary {
                            hedge_wins += 1;
                            if S::ENABLED {
                                let htrack = TrackId::new(c.replica as u32, Module::Hedge);
                                sink.instant(htrack, "hedge-win", c.finish_s);
                            }
                        }
                    }
                }
            }
        } else {
            break;
        }
    }

    // Close the books on replicas still down at the end of the run: their
    // open outage extends to the fleet makespan (or the crash instant if
    // nothing completed after it).
    let makespan_s = completions.iter().map(|c| c.finish_s).fold(0.0, f64::max);
    for r in &mut replicas {
        if !r.up {
            let end = makespan_s.max(r.down_since);
            r.down_s += end - r.down_since;
            if S::ENABLED {
                let track = TrackId::new(r.index as u32, Module::Fault);
                sink.span(track, "outage", r.down_since, end, SpanClass::Fault, true);
            }
        }
    }

    // Likewise for breakers still open (or probing) at the end of the
    // run: their blocking interval extends to the makespan.
    if S::ENABLED {
        if let Some(bs) = breakers.as_ref() {
            for (i, b) in bs.iter().enumerate() {
                let track = TrackId::new(i as u32, Module::Breaker);
                match b.state() {
                    BreakerState::Open { since_s, .. } => {
                        sink.span(
                            track,
                            "open",
                            since_s,
                            makespan_s.max(since_s),
                            SpanClass::Control,
                            true,
                        );
                    }
                    BreakerState::HalfOpen { since_s, .. } => {
                        sink.span(
                            track,
                            "half-open",
                            since_s,
                            makespan_s.max(since_s),
                            SpanClass::Control,
                            true,
                        );
                    }
                    BreakerState::Closed { .. } => {}
                }
            }
        }
    }

    let busy: Vec<f64> = replicas.iter().map(|r| r.busy_s).collect();
    let down: Vec<f64> = replicas.iter().map(|r| r.down_s).collect();
    let mut metrics =
        FleetMetrics::from_outcomes(requests.len(), &completions, &shed, &busy, &down);
    metrics.overload.hedged = hedged;
    metrics.overload.hedge_wins = hedge_wins;
    metrics.overload.hedge_cancelled = hedge_cancelled;
    metrics.overload.brownout_transitions = transitions_total;
    metrics.overload.per_replica_brownout_s = replicas.iter().map(|r| r.brownout_s).collect();
    metrics.overload.breaker_opens =
        breakers.as_ref().map_or(0, |bs| bs.iter().map(|b| b.opens).sum());
    FleetReport { metrics, completions, shed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::{AttentionTask, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn trace(n: usize, gap_s: f64) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::uniform(
                    i as u64,
                    i as f64 * gap_s,
                    QosClass::standard(),
                    task(),
                    2,
                    4,
                )
            })
            .collect()
    }

    #[test]
    fn conservation_holds() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 3);
        let report = simulate_fleet(&cfg, &trace(40, 1e-5));
        assert_eq!(report.metrics.completed + report.metrics.shed, 40);
        assert_eq!(report.completions.len() + report.shed.len(), 40);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_load() {
        let requests = trace(60, 1e-5); // heavy burst
        let one = simulate_fleet(&FleetConfig::single_fifo(SystemConfig::paper()), &requests);
        let mut cfg4 = FleetConfig::single_fifo(SystemConfig::paper());
        cfg4.replicas = 4;
        cfg4.routing = RoutingPolicy::JoinShortestQueue;
        let four = simulate_fleet(&cfg4, &requests);
        let p99_1 = one.metrics.latency.as_ref().expect("completions").p99_s;
        let p99_4 = four.metrics.latency.as_ref().expect("completions").p99_s;
        assert!(p99_4 < p99_1 / 2.0, "4 replicas p99 {p99_4} vs 1 replica {p99_1}");
    }

    #[test]
    fn deadline_shedding_caps_tail_and_reports_shed() {
        let mut requests = trace(50, 1e-5);
        for r in &mut requests {
            r.class = QosClass { name: "tight", priority: 100, deadline_s: Some(5e-4) };
        }
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission.enforce_deadlines = true;
        let report = simulate_fleet(&cfg, &requests);
        assert!(report.metrics.shed > 0, "overload with tight deadline must shed");
        // Everything that did complete met the deadline (admission only
        // admits meetable work, and estimates are solo lower bounds that
        // are exact when batching is off and queue estimates are exact).
        for c in &report.completions {
            assert_eq!(c.deadline_met, Some(true), "completion {} missed", c.id);
        }
    }

    #[test]
    fn queue_depth_shedding_triggers_under_burst() {
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission = AdmissionPolicy::bounded(2);
        let report = simulate_fleet(&cfg, &trace(30, 1e-6));
        assert!(report.metrics.shed > 0);
        assert!(report.shed.iter().all(|s| s.reason == ShedReason::QueueFull));
    }

    #[test]
    fn interactive_class_overtakes_batch_backlog() {
        // 10 batch requests arrive at t=0; an interactive one arrives
        // just after. With priorities it should complete far earlier than
        // the batch tail.
        let mut requests: Vec<ServeRequest> = (0..10)
            .map(|i| ServeRequest::uniform(i, 0.0, QosClass::batch(), task(), 2, 4))
            .collect();
        requests.push(ServeRequest::uniform(10, 1e-6, QosClass::interactive(10.0), task(), 2, 4));
        requests.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let report = simulate_fleet(&cfg, &requests);
        let finish =
            |id: u64| report.completions.iter().find(|c| c.id == id).expect("completed").finish_s;
        let batch_last = (0..10).map(finish).fold(0.0, f64::max);
        assert!(finish(10) < batch_last, "interactive must not wait out the batch backlog");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 2);
        let requests = trace(25, 1e-4);
        let a = simulate_fleet(&cfg, &requests);
        let b = simulate_fleet(&cfg, &requests);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_rejected() {
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 1.0, QosClass::standard(), task(), 1, 1);
        let b = ServeRequest::uniform(1, 0.0, QosClass::standard(), task(), 1, 1);
        let _ = simulate_fleet(&cfg, &[a, b]);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn nan_arrival_rejected_up_front_rather_than_livelocking() {
        // A NaN timestamp defeats every `<=` the event loop orders by;
        // the sortedness precondition must reject it before the loop
        // starts (NaN makes the windows comparison false).
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 1, 1);
        let mut b = ServeRequest::uniform(1, 1.0, QosClass::standard(), task(), 1, 1);
        b.arrival_s = f64::NAN;
        let _ = simulate_fleet(&cfg, &[a, b]);
    }
}
