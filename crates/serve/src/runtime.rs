//! The discrete-event fleet runtime: configuration, report, and the
//! public simulation entry points.
//!
//! The simulation interleaves five event sources in time order: fault
//! transitions (replica crashes and recoveries from the
//! [`FaultPlan`]), request arrivals (routed and admission-checked the
//! instant they occur), retry requeues (crash-evicted requests re-entering
//! routing after their backoff), hedge timers (deadline-bearing requests
//! duplicating to a second replica after the windowed-p99 delay; see
//! [`crate::OverloadControl`]), and per-replica layer steps (each replica
//! dispatches its active batch one layer at a time; see
//! [`crate::replica`]). Ties are deterministic: at one instant a fault is
//! processed before an arrival, an arrival before a retry — so it can
//! still join a coincident step's batch — a retry before a hedge, and
//! coincident replica steps run in replica index order. All state
//! evolution is pure `f64` arithmetic over the trace, so a fixed trace,
//! configuration and fault plan always reproduce the same report — and
//! with [`FaultPlan::none`] the fault machinery stays fully dormant and
//! with [`OverloadControl::off`] the brownout/breaker/hedge machinery
//! stays fully dormant, keeping reports bitwise identical to the plain
//! runtime (both pinned by test).
//!
//! The event *handlers* live in [`crate::engine`], shared by two
//! drivers selected by [`FleetEngine`]: the step-granular scan loop
//! (the reference semantics) and the calendar-queue event loop
//! (O(1) amortized per event; bitwise-identical reports, pinned by the
//! `engine` integration test and the golden suite).

use cta_telemetry::{NullSink, TraceSink};

use crate::replica::Completion;
use crate::{
    AdmissionPolicy, BatchPolicy, FaultPlan, FaultPlanError, FleetEngine, FleetMetrics,
    OverloadControl, RetryPolicy, RoutingPolicy, ServeRequest, ShedReason,
};

/// A request rejected by admission control or orphaned by a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct Shed {
    /// The request id.
    pub id: u64,
    /// Class name of the request.
    pub class: &'static str,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Why it was shed.
    pub reason: ShedReason,
    /// Crash-eviction requeues the request survived before being shed
    /// (0 for arrival-time sheds).
    pub retries: u32,
    /// Owning tenant id (0 in single-tenant configurations).
    pub tenant: u32,
}

/// How the fleet treats long-lived decode sessions (requests tagged
/// with a [`SessionTurn`](crate::SessionTurn)).
///
/// The policy only governs *scheduler* behaviour — decode pricing is
/// intrinsic to the tagged request. `None` in [`FleetConfig::sessions`]
/// is the pre-session fleet, bitwise (and session-tagged requests are
/// rejected up front).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPolicy {
    /// Route each turn back to the replica holding its session state
    /// whenever that replica is routable. Off: every turn routes by the
    /// configured [`RoutingPolicy`] and pays a state rebuild on each
    /// replica move.
    pub sticky: bool,
    /// Fold resident session state into replica occupancy
    /// (least-outstanding-work routing then sees held state as load).
    pub account_state: bool,
}

impl SessionPolicy {
    /// The production default: sticky routing with state accounting.
    pub fn sticky() -> Self {
        Self { sticky: true, account_state: true }
    }

    /// Sessions priced but not pinned: every turn re-routes freely (the
    /// ablation baseline sticky routing is measured against).
    pub fn stateless() -> Self {
        Self { sticky: false, account_state: false }
    }
}

/// Why a [`FleetConfigBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The fleet was configured with zero replicas.
    NoReplicas,
    /// The fault plan is malformed for the configured fleet width.
    Faults(FaultPlanError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoReplicas => write!(f, "at least one replica"),
            ConfigError::Faults(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::NoReplicas => None,
            ConfigError::Faults(e) => Some(e),
        }
    }
}

/// Full fleet configuration.
///
/// Construct one with [`FleetConfig::builder`] (or the
/// [`single_fifo`](FleetConfig::single_fifo) /
/// [`sharded`](FleetConfig::sharded) presets, which are builder
/// shorthands) and adjust the public fields afterwards if needed. The
/// struct is `#[non_exhaustive]`: new subsystems add fields without
/// breaking downstream construction sites.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Per-replica system (all replicas share one configuration, so task
    /// costs are memoised fleet-wide).
    pub system: cta_sim::SystemConfig,
    /// Number of independent replicas.
    pub replicas: usize,
    /// Arrival routing policy.
    pub routing: RoutingPolicy,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Continuous-batching width.
    pub batch: BatchPolicy,
    /// Deterministic fault schedule ([`FaultPlan::none`] = healthy run).
    pub faults: FaultPlan,
    /// Retry budget for requests evicted by a crash.
    pub retry: RetryPolicy,
    /// Closed-loop overload control ([`OverloadControl::off`] = the plain
    /// fleet, bitwise).
    pub overload: OverloadControl,
    /// Which driver advances the simulation
    /// ([`FleetEngine::StepGranular`] = the original scan loop;
    /// [`FleetEngine::EventDriven`] produces bitwise-identical reports at
    /// O(1) amortized cost per event).
    pub engine: FleetEngine,
    /// Multi-tenant fair scheduling, quotas, and autoscaling (`None` =
    /// the single-tenant fleet, bitwise; a one-tenant equal-weight DRR
    /// configuration with shed backpressure is also pinned bitwise
    /// against `None`).
    pub tenancy: Option<cta_tenancy::TenancyConfig>,
    /// Phi-accrual failure detection and quarantine (`None` = routing
    /// trusts `up` alone — the pre-detector fleet, bitwise; pinned).
    pub detector: Option<crate::DetectorPolicy>,
    /// Long-lived decode sessions: sticky routing and state accounting
    /// for session-tagged requests (`None` = the pre-session fleet,
    /// bitwise; session-tagged requests are then rejected up front).
    pub sessions: Option<SessionPolicy>,
}

impl FleetConfig {
    /// Starts a builder whose defaults are the
    /// [`single_fifo`](FleetConfig::single_fifo) baseline: one replica,
    /// round-robin routing, batching off, admit everything, no faults, no
    /// overload control, no tenancy, no detector, no sessions,
    /// step-granular engine.
    pub fn builder(system: cta_sim::SystemConfig) -> FleetConfigBuilder {
        FleetConfigBuilder {
            cfg: FleetConfig {
                system,
                replicas: 1,
                routing: RoutingPolicy::RoundRobin,
                admission: AdmissionPolicy::admit_all(),
                batch: BatchPolicy::off(),
                faults: FaultPlan::none(),
                retry: RetryPolicy::standard(),
                overload: OverloadControl::off(),
                engine: FleetEngine::StepGranular,
                tenancy: None,
                detector: None,
                sessions: None,
            },
        }
    }

    /// The compatibility configuration: one replica, round-robin (trivial)
    /// routing, batching off, admit everything, no faults. In this
    /// configuration [`simulate_fleet`] reproduces
    /// `cta_sim::simulate_serving` exactly.
    pub fn single_fifo(system: cta_sim::SystemConfig) -> Self {
        Self::builder(system).build().expect("the single-replica baseline is always valid")
    }

    /// A sharded fleet at the given width with sensible production
    /// defaults: least-outstanding-work routing, bounded queues, batching
    /// up to 4 requests.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn sharded(system: cta_sim::SystemConfig, replicas: usize) -> Self {
        assert!(replicas > 0, "at least one replica");
        Self::builder(system)
            .replicas(replicas)
            .routing(RoutingPolicy::LeastOutstandingWork)
            .admission(AdmissionPolicy::bounded(64))
            .batch(BatchPolicy::up_to(4))
            .build()
            .expect("the sharded preset is always valid")
    }
}

/// Builder for [`FleetConfig`]: starts from the pinned single-replica
/// baseline and layers subsystems on. [`build`](Self::build) runs the
/// validation that used to be scattered across `simulate_fleet`
/// preconditions, returning [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    cfg: FleetConfig,
}

impl FleetConfigBuilder {
    /// Fleet width.
    pub fn replicas(mut self, n: usize) -> Self {
        self.cfg.replicas = n;
        self
    }

    /// Arrival routing policy.
    pub fn routing(mut self, routing: RoutingPolicy) -> Self {
        self.cfg.routing = routing;
        self
    }

    /// Admission control.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Continuous-batching width.
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Deterministic fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Retry budget for crash-evicted requests.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Closed-loop overload control.
    pub fn overload(mut self, overload: OverloadControl) -> Self {
        self.cfg.overload = overload;
        self
    }

    /// Which driver advances the simulation.
    pub fn engine(mut self, engine: FleetEngine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Multi-tenant fair scheduling, quotas, and autoscaling.
    pub fn tenancy(mut self, tenancy: cta_tenancy::TenancyConfig) -> Self {
        self.cfg.tenancy = Some(tenancy);
        self
    }

    /// Phi-accrual failure detection and quarantine.
    pub fn detector(mut self, detector: crate::DetectorPolicy) -> Self {
        self.cfg.detector = Some(detector);
        self
    }

    /// Long-lived decode sessions.
    pub fn sessions(mut self, sessions: SessionPolicy) -> Self {
        self.cfg.sessions = Some(sessions);
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.cfg.replicas == 0 {
            return Err(ConfigError::NoReplicas);
        }
        self.cfg.faults.try_validate(self.cfg.replicas).map_err(ConfigError::Faults)?;
        Ok(self.cfg)
    }
}

/// Everything a fleet simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Aggregate metrics.
    pub metrics: FleetMetrics,
    /// Every completion, in completion order.
    pub completions: Vec<Completion>,
    /// Every shed request, in arrival order.
    pub shed: Vec<Shed>,
    /// Simulated events processed (handler invocations); equal across
    /// engines for the same inputs — the equivalence tests assert it.
    pub events_processed: u64,
    /// Event-loop occupancy samples `(time_s, pending_events)` taken
    /// every ~64th event. Only the event-driven engine fills this (the
    /// step-granular loop has no event queue); it feeds the telemetry
    /// `events` lane in `planet_sweep` without touching the traced
    /// handler path, so trace bytes stay engine-independent.
    pub event_queue_samples: Vec<(f64, usize)>,
}

/// Plays `requests` (sorted by arrival) through the fleet.
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet(cfg: &FleetConfig, requests: &[ServeRequest]) -> FleetReport {
    simulate_fleet_traced(cfg, requests, &mut NullSink)
}

/// [`simulate_fleet`] with telemetry: every replica's layer steps, host
/// transfers, request lifecycle intervals and queue-depth counters are
/// emitted to `sink`.
///
/// The sink is generic over [`TraceSink`], and instrumentation is guarded
/// by its `ENABLED` constant, so with [`NullSink`] this *is*
/// [`simulate_fleet`] — same instructions, bitwise-identical report (the
/// determinism-guard integration test pins this). The trace bytes are
/// also engine-independent: both drivers run the same instrumented
/// handlers in the same order.
///
/// # Panics
///
/// Panics if `cfg.replicas == 0`, `requests` is empty, or `requests` is
/// not sorted by arrival time.
pub fn simulate_fleet_traced<S: TraceSink>(
    cfg: &FleetConfig,
    requests: &[ServeRequest],
    sink: &mut S,
) -> FleetReport {
    crate::engine::run(cfg, requests, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::{AttentionTask, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn trace(n: usize, gap_s: f64) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::uniform(
                    i as u64,
                    i as f64 * gap_s,
                    QosClass::standard(),
                    task(),
                    2,
                    4,
                )
            })
            .collect()
    }

    #[test]
    fn conservation_holds() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 3);
        let report = simulate_fleet(&cfg, &trace(40, 1e-5));
        assert_eq!(report.metrics.completed + report.metrics.shed, 40);
        assert_eq!(report.completions.len() + report.shed.len(), 40);
    }

    #[test]
    fn more_replicas_cut_tail_latency_under_load() {
        let requests = trace(60, 1e-5); // heavy burst
        let one = simulate_fleet(&FleetConfig::single_fifo(SystemConfig::paper()), &requests);
        let mut cfg4 = FleetConfig::single_fifo(SystemConfig::paper());
        cfg4.replicas = 4;
        cfg4.routing = RoutingPolicy::JoinShortestQueue;
        let four = simulate_fleet(&cfg4, &requests);
        let p99_1 = one.metrics.latency.as_ref().expect("completions").p99_s;
        let p99_4 = four.metrics.latency.as_ref().expect("completions").p99_s;
        assert!(p99_4 < p99_1 / 2.0, "4 replicas p99 {p99_4} vs 1 replica {p99_1}");
    }

    #[test]
    fn deadline_shedding_caps_tail_and_reports_shed() {
        let mut requests = trace(50, 1e-5);
        for r in &mut requests {
            r.class = QosClass { name: "tight", priority: 100, deadline_s: Some(5e-4) };
        }
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission.enforce_deadlines = true;
        let report = simulate_fleet(&cfg, &requests);
        assert!(report.metrics.shed > 0, "overload with tight deadline must shed");
        // Everything that did complete met the deadline (admission only
        // admits meetable work, and estimates are solo lower bounds that
        // are exact when batching is off and queue estimates are exact).
        for c in &report.completions {
            assert_eq!(c.deadline_met, Some(true), "completion {} missed", c.id);
        }
    }

    #[test]
    fn queue_depth_shedding_triggers_under_burst() {
        let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
        cfg.admission = AdmissionPolicy::bounded(2);
        let report = simulate_fleet(&cfg, &trace(30, 1e-6));
        assert!(report.metrics.shed > 0);
        assert!(report.shed.iter().all(|s| s.reason == ShedReason::QueueFull));
    }

    #[test]
    fn interactive_class_overtakes_batch_backlog() {
        // 10 batch requests arrive at t=0; an interactive one arrives
        // just after. With priorities it should complete far earlier than
        // the batch tail.
        let mut requests: Vec<ServeRequest> = (0..10)
            .map(|i| ServeRequest::uniform(i, 0.0, QosClass::batch(), task(), 2, 4))
            .collect();
        requests.push(ServeRequest::uniform(10, 1e-6, QosClass::interactive(10.0), task(), 2, 4));
        requests.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let report = simulate_fleet(&cfg, &requests);
        let finish =
            |id: u64| report.completions.iter().find(|c| c.id == id).expect("completed").finish_s;
        let batch_last = (0..10).map(finish).fold(0.0, f64::max);
        assert!(finish(10) < batch_last, "interactive must not wait out the batch backlog");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let cfg = FleetConfig::sharded(SystemConfig::paper(), 2);
        let requests = trace(25, 1e-4);
        let a = simulate_fleet(&cfg, &requests);
        let b = simulate_fleet(&cfg, &requests);
        assert_eq!(a, b);
    }

    #[test]
    fn engines_parse_and_label_round_trip() {
        for e in [FleetEngine::StepGranular, FleetEngine::EventDriven] {
            assert_eq!(FleetEngine::parse(e.label()), Some(e));
        }
        assert_eq!(FleetEngine::parse("nope"), None);
    }

    #[test]
    fn event_engine_matches_step_engine_on_a_sharded_fleet() {
        let requests = trace(40, 1e-5);
        let step = simulate_fleet(&FleetConfig::sharded(SystemConfig::paper(), 3), &requests);
        let mut cfg = FleetConfig::sharded(SystemConfig::paper(), 3);
        cfg.engine = FleetEngine::EventDriven;
        let event = simulate_fleet(&cfg, &requests);
        assert_eq!(step.metrics, event.metrics);
        assert_eq!(step.completions, event.completions);
        assert_eq!(step.shed, event.shed);
        assert_eq!(step.events_processed, event.events_processed);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_rejected() {
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 1.0, QosClass::standard(), task(), 1, 1);
        let b = ServeRequest::uniform(1, 0.0, QosClass::standard(), task(), 1, 1);
        let _ = simulate_fleet(&cfg, &[a, b]);
    }

    #[test]
    fn builder_defaults_reproduce_the_single_fifo_baseline() {
        let built = FleetConfig::builder(SystemConfig::paper()).build().expect("valid");
        assert_eq!(built, FleetConfig::single_fifo(SystemConfig::paper()));
        assert_eq!(built.replicas, 1);
        assert!(built.faults.is_empty());
        assert!(built.tenancy.is_none() && built.detector.is_none() && built.sessions.is_none());
        // And the sharded preset is the builder shorthand it documents.
        let sharded = FleetConfig::sharded(SystemConfig::paper(), 3);
        assert_eq!(sharded.replicas, 3);
        assert_eq!(sharded.routing, RoutingPolicy::LeastOutstandingWork);
    }

    #[test]
    fn builder_rejects_zero_replicas_and_malformed_fault_plans() {
        let err = FleetConfig::builder(SystemConfig::paper()).replicas(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoReplicas);
        assert_eq!(err.to_string(), "at least one replica");

        // A crash window naming a replica the fleet does not have.
        let bad = FaultPlan {
            crashes: vec![crate::CrashWindow { replica: 5, down_s: 1.0, up_s: Some(2.0) }],
            ..FaultPlan::none()
        };
        let err = FleetConfig::builder(SystemConfig::paper())
            .replicas(2)
            .faults(bad)
            .build()
            .unwrap_err();
        match &err {
            ConfigError::Faults(FaultPlanError::ReplicaOutOfRange { what, replica }) => {
                assert_eq!((*what, *replica), ("crash", 5));
            }
            other => panic!("expected a fault-plan error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("invalid fault plan:"));
        assert!(std::error::Error::source(&err).is_some(), "Faults keeps its cause");
    }

    #[test]
    fn builder_layers_subsystems_without_disturbing_defaults() {
        let cfg = FleetConfig::builder(SystemConfig::paper())
            .replicas(4)
            .routing(RoutingPolicy::JoinShortestQueue)
            .batch(BatchPolicy::up_to(2))
            .engine(FleetEngine::EventDriven)
            .sessions(SessionPolicy::sticky())
            .build()
            .expect("valid");
        assert_eq!(cfg.replicas, 4);
        assert_eq!(cfg.engine, FleetEngine::EventDriven);
        assert_eq!(cfg.sessions, Some(SessionPolicy::sticky()));
        // Untouched knobs keep the baseline values.
        assert_eq!(cfg.admission, AdmissionPolicy::admit_all());
        assert_eq!(cfg.overload, OverloadControl::off());
        assert!(cfg.tenancy.is_none() && cfg.detector.is_none());
    }

    #[test]
    fn session_policy_presets_differ_only_in_scheduling() {
        assert_eq!(SessionPolicy::sticky(), SessionPolicy { sticky: true, account_state: true });
        assert_eq!(
            SessionPolicy::stateless(),
            SessionPolicy { sticky: false, account_state: false }
        );
    }

    #[test]
    #[should_panic(expected = "session-tagged requests require a session policy")]
    fn session_requests_without_a_policy_are_rejected() {
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let turn =
            crate::SessionTurn { session: 0, turn: 0, decode_tokens: 8, reclusters: 0, last: true };
        let r =
            ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 2, 4).with_session(turn);
        let _ = simulate_fleet(&cfg, &[r]);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn nan_arrival_rejected_up_front_rather_than_livelocking() {
        // A NaN timestamp defeats every `<=` the event loop orders by;
        // the sortedness precondition must reject it before the loop
        // starts (NaN makes the windows comparison false).
        let cfg = FleetConfig::single_fifo(SystemConfig::paper());
        let a = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 1, 1);
        let mut b = ServeRequest::uniform(1, 1.0, QosClass::standard(), task(), 1, 1);
        b.arrival_s = f64::NAN;
        let _ = simulate_fleet(&cfg, &[a, b]);
    }
}
