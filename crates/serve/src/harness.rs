//! The redesigned sweep-harness API: one [`SweepSpec`] builder and one
//! [`Harness`] runner shared by every sweep binary.
//!
//! Before this module, `serve_sweep`, `degradation_sweep` and
//! `brownout_sweep` each hand-rolled ~400 lines of identical plumbing:
//! an `Args::parse` walk, `parse_num`/`parse_list`, usage text,
//! error-to-stderr/non-zero-exit handling, an aligned stdout table, CSV
//! and JSON writers, and a Chrome-trace export pass. The harness owns all
//! of it, and adds the one thing none of them had: **parallel grid
//! evaluation** on the `cta-parallel` work-stealing pool.
//!
//! A sweep binary now reduces to three pieces:
//!
//! 1. a [`SweepSpec`] naming the experiment, its usage text and its
//!    CSV/stdout columns;
//! 2. a flag-matcher closure turning a [`FlagParser`] walk into the
//!    binary's own argument struct (the harness strips and parses the
//!    shared `--jobs N` / `--kernels P` / `--pool-trace <path>` flags
//!    first);
//! 3. an `eval` closure mapping one grid point to its table rows and
//!    JSON points ([`PointOutput`]).
//!
//! # Determinism contract
//!
//! [`Harness::run_grid`] fans the grid across the pool but performs an
//! **ordered reduction**: `par_map` returns per-point outputs in
//! submission order, and rows/points are emitted from that ordered
//! vector. Because every sweep point seeds its own RNGs from the CLI
//! seed (never from run order or thread identity), the CSV, JSON, stdout
//! table and trace bytes are identical at any `--jobs` value — the
//! golden-file pins from the overload-control era pass unchanged under
//! full parallelism. Wall-clock pool occupancy (`--pool-trace`) is the
//! only nondeterministic output, and it is written to its own file.

use std::process::ExitCode;

use cta_bench::{banner, FlagParser, JsonReport, JsonValue, Table};
use cta_parallel::{Parallelism, ThreadPool};
use cta_telemetry::{
    chrome_trace_json, pool_occupancy_events, validate_chrome_trace, AggregateReport,
    RingBufferSink,
};
use cta_tensor::KernelPolicy;

/// Ring capacity for `--trace` exports: ~262k events (~15 MB
/// preallocated); longer runs overwrite the oldest window and report the
/// drop count.
pub const TRACE_CAPACITY: usize = 1 << 18;

/// Declarative description of one sweep experiment: its name (which
/// doubles as the `results/<name>.{csv,json}` stem), usage text, and
/// CSV/stdout column layout.
///
/// Build it fluently, then hand control to [`SweepSpec::main`]:
///
/// ```no_run
/// use cta_serve::harness::{PointOutput, SweepSpec};
///
/// SweepSpec::new("demo_sweep")
///     .usage("usage: demo_sweep [--jobs N]")
///     .columns(&["x", "y"])
///     .main(std::env::args().skip(1), |_flags| Ok(()), |h| {
///         h.run_grid("Demo", &[1, 2, 3], |&x| {
///             let mut out = PointOutput::new();
///             out.row(vec![x.to_string(), (x * x).to_string()]);
///             out
///         }, |_json| {});
///     });
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    name: &'static str,
    usage: &'static str,
    columns: &'static [&'static str],
}

impl SweepSpec {
    /// Starts a spec for the experiment `name`.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self { name, usage: "", columns: &[] }
    }

    /// Sets the usage text printed to stderr on malformed invocations.
    #[must_use]
    pub fn usage(mut self, usage: &'static str) -> Self {
        self.usage = usage;
        self
    }

    /// Sets the CSV/stdout column layout.
    #[must_use]
    pub fn columns(mut self, columns: &'static [&'static str]) -> Self {
        self.columns = columns;
        self
    }

    /// The experiment name (and `results/` file stem).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The full binary entry point. Strips the shared `--jobs N`,
    /// `--kernels P` and `--pool-trace <path>` flags out of `argv`,
    /// hands the remaining words to `parse`, and on success installs the
    /// requested kernel policy (if any) and runs `run` with the
    /// assembled [`Harness`]. Any parse error is printed as `error: …`
    /// plus the usage text to stderr, and the process exits non-zero.
    pub fn main<A>(
        self,
        argv: impl Iterator<Item = String>,
        parse: impl FnOnce(&mut FlagParser) -> Result<A, String>,
        run: impl FnOnce(&Harness<A>),
    ) -> ExitCode {
        let usage = self.usage;
        match self.parse(argv, parse) {
            Ok(harness) => {
                // Install only here, not in `parse`: tests parse specs
                // in-process and must not flip the process-wide policy.
                if let Some(policy) = harness.kernels {
                    policy.install();
                }
                run(&harness);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{usage}");
                ExitCode::FAILURE
            }
        }
    }

    /// [`SweepSpec::main`] without the process plumbing: parses `argv`
    /// into a [`Harness`] or returns the error message the binary would
    /// print.
    ///
    /// # Errors
    ///
    /// Returns the first malformed-flag message, either from the shared
    /// `--jobs` / `--kernels` / `--pool-trace` handling or from `parse`.
    pub fn parse<A>(
        self,
        argv: impl Iterator<Item = String>,
        parse: impl FnOnce(&mut FlagParser) -> Result<A, String>,
    ) -> Result<Harness<A>, String> {
        let mut jobs = Parallelism::from_env();
        let mut kernels = None;
        let mut pool_trace = None;
        let mut rest = Vec::new();
        let mut it = argv;
        while let Some(word) = it.next() {
            match word.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    jobs = Parallelism::parse_arg(&v)?;
                }
                "--kernels" => {
                    let v = it.next().ok_or("--kernels needs a value")?;
                    kernels = Some(KernelPolicy::parse_arg(&v)?);
                }
                "--pool-trace" => {
                    pool_trace = Some(it.next().ok_or("--pool-trace needs a value")?);
                }
                _ => rest.push(word),
            }
        }
        let mut flags = FlagParser::new(rest);
        let args = parse(&mut flags)?;
        Ok(Harness { spec: self, jobs, kernels, pool_trace, args })
    }
}

/// What one evaluated grid point contributes to the report: zero or more
/// table rows (printed and written to CSV in grid order) and zero or
/// more JSON points (appended to the report's `points` array in the same
/// order).
#[derive(Debug, Default)]
pub struct PointOutput {
    rows: Vec<Vec<String>>,
    points: Vec<JsonValue>,
}

impl PointOutput {
    /// An empty contribution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one table/CSV row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends one JSON point.
    pub fn point(&mut self, value: JsonValue) {
        self.points.push(value);
    }
}

/// A parsed sweep invocation: the spec, the shared parallelism knobs,
/// and the binary's own arguments.
#[derive(Debug)]
pub struct Harness<A> {
    spec: SweepSpec,
    jobs: Parallelism,
    kernels: Option<KernelPolicy>,
    pool_trace: Option<String>,
    args: A,
}

impl<A> Harness<A> {
    /// The binary-specific arguments `parse` produced.
    pub fn args(&self) -> &A {
        &self.args
    }

    /// The worker count for grid evaluation (`--jobs`, `CTA_JOBS`, or
    /// available cores).
    pub fn jobs(&self) -> Parallelism {
        self.jobs
    }

    /// The `--kernels` policy of this invocation, if one was given.
    /// [`SweepSpec::main`] installs it process-wide before running;
    /// `None` leaves the `CTA_KERNELS`/auto default in force.
    pub fn kernels(&self) -> Option<KernelPolicy> {
        self.kernels
    }

    /// Evaluates `grid` on the pool and emits the full report: banner,
    /// aligned stdout table, `results/<name>.csv`, and
    /// `results/<name>.json` (metadata fields from `meta`, then the
    /// collected `points` array).
    ///
    /// `eval` runs once per grid point, possibly concurrently; the
    /// reduction is ordered (see the module docs), so output bytes do
    /// not depend on the worker count. With `--pool-trace <path>` the
    /// per-task wall-clock spans are additionally exported as a
    /// validated Chrome trace of pool occupancy.
    pub fn run_grid<P, F>(
        &self,
        banner_text: &str,
        grid: &[P],
        eval: F,
        meta: impl FnOnce(&mut JsonReport),
    ) where
        P: Sync,
        F: Fn(&P) -> PointOutput + Sync,
    {
        banner(banner_text);
        let mut table = Table::new(self.spec.name, self.spec.columns);
        let (outputs, spans) = ThreadPool::new(self.jobs).par_map_timed(grid, &eval);
        let mut points = Vec::new();
        for output in outputs {
            for cells in &output.rows {
                table.row(cells);
            }
            points.extend(output.points);
        }
        table.save();

        let mut json = JsonReport::new(self.spec.name);
        meta(&mut json);
        json.set("points", JsonValue::Arr(points));
        json.save();

        if let Some(path) = &self.pool_trace {
            let events = pool_occupancy_events(&spans);
            let trace = chrome_trace_json(&events);
            validate_chrome_trace(&trace)
                .unwrap_or_else(|e| panic!("internal: pool occupancy trace invalid: {e}"));
            std::fs::write(path, &trace).unwrap_or_else(|e| panic!("{path}: {e}"));
            println!("pool occupancy — {} tasks over {} workers -> {path}", grid.len(), self.jobs);
        }
    }
}

/// The shared telemetry pass: runs `record` against a preallocated ring
/// buffer, validates the exported Chrome trace, writes it to `path`, and
/// prints the aggregate report under `banner_text` (plus a drop note if
/// the ring wrapped). All three sweeps used to inline this block.
pub fn export_trace(path: &str, banner_text: &str, record: impl FnOnce(&mut RingBufferSink)) {
    let mut sink = RingBufferSink::with_capacity(TRACE_CAPACITY);
    record(&mut sink);
    let events = sink.events();
    let json = chrome_trace_json(&events);
    validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("internal: exported trace invalid: {e}"));
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("{path}: {e}"));

    banner(banner_text);
    print!("{}", AggregateReport::from_events(&events).render(None));
    if sink.dropped() > 0 {
        println!(
            "note: ring buffer wrapped — {} oldest events dropped (capacity {})",
            sink.dropped(),
            sink.capacity()
        );
    }
    println!("open in chrome://tracing or https://ui.perfetto.dev");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn spec_strips_shared_flags_before_binary_parsing() {
        let h = SweepSpec::new("t")
            .parse(words(&["--jobs", "3", "--x", "7", "--pool-trace", "p.json"]), |flags| {
                let mut x = 0usize;
                while let Some(flag) = flags.next_flag() {
                    match flag.as_str() {
                        "--x" => x = flags.value("--x")?.parse().map_err(|_| "bad".to_string())?,
                        other => return Err(format!("unknown flag {other:?}")),
                    }
                }
                Ok(x)
            })
            .expect("valid");
        assert_eq!(h.jobs().get(), 3);
        assert_eq!(*h.args(), 7);
        assert_eq!(h.pool_trace.as_deref(), Some("p.json"));
    }

    #[test]
    fn shared_flag_errors_use_the_common_wording() {
        let parse = |list: &[&str]| SweepSpec::new("t").parse(words(list), |_| Ok(()));
        assert!(parse(&["--jobs"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--pool-trace"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--kernels"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--kernels", "turbo"])
            .unwrap_err()
            .contains("--kernels takes scalar|blocked|simd"));
    }

    #[test]
    fn kernels_flag_is_stripped_and_recorded_without_installing() {
        let h =
            SweepSpec::new("t").parse(words(&["--kernels", "blocked"]), |_| Ok(())).expect("valid");
        // Recorded on the harness; installation is main()'s job so that
        // in-process parses stay side-effect-free.
        assert_eq!(h.kernels(), Some(KernelPolicy::Blocked));
        let h = SweepSpec::new("t").parse(words(&[]), |_| Ok(())).expect("valid");
        assert_eq!(h.kernels(), None);
    }

    #[test]
    fn binary_errors_pass_through() {
        let err = SweepSpec::new("t")
            .parse(words(&["--frob"]), |flags| match flags.next_flag() {
                Some(f) => Err(format!("unknown flag {f:?}")),
                None => Ok(()),
            })
            .unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn builder_is_fluent_and_must_use() {
        let spec = SweepSpec::new("demo").usage("usage: demo").columns(&["a"]);
        assert_eq!(spec.name(), "demo");
    }
}
