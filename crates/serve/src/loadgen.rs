//! Open-loop load generators.
//!
//! All generators are seeded and deterministic: the same arguments always
//! produce the same trace, which is what makes fleet sweeps reproducible
//! and lets the property tests assert bitwise-identical reports. Three
//! arrival processes cover the evaluation's needs:
//!
//! * [`poisson_requests`] — memoryless arrivals at a constant rate, the
//!   standard open-loop model;
//! * [`mmpp_requests`] — a two-state Markov-modulated Poisson process
//!   (calm/burst), the classic bursty-traffic model that stresses
//!   admission control far harder than a Poisson stream of equal mean
//!   rate;
//! * [`replay_trace`] — adopts a pre-generated `cta-sim` /
//!   `cta-workloads` arrival trace under a service class;
//! * [`session_requests`] — adopts a `cta-workloads` multi-turn session
//!   trace ([`cta_workloads::session_trace`]) as session-tagged decode
//!   requests.

use cta_sim::{AttentionTask, ServingRequest};
use cta_workloads::{session_trace, SessionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{QosClass, ServeRequest, SessionTurn};

/// The request shape every generated arrival carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Service class of every generated request.
    pub class: QosClass,
    /// Head task replicated across the model.
    pub task: AttentionTask,
    /// Layers per request.
    pub layers: usize,
    /// Heads per layer.
    pub heads: usize,
}

impl LoadSpec {
    /// A spec with the standard class.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `heads == 0`.
    pub fn standard(task: AttentionTask, layers: usize, heads: usize) -> Self {
        assert!(layers > 0 && heads > 0, "layers and heads must be positive");
        Self { class: QosClass::standard(), task, layers, heads }
    }
}

/// Parameters of the two-state MMPP burst process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppParams {
    /// Arrival rate in the calm state, requests/second.
    pub calm_rate_rps: f64,
    /// Arrival rate in the burst state, requests/second.
    pub burst_rate_rps: f64,
    /// Probability of switching state after each arrival (geometric
    /// phase lengths with mean `1 / switch_prob` arrivals).
    pub switch_prob: f64,
}

impl MmppParams {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive or `switch_prob` is outside
    /// `(0, 1]`.
    pub fn new(calm_rate_rps: f64, burst_rate_rps: f64, switch_prob: f64) -> Self {
        assert!(calm_rate_rps > 0.0 && burst_rate_rps > 0.0, "rates must be positive");
        assert!(switch_prob > 0.0 && switch_prob <= 1.0, "switch probability must be in (0, 1]");
        Self { calm_rate_rps, burst_rate_rps, switch_prob }
    }
}

/// One exponential inter-arrival sample at `rate` via inverse transform;
/// the uniform is clamped away from 0 so `ln` stays finite.
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() / rate
}

/// A Poisson arrival trace: `count` requests of identical shape with
/// exponential inter-arrival times at `rate_rps`. Ids are `0..count` in
/// arrival order.
///
/// # Panics
///
/// Panics if `count == 0` or `rate_rps <= 0`.
pub fn poisson_requests(
    spec: &LoadSpec,
    count: usize,
    rate_rps: f64,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(count > 0, "at least one request");
    assert!(rate_rps > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..count as u64)
        .map(|id| {
            t += exp_sample(&mut rng, rate_rps);
            ServeRequest::uniform(id, t, spec.class, spec.task, spec.layers, spec.heads)
        })
        .collect()
}

/// A bursty arrival trace from a two-state MMPP: arrivals are exponential
/// at the current state's rate, and the chain flips state with probability
/// [`MmppParams::switch_prob`] after each arrival. The trace starts in the
/// calm state. Ids are `0..count` in arrival order.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn mmpp_requests(
    spec: &LoadSpec,
    count: usize,
    params: MmppParams,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(count > 0, "at least one request");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut bursting = false;
    (0..count as u64)
        .map(|id| {
            let rate = if bursting { params.burst_rate_rps } else { params.calm_rate_rps };
            t += exp_sample(&mut rng, rate);
            if rng.gen_range(0.0f64..1.0) < params.switch_prob {
                bursting = !bursting;
            }
            ServeRequest::uniform(id, t, spec.class, spec.task, spec.layers, spec.heads)
        })
        .collect()
}

/// Why a replayed arrival trace was rejected.
///
/// The fleet runtime assumes arrival times are finite, non-negative and
/// sorted; a trace violating any of these used to slip through silently
/// (a NaN timestamp, say, defeats every `<=` event-ordering comparison)
/// and could wedge or crash the event loop far from the bad input. The
/// replay constructor now rejects such traces up front with the index of
/// the first offending entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceError {
    /// The trace has no requests.
    Empty,
    /// `arrival_s` at this index is NaN or infinite.
    NonFinite {
        /// Index of the offending request in the trace.
        index: usize,
    },
    /// `arrival_s` at this index is negative.
    Negative {
        /// Index of the offending request in the trace.
        index: usize,
    },
    /// `arrival_s` at this index is earlier than its predecessor's.
    NonMonotonic {
        /// Index of the offending request in the trace.
        index: usize,
    },
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "arrival trace is empty"),
            TraceError::NonFinite { index } => {
                write!(f, "arrival time at trace index {index} is not finite")
            }
            TraceError::Negative { index } => {
                write!(f, "arrival time at trace index {index} is negative")
            }
            TraceError::NonMonotonic { index } => {
                write!(f, "arrival time at trace index {index} precedes its predecessor")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Adopts a `cta-sim` arrival trace (e.g. from
/// [`cta_sim::poisson_trace`] or `cta_workloads::case_arrival_trace`)
/// under one service class, assigning ids in trace order.
///
/// # Equal timestamps
///
/// Coincident arrivals are legal (the monotonicity check is `<`, not
/// `<=`): real traces batch and so do replays. Their tie-break is the
/// assigned id — trace order — which both fleet engines honour
/// identically: the step-granular scan admits in index order at a due
/// instant, and the event core orders coincident arrival events by
/// request id ([`cta_events::EventKey`]'s `tie` field). The `engine`
/// integration tests pin that a burst of equal-timestamp arrivals
/// produces bitwise-identical reports on both engines.
///
/// # Errors
///
/// Returns a [`TraceError`] naming the first offending index when the
/// trace is empty or its arrival times are NaN/infinite, negative, or
/// non-monotonic — instead of handing the fleet runtime a trace it would
/// livelock or panic on.
pub fn replay_trace(
    trace: &[ServingRequest],
    class: QosClass,
) -> Result<Vec<ServeRequest>, TraceError> {
    if trace.is_empty() {
        return Err(TraceError::Empty);
    }
    let mut prev = 0.0f64;
    for (index, r) in trace.iter().enumerate() {
        if !r.arrival_s.is_finite() {
            return Err(TraceError::NonFinite { index });
        }
        if r.arrival_s < 0.0 {
            return Err(TraceError::Negative { index });
        }
        if r.arrival_s < prev {
            return Err(TraceError::NonMonotonic { index });
        }
        prev = r.arrival_s;
    }
    Ok(trace
        .iter()
        .enumerate()
        .map(|(id, r)| ServeRequest::from_serving(id as u64, class, r))
        .collect())
}

/// A multi-turn decode-session workload as fleet requests: every turn of
/// [`cta_workloads::session_trace`] becomes a session-tagged request of
/// `spec`'s shape and class, with its expected level-2 re-cluster count
/// derived from the streaming compressor's drift trigger
/// ([`cta_sim::reclusters_for`] at `drift_per_token` /
/// `recluster_threshold`). Ids follow the trace's sorted turn order, so
/// the result satisfies the runtime's arrival-sorted precondition.
///
/// # Panics
///
/// Panics if `drift_per_token < 0` or `recluster_threshold <= 0`.
pub fn session_requests(
    spec: &LoadSpec,
    sessions: &SessionSpec,
    drift_per_token: f64,
    recluster_threshold: f64,
    seed: u64,
) -> Vec<ServeRequest> {
    session_trace(sessions, seed)
        .iter()
        .enumerate()
        .map(|(id, e)| {
            let reclusters = cta_sim::reclusters_for(
                e.decode_tokens as u64,
                drift_per_token,
                recluster_threshold,
            ) as u32;
            ServeRequest::uniform(
                id as u64,
                e.arrival_s,
                spec.class,
                spec.task,
                spec.layers,
                spec.heads,
            )
            .with_session(SessionTurn {
                session: e.session,
                turn: e.turn,
                decode_tokens: e.decode_tokens,
                reclusters,
                last: e.last,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_sim::poisson_trace;

    fn spec() -> LoadSpec {
        LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 2, 4)
    }

    fn sorted(rs: &[ServeRequest]) -> bool {
        rs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s)
    }

    #[test]
    fn poisson_is_sorted_deterministic_and_rate_scaled() {
        let a = poisson_requests(&spec(), 200, 100.0, 42);
        let b = poisson_requests(&spec(), 200, 100.0, 42);
        assert_eq!(a, b);
        assert!(sorted(&a));
        assert_eq!(a.len(), 200);
        assert_eq!(a.last().expect("nonempty").id, 199);
        // Mean inter-arrival should be near 1/rate (loose 3-sigma bound).
        let span = a.last().expect("nonempty").arrival_s;
        assert!((1.0..4.0).contains(&span), "200 arrivals at 100 rps span {span}");
        let c = poisson_requests(&spec(), 200, 100.0, 43);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn mmpp_bursts_tighten_interarrivals() {
        let params = MmppParams::new(10.0, 10_000.0, 0.05);
        let rs = mmpp_requests(&spec(), 400, params, 7);
        assert!(sorted(&rs));
        let gaps: Vec<f64> = rs.windows(2).map(|w| w[1].arrival_s - w[0].arrival_s).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        // Burst phases produce gaps far below the mean: a plain Poisson
        // stream at the mean rate essentially never shows a 100x spread.
        assert!(min < mean / 100.0, "min gap {min} vs mean {mean}");
        assert_eq!(rs, mmpp_requests(&spec(), 400, params, 7));
    }

    #[test]
    fn replay_preserves_arrivals_and_assigns_ids() {
        let s = spec();
        let trace = poisson_trace(20, 50.0, s.task, s.layers, s.heads, 3);
        let rs = replay_trace(&trace, QosClass::batch()).expect("valid trace");
        assert_eq!(rs.len(), 20);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.arrival_s, trace[i].arrival_s);
            assert_eq!(r.layer_tasks, trace[i].layer_tasks);
            assert_eq!(r.class, QosClass::batch());
        }
    }

    #[test]
    fn replay_rejects_malformed_traces_with_typed_errors() {
        let s = spec();
        let mut trace = poisson_trace(5, 50.0, s.task, s.layers, s.heads, 3);
        assert_eq!(replay_trace(&[], QosClass::batch()), Err(TraceError::Empty));

        let good = trace[2].arrival_s;
        trace[2].arrival_s = f64::NAN;
        assert_eq!(
            replay_trace(&trace, QosClass::batch()),
            Err(TraceError::NonFinite { index: 2 })
        );
        trace[2].arrival_s = f64::INFINITY;
        assert_eq!(
            replay_trace(&trace, QosClass::batch()),
            Err(TraceError::NonFinite { index: 2 })
        );
        trace[2].arrival_s = good;

        trace[0].arrival_s = -1.0;
        assert_eq!(replay_trace(&trace, QosClass::batch()), Err(TraceError::Negative { index: 0 }));
        trace[0].arrival_s = 0.0;

        trace[3].arrival_s = trace[2].arrival_s / 2.0;
        assert_eq!(
            replay_trace(&trace, QosClass::batch()),
            Err(TraceError::NonMonotonic { index: 3 })
        );
        // Each error renders a human-readable message naming the index.
        assert!(TraceError::NonMonotonic { index: 3 }.to_string().contains("index 3"));
    }

    #[test]
    fn session_requests_tag_turns_and_stay_sorted() {
        let s = spec();
        let sess = SessionSpec::new(10, 5.0, 3.0, 1.0);
        let rs = session_requests(&s, &sess, 0.02, 0.5, 9);
        assert_eq!(rs, session_requests(&s, &sess, 0.02, 0.5, 9));
        assert!(sorted(&rs));
        assert!(rs.iter().enumerate().all(|(i, r)| r.id == i as u64));
        // Re-cluster counts follow the drift trigger: one event per
        // ceil(threshold / drift) = 25 decoded tokens.
        for r in &rs {
            let t = r.session.expect("every request is session-tagged");
            assert_eq!(t.reclusters as u64, t.decode_tokens as u64 / 25);
        }
        // Exactly one final turn per session.
        let finals = rs.iter().filter(|r| r.session.expect("tagged").last).count();
        assert_eq!(finals, 10);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn mmpp_rejects_zero_rate() {
        let _ = MmppParams::new(0.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "switch probability")]
    fn mmpp_rejects_bad_switch_prob() {
        let _ = MmppParams::new(1.0, 2.0, 0.0);
    }
}
