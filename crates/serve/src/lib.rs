#![deny(missing_docs)]

//! `cta-serve`: a request-level serving runtime over the CTA system model.
//!
//! `cta-sim` answers "how fast does one request run on the pool?"
//! (`CtaSystem::run_layers`) and carries a deliberately minimal FIFO
//! serving path (`cta_sim::simulate_serving`). This crate answers the
//! deployment question — what does a *fleet* of CTA pools sustain under
//! an open-loop arrival process? — with three mechanisms the FIFO path
//! lacks:
//!
//! * **continuous batching** ([`BatchPolicy`]) — replicas advance in
//!   layer steps and merge the current layers of all active requests into
//!   one dispatch, so short requests are never stuck behind long ones for
//!   more than a layer;
//! * **multi-replica sharding** ([`RoutingPolicy`]) — N independent
//!   `CtaSystem` instances behind round-robin, join-shortest-queue, or
//!   least-outstanding-work routing;
//! * **SLO-aware admission** ([`AdmissionPolicy`]) — queue-depth shedding
//!   with priority exemptions plus deadline shedding driven by the
//!   memoised [`CostModel`];
//! * **closed-loop overload control** ([`OverloadControl`]) — per-replica
//!   quality brownout over a calibrated ladder of cluster-budget
//!   operating points ([`BrownoutLadder`]), circuit breakers over the
//!   fault model ([`CircuitBreaker`]), and hedged dispatch for
//!   deadline-critical classes ([`HedgePolicy`]). Entirely off by
//!   default ([`OverloadControl::off`]); the disabled path is bitwise
//!   identical to the pre-overload runtime.
//! * **multi-tenant isolation** ([`TenancyConfig`]) — a deficit-round-
//!   robin / weighted-fair queue stage in front of admission, per-tenant
//!   token-bucket quotas ([`ShedReason::QuotaExceeded`]), and a
//!   deterministic autoscaler with warmup-charged scale-ups. Off by
//!   default (`tenancy: None` is bitwise the single-tenant fleet, and a
//!   one-tenant equal-weight DRR configuration is pinned bitwise against
//!   it); per-tenant goodput/latency/fairness lands in
//!   [`FleetMetrics::tenancy`].
//!
//! Everything is deterministic: seeded load generators
//! ([`poisson_requests`], [`mmpp_requests`], [`replay_trace`]),
//! tie-broken event ordering ([`simulate_fleet`]), and exact (not
//! sampled) percentile metrics ([`FleetMetrics`]). Configured down to one replica
//! with batching off and admission disabled ([`FleetConfig::single_fifo`]),
//! [`simulate_fleet`] reproduces `cta_sim::simulate_serving` exactly —
//! the `equivalence` integration test pins that.
//!
//! The sweep binaries (`serve_sweep`, `degradation_sweep`,
//! `brownout_sweep`) are thin adapters over [`sweeps`], which in turn
//! builds on the shared [`harness`] API: one [`harness::SweepSpec`]
//! declaration per experiment, parallel grid evaluation on the
//! `cta-parallel` pool (`--jobs`), and an ordered reduction that keeps
//! every output byte independent of the worker count.
//!
//! # Example
//!
//! ```
//! use cta_serve::{simulate_fleet, FleetConfig, LoadSpec, poisson_requests};
//! use cta_sim::{AttentionTask, SystemConfig};
//!
//! let spec = LoadSpec::standard(
//!     AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 2, 4);
//! let requests = poisson_requests(&spec, 20, 500.0, 1);
//! let report = simulate_fleet(&FleetConfig::sharded(SystemConfig::paper(), 2), &requests);
//! assert_eq!(report.metrics.completed + report.metrics.shed, 20);
//! ```

mod admission;
mod cost;
mod detector;
mod engine;
mod fault;
pub mod harness;
mod loadgen;
mod metrics;
mod overload;
mod replica;
mod request;
mod routing;
mod runtime;
pub mod sweeps;

pub use admission::{AdmissionPolicy, ShedReason};
pub use cost::CostModel;
pub use detector::{DetectorPolicy, DetectorStats};
pub use engine::FleetEngine;
pub use fault::{
    CrashWindow, FaultPlan, FaultPlanError, GrayFailure, LinkStall, Partition, RetryPolicy,
    Slowdown, ZoneOutage,
};
pub use harness::{Harness, PointOutput, SweepSpec};
pub use loadgen::{
    mmpp_requests, poisson_requests, replay_trace, session_requests, LoadSpec, MmppParams,
    TraceError,
};
pub use metrics::{FleetMetrics, OverloadStats, SessionStats};
pub use overload::{
    BreakerEvent, BreakerPolicy, BreakerState, BrownoutConfig, BrownoutController, BrownoutLadder,
    BrownoutLevel, CircuitBreaker, ControllerPolicy, HedgePolicy, OverloadControl, Transition,
    MAX_BROWNOUT_LEVELS,
};
pub use replica::{BatchPolicy, Completion};
pub use request::{QosClass, ServeRequest, SessionTurn};
pub use routing::RoutingPolicy;
pub use runtime::{
    simulate_fleet, simulate_fleet_traced, ConfigError, FleetConfig, FleetConfigBuilder,
    FleetReport, SessionPolicy, Shed,
};

pub use cta_tenancy::{
    AutoscalePolicy, Backpressure, QuotaPolicy, SchedulerPolicy, TenancyConfig, TenancyStats,
    TenantBreakdown,
};
