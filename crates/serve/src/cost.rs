//! Memoised per-task cost estimation.
//!
//! Scheduling decisions (routing, admission, batch assembly) need task
//! costs *without* re-running the cycle-level simulator on every dispatch.
//! [`cta_sim::CtaSystem::head_cost`] depends only on the task shape and
//! the hardware configuration, so a fleet of identical-configuration
//! replicas can share one memo: each distinct `AttentionTask` shape is
//! simulated exactly once per sweep, no matter how many requests,
//! replicas, or layer dispatches reference it.

use std::collections::HashMap;

use cta_sim::{AttentionTask, CtaSystem, LayerStep, PhaseSplit, TaskCost};

use crate::ServeRequest;

/// A memo of per-task costs for one hardware configuration.
///
/// All replicas in a [`FleetConfig`](crate::FleetConfig) share the same
/// [`cta_sim::SystemConfig`], so the cache is keyed by task shape alone.
#[derive(Debug, Default, Clone)]
pub struct CostModel {
    cache: HashMap<AttentionTask, TaskCost>,
    /// Per-shape phase splits, filled lazily and only when telemetry asks
    /// for them (the untraced hot path never touches this map).
    phases: HashMap<AttentionTask, PhaseSplit>,
}

impl CostModel {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct task shapes simulated so far.
    pub fn distinct_shapes(&self) -> usize {
        self.cache.len()
    }

    /// The cost of one head task, simulating it on first sight.
    pub fn head(&mut self, system: &CtaSystem, task: &AttentionTask) -> TaskCost {
        *self.cache.entry(*task).or_insert_with(|| system.head_cost(task))
    }

    /// The wall-clock phase split of one head task, scheduling it on first
    /// sight. Used by telemetry to lay phase spans out inside a layer
    /// step; memoised separately from [`head`](Self::head) so untraced
    /// runs never pay for it.
    pub fn phase_split(&mut self, system: &CtaSystem, task: &AttentionTask) -> PhaseSplit {
        *self.phases.entry(*task).or_insert_with(|| system.head_phase_split(task))
    }

    /// Executes one layer dispatch through
    /// [`CtaSystem::step_layer_costed`] using cached head costs.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn step_layer(&mut self, system: &CtaSystem, tasks: &[AttentionTask]) -> LayerStep {
        let costs: Vec<TaskCost> = tasks.iter().map(|t| self.head(system, t)).collect();
        system.step_layer_costed(tasks, &costs)
    }

    /// Estimated *solo* service time of a request on an idle replica: the
    /// one-time weight upload plus every layer's step time, with no
    /// batching. Under continuous batching the realised service time can
    /// only be this or longer (merging head tasks never shortens a layer's
    /// critical path), so the estimate is a valid admissibility lower
    /// bound.
    pub fn request_service_s(&mut self, system: &CtaSystem, request: &ServeRequest) -> f64 {
        system.weight_upload_s()
            + request
                .layer_tasks
                .iter()
                .map(|tasks| self.step_layer(system, tasks).elapsed_s)
                .sum::<f64>()
    }

    /// Estimated remaining service of a request whose first `cursor`
    /// layers have already been dispatched (weight upload counted only at
    /// `cursor == 0`).
    pub fn remaining_service_s(
        &mut self,
        system: &CtaSystem,
        request: &ServeRequest,
        cursor: usize,
    ) -> f64 {
        let upload = if cursor == 0 { system.weight_upload_s() } else { 0.0 };
        upload
            + request
                .layer_tasks
                .iter()
                .skip(cursor)
                .map(|tasks| self.step_layer(system, tasks).elapsed_s)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::SystemConfig;

    fn system() -> CtaSystem {
        CtaSystem::new(SystemConfig::paper())
    }

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    #[test]
    fn memo_simulates_each_shape_once() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 6, 16);
        let _ = cost.request_service_s(&sys, &r);
        assert_eq!(cost.distinct_shapes(), 1);
        let other = AttentionTask::from_counts(256, 256, 64, 80, 70, 30, 6);
        let _ = cost.head(&sys, &other);
        assert_eq!(cost.distinct_shapes(), 2);
    }

    #[test]
    fn cached_costs_match_direct_simulation() {
        let sys = system();
        let mut cost = CostModel::new();
        assert_eq!(cost.head(&sys, &task()), sys.head_cost(&task()));
        // Second lookup hits the memo and must agree.
        assert_eq!(cost.head(&sys, &task()), sys.head_cost(&task()));
    }

    #[test]
    fn solo_estimate_equals_run_layers_total() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 4, 12);
        let est = cost.request_service_s(&sys, &r);
        let run = sys.run_layers(&r.layer_tasks);
        assert!((est - run.total_s).abs() < 1e-15, "est {est} vs run {}", run.total_s);
    }

    #[test]
    fn remaining_service_decreases_with_cursor() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 4, 12);
        let full = cost.remaining_service_s(&sys, &r, 0);
        let half = cost.remaining_service_s(&sys, &r, 2);
        let none = cost.remaining_service_s(&sys, &r, 4);
        assert!(full > half && half > none);
        assert_eq!(none, 0.0);
        assert_eq!(full, cost.request_service_s(&sys, &r));
    }
}
