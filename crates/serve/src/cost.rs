//! Memoised per-task cost estimation.
//!
//! Scheduling decisions (routing, admission, batch assembly) need task
//! costs *without* re-running the cycle-level simulator on every dispatch.
//! [`cta_sim::CtaSystem::head_cost`] depends only on the task shape, the
//! hardware configuration, and — since the brownout subsystem — the
//! operating point the dispatching replica runs at, so a fleet of
//! identical-configuration replicas can share one memo: each distinct
//! `(operating point, AttentionTask)` pair is simulated exactly once per
//! sweep, no matter how many requests, replicas, or layer dispatches
//! reference it.
//!
//! The key carries the operating-point *level* explicitly rather than the
//! degraded shape: two replicas at different brownout levels can dispatch
//! the same nominal shape and must never read each other's memo entry
//! (level 1's cheaper cost for level 0's dispatch would corrupt every
//! estimate downstream). Level 0 is always the undegraded baseline, so
//! the pre-brownout entry points delegate to it unchanged.

use std::collections::HashMap;

use cta_sim::{AttentionTask, CtaSystem, LayerStep, PhaseSplit, TaskCost};

use crate::{ServeRequest, SessionTurn};

/// A memo of per-task costs for one hardware configuration.
///
/// All replicas in a [`FleetConfig`](crate::FleetConfig) share the same
/// [`cta_sim::SystemConfig`], so the cache is keyed by (brownout level,
/// task shape). `scale` is the level's cluster-budget scale; the memo
/// trusts the caller to pass the same scale for the same level (the
/// runtime derives both from one [`BrownoutLadder`](crate::BrownoutLadder)).
#[derive(Debug, Default, Clone)]
pub struct CostModel {
    cache: HashMap<(u8, AttentionTask), TaskCost>,
    /// Per-(level, shape) phase splits, filled lazily and only when
    /// telemetry asks for them (the untraced hot path never touches this
    /// map).
    phases: HashMap<(u8, AttentionTask), PhaseSplit>,
    /// Decode-segment costs, keyed by the full decode shape: the
    /// steady-state prefix task plus the segment's token and re-cluster
    /// counts. Only session-tagged requests touch this map.
    decode: HashMap<(AttentionTask, u32, u32), TaskCost>,
}

impl CostModel {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (operating point, task shape) pairs simulated so
    /// far.
    pub fn distinct_shapes(&self) -> usize {
        self.cache.len()
    }

    /// The cost of one head task at the baseline operating point,
    /// simulating it on first sight.
    pub fn head(&mut self, system: &CtaSystem, task: &AttentionTask) -> TaskCost {
        self.head_at(system, 0, 1.0, task)
    }

    /// The cost of one head task at operating point `level` whose
    /// cluster-budget scale is `scale` (1.0 at level 0). The memo entry is
    /// keyed by `(level, *task)` — the *nominal* shape — so distinct
    /// operating points can never alias.
    pub fn head_at(
        &mut self,
        system: &CtaSystem,
        level: u8,
        scale: f64,
        task: &AttentionTask,
    ) -> TaskCost {
        *self.cache.entry((level, *task)).or_insert_with(|| {
            if scale == 1.0 {
                system.head_cost(task)
            } else {
                system.head_cost(&task.with_budget_scale(scale))
            }
        })
    }

    /// The wall-clock phase split of one head task at the baseline
    /// operating point, scheduling it on first sight. Used by telemetry to
    /// lay phase spans out inside a layer step; memoised separately from
    /// [`head`](Self::head) so untraced runs never pay for it.
    pub fn phase_split(&mut self, system: &CtaSystem, task: &AttentionTask) -> PhaseSplit {
        self.phase_split_at(system, 0, 1.0, task)
    }

    /// [`phase_split`](Self::phase_split) at operating point `level` /
    /// budget scale `scale`.
    pub fn phase_split_at(
        &mut self,
        system: &CtaSystem,
        level: u8,
        scale: f64,
        task: &AttentionTask,
    ) -> PhaseSplit {
        *self.phases.entry((level, *task)).or_insert_with(|| {
            if scale == 1.0 {
                system.head_phase_split(task)
            } else {
                system.head_phase_split(&task.with_budget_scale(scale))
            }
        })
    }

    /// The cost of one head's decode segment: `turn.decode_tokens`
    /// incremental steps plus `turn.reclusters` level-2 rebuilds at the
    /// steady-state prefix described by `task`
    /// ([`CtaSystem::decode_head_cost`]). Memoised by the full decode
    /// shape, so two turns of equal length at the same prefix simulate
    /// once.
    pub fn decode_head(
        &mut self,
        system: &CtaSystem,
        task: &AttentionTask,
        turn: &SessionTurn,
    ) -> TaskCost {
        *self.decode.entry((*task, turn.decode_tokens, turn.reclusters)).or_insert_with(|| {
            system.decode_head_cost(task, turn.decode_tokens as u64, turn.reclusters as u64)
        })
    }

    /// Executes one layer dispatch through
    /// [`CtaSystem::step_layer_costed`] using cached baseline head costs.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn step_layer(&mut self, system: &CtaSystem, tasks: &[AttentionTask]) -> LayerStep {
        let costs: Vec<TaskCost> = tasks.iter().map(|t| self.head(system, t)).collect();
        system.step_layer_costed(tasks, &costs)
    }

    /// [`step_layer`](Self::step_layer) priced as a decode segment: every
    /// head advances `turn.decode_tokens` incremental tokens instead of
    /// recompressing its prefix.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn step_layer_decode(
        &mut self,
        system: &CtaSystem,
        tasks: &[AttentionTask],
        turn: &SessionTurn,
    ) -> LayerStep {
        let costs: Vec<TaskCost> =
            tasks.iter().map(|t| self.decode_head(system, t, turn)).collect();
        system.step_layer_costed(tasks, &costs)
    }

    /// Seconds a replica needs to rebuild a session's compression state
    /// from scratch: the compression phase of every head of every layer
    /// (the linears and the query loop are not re-run by a re-prefill).
    /// This is what a crash-evicted or re-routed session pays before its
    /// next decode turn can run.
    pub fn session_prefill_s(&mut self, system: &CtaSystem, request: &ServeRequest) -> f64 {
        request
            .layer_tasks
            .iter()
            .flatten()
            .map(|t| self.phase_split(system, t).compression_s)
            .sum()
    }

    /// Estimated *solo* service time of a request on an idle replica at
    /// the baseline operating point: the one-time weight upload plus every
    /// layer's step time, with no batching. Under continuous batching the
    /// realised service time can only be this or longer (merging head
    /// tasks never shortens a layer's critical path), so the estimate is a
    /// valid admissibility lower bound. Degraded replicas run *faster*
    /// than this, so the bound stays valid fleet-wide under brownout.
    pub fn request_service_s(&mut self, system: &CtaSystem, request: &ServeRequest) -> f64 {
        if let Some(turn) = request.session {
            return system.weight_upload_s()
                + request
                    .layer_tasks
                    .iter()
                    .map(|tasks| self.step_layer_decode(system, tasks, &turn).elapsed_s)
                    .sum::<f64>();
        }
        system.weight_upload_s()
            + request
                .layer_tasks
                .iter()
                .map(|tasks| self.step_layer(system, tasks).elapsed_s)
                .sum::<f64>()
    }

    /// Estimated remaining service of a request whose first `cursor`
    /// layers have already been dispatched (weight upload counted only at
    /// `cursor == 0`).
    pub fn remaining_service_s(
        &mut self,
        system: &CtaSystem,
        request: &ServeRequest,
        cursor: usize,
    ) -> f64 {
        let upload = if cursor == 0 { system.weight_upload_s() } else { 0.0 };
        if let Some(turn) = request.session {
            return upload
                + request
                    .layer_tasks
                    .iter()
                    .skip(cursor)
                    .map(|tasks| self.step_layer_decode(system, tasks, &turn).elapsed_s)
                    .sum::<f64>();
        }
        upload
            + request
                .layer_tasks
                .iter()
                .skip(cursor)
                .map(|tasks| self.step_layer(system, tasks).elapsed_s)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::SystemConfig;

    fn system() -> CtaSystem {
        CtaSystem::new(SystemConfig::paper())
    }

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    #[test]
    fn memo_simulates_each_shape_once() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 6, 16);
        let _ = cost.request_service_s(&sys, &r);
        assert_eq!(cost.distinct_shapes(), 1);
        let other = AttentionTask::from_counts(256, 256, 64, 80, 70, 30, 6);
        let _ = cost.head(&sys, &other);
        assert_eq!(cost.distinct_shapes(), 2);
    }

    #[test]
    fn cached_costs_match_direct_simulation() {
        let sys = system();
        let mut cost = CostModel::new();
        assert_eq!(cost.head(&sys, &task()), sys.head_cost(&task()));
        // Second lookup hits the memo and must agree.
        assert_eq!(cost.head(&sys, &task()), sys.head_cost(&task()));
    }

    #[test]
    fn operating_points_get_distinct_cache_entries() {
        // The satellite guarantee: the same nominal shape at two operating
        // points yields two distinct cached costs — a degraded replica can
        // never read (or poison) the baseline memo.
        let sys = system();
        let mut cost = CostModel::new();
        let t = task();
        let baseline = cost.head_at(&sys, 0, 1.0, &t);
        let degraded = cost.head_at(&sys, 2, 0.6, &t);
        assert_eq!(cost.distinct_shapes(), 2, "one entry per operating point");
        assert!(
            degraded.latency_s < baseline.latency_s,
            "smaller budgets must be cheaper: {} vs {}",
            degraded.latency_s,
            baseline.latency_s
        );
        // Both entries stay live and exact after interleaved lookups.
        assert_eq!(cost.head_at(&sys, 0, 1.0, &t), baseline);
        assert_eq!(cost.head_at(&sys, 2, 0.6, &t), degraded);
        assert_eq!(cost.head_at(&sys, 2, 0.6, &t), sys.head_cost(&t.with_budget_scale(0.6)));
        assert_eq!(cost.distinct_shapes(), 2, "lookups must hit the memo");
    }

    #[test]
    fn degraded_phase_splits_do_not_alias_baseline() {
        let sys = system();
        let mut cost = CostModel::new();
        let t = task();
        let base = cost.phase_split(&sys, &t);
        let deg = cost.phase_split_at(&sys, 1, 0.5, &t);
        assert_eq!(base, sys.head_phase_split(&t));
        assert_eq!(deg, sys.head_phase_split(&t.with_budget_scale(0.5)));
    }

    #[test]
    fn solo_estimate_equals_run_layers_total() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 4, 12);
        let est = cost.request_service_s(&sys, &r);
        let run = sys.run_layers(&r.layer_tasks);
        assert!((est - run.total_s).abs() < 1e-15, "est {est} vs run {}", run.total_s);
    }

    #[test]
    fn decode_turns_are_cheaper_than_prefill_and_memoise() {
        let sys = system();
        let mut cost = CostModel::new();
        let turn =
            SessionTurn { session: 0, turn: 1, decode_tokens: 4, reclusters: 0, last: false };
        // Compute-heavy shape (few queries, many keys): the layer step is
        // critical-path-bound, so the decode discount is visible in
        // elapsed time (a transfer-bound shape would tie — transfers are
        // identical either way under the paper config's overlap). The turn
        // is short and re-cluster-free: each incremental token still pays
        // a PAG pass over the whole 512-token prefix, so long segments —
        // and any level-2 rebuild — legitimately exceed one prefill.
        let heavy = AttentionTask::from_counts(16, 512, 64, 8, 180, 40, 6);
        let prefill = ServeRequest::uniform(0, 0.0, QosClass::standard(), heavy, 4, 8);
        let decode = prefill.clone().with_session(turn);
        let full = cost.request_service_s(&sys, &prefill);
        let inc = cost.request_service_s(&sys, &decode);
        assert!(inc < full, "decode {inc} must undercut prefill {full}");
        // The decode memo holds exactly one entry and agrees with the
        // direct simulation.
        assert_eq!(cost.decode_head(&sys, &task(), &turn), sys.decode_head_cost(&task(), 4, 0));
        // Cursor math matches the batch path's.
        assert_eq!(cost.remaining_service_s(&sys, &decode, 0), inc);
        assert_eq!(cost.remaining_service_s(&sys, &decode, 4), 0.0);
        assert!(cost.remaining_service_s(&sys, &decode, 2) < inc);
    }

    #[test]
    fn session_prefill_is_the_compression_share_of_the_model() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 3, 4);
        let prefill = cost.session_prefill_s(&sys, &r);
        let per_head = sys.head_phase_split(&task()).compression_s;
        assert!((prefill - 12.0 * per_head).abs() < 1e-15);
        assert!(prefill > 0.0);
        assert!(prefill < cost.request_service_s(&sys, &r), "re-prefill skips linears + queries");
    }

    #[test]
    fn remaining_service_decreases_with_cursor() {
        let sys = system();
        let mut cost = CostModel::new();
        let r = ServeRequest::uniform(0, 0.0, QosClass::standard(), task(), 4, 12);
        let full = cost.remaining_service_s(&sys, &r, 0);
        let half = cost.remaining_service_s(&sys, &r, 2);
        let none = cost.remaining_service_s(&sys, &r, 4);
        assert!(full > half && half > none);
        assert_eq!(none, 0.0);
        assert_eq!(full, cost.request_service_s(&sys, &r));
    }
}
