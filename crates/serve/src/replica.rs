//! One replica: a [`CtaSystem`] pool with a priority queue and a
//! continuous-batching execution loop.
//!
//! Execution advances in *layer steps*: at every step the replica merges
//! the current-layer head tasks of all active requests into one
//! [`CtaSystem::step_layer_costed`] dispatch. Layer boundaries are the
//! batching points — queued requests join the active set there (up to
//! [`BatchPolicy::max_active_requests`]) and finished requests leave, so
//! a long request never blocks a short one for more than one layer.

use cta_sim::{AttentionTask, CtaSystem, TaskCost};

use crate::{CostModel, ServeRequest};

/// Continuous-batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum requests whose layers may be merged into one dispatch.
    /// `1` disables batching (strict one-request-at-a-time service).
    pub max_active_requests: usize,
}

impl BatchPolicy {
    /// No batching: one request in flight per replica at a time.
    pub fn off() -> Self {
        Self { max_active_requests: 1 }
    }

    /// Batch up to `n` concurrent requests per replica.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn up_to(n: usize) -> Self {
        assert!(n > 0, "batch width must be positive");
        Self { max_active_requests: n }
    }
}

/// A request waiting in a replica queue.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub request: ServeRequest,
    /// Solo service estimate, cached at admission for routing decisions.
    pub est_service_s: f64,
}

/// A request being served (its next layer is `cursor`).
#[derive(Debug, Clone)]
pub(crate) struct Active {
    pub request: ServeRequest,
    pub cursor: usize,
}

/// A finished request, as reported by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Class name of the request.
    pub class: &'static str,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Completion time, seconds.
    pub finish_s: f64,
    /// Which replica served it.
    pub replica: usize,
    /// Whether the class deadline (if any) was met.
    pub deadline_met: Option<bool>,
}

impl Completion {
    /// End-to-end latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// One replica's mutable serving state.
#[derive(Debug, Clone)]
pub(crate) struct Replica {
    pub index: usize,
    pub system: CtaSystem,
    /// Time up to which the replica's schedule is committed.
    pub clock: f64,
    /// Total wall-clock time spent executing steps.
    pub busy_s: f64,
    /// Queue ordered by (priority desc, arrival asc, id asc).
    pub queue: Vec<Pending>,
    pub active: Vec<Active>,
    pub completed: usize,
}

impl Replica {
    pub fn new(index: usize, system: CtaSystem) -> Self {
        Self { index, system, clock: 0.0, busy_s: 0.0, queue: Vec::new(), active: Vec::new(), completed: 0 }
    }

    /// Requests queued but not yet running.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests queued or running.
    pub fn load(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// Estimated seconds of work the replica still owes as of `now`:
    /// committed schedule beyond `now`, plus remaining layers of active
    /// requests, plus solo estimates of everything queued.
    pub fn outstanding_s(&mut self, cost: &mut CostModel, now: f64) -> f64 {
        let committed = (self.clock - now).max(0.0);
        let active: f64 = self
            .active
            .iter()
            .map(|a| cost.remaining_service_s(&self.system, &a.request, a.cursor))
            .sum();
        let queued: f64 = self.queue.iter().map(|p| p.est_service_s).sum();
        committed + active + queued
    }

    /// Inserts into the queue keeping (priority desc, arrival asc, id asc)
    /// order.
    pub fn enqueue(&mut self, pending: Pending) {
        let key = |p: &Pending| {
            (core::cmp::Reverse(p.request.class.priority), p.request.arrival_s, p.request.id)
        };
        let pos = self
            .queue
            .binary_search_by(|probe| {
                let (ap, aa, ai) = key(probe);
                let (bp, ba, bi) = key(&pending);
                ap.cmp(&bp).then(aa.partial_cmp(&ba).expect("finite arrivals")).then(ai.cmp(&bi))
            })
            .unwrap_or_else(|e| e);
        self.queue.insert(pos, pending);
    }

    /// When the replica will next dispatch a layer step, or `None` if it
    /// has no work.
    pub fn next_step_time(&self) -> Option<f64> {
        if !self.active.is_empty() {
            return Some(self.clock);
        }
        self.queue
            .iter()
            .map(|p| p.request.arrival_s)
            .min_by(|a, b| a.partial_cmp(b).expect("finite arrivals"))
            .map(|earliest| self.clock.max(earliest))
    }

    /// Executes one layer step at its scheduled time, appending finished
    /// requests to `completions`. Returns the step's start time.
    ///
    /// # Panics
    ///
    /// Panics if the replica has no work.
    pub fn execute_step(
        &mut self,
        batch: &BatchPolicy,
        cost: &mut CostModel,
        completions: &mut Vec<Completion>,
    ) -> f64 {
        let t0 = self.next_step_time().expect("execute_step needs work");

        // Continuous batching: pull arrived queued requests into the
        // active set at this layer boundary, in queue (priority) order.
        let mut upload_s = 0.0;
        let mut i = 0;
        while self.active.len() < batch.max_active_requests && i < self.queue.len() {
            if self.queue[i].request.arrival_s <= t0 {
                let p = self.queue.remove(i);
                // Each joining request pays its one-time weight upload
                // before its first layer can run.
                upload_s += self.system.weight_upload_s();
                self.active.push(Active { request: p.request, cursor: 0 });
            } else {
                i += 1;
            }
        }
        assert!(!self.active.is_empty(), "step with an empty active set");

        // Merge every active request's current layer into one dispatch.
        let mut merged: Vec<AttentionTask> = Vec::new();
        let mut costs: Vec<TaskCost> = Vec::new();
        for a in &self.active {
            for t in &a.request.layer_tasks[a.cursor] {
                merged.push(*t);
                costs.push(cost.head(&self.system, t));
            }
        }
        let step = self.system.step_layer_costed(&merged, &costs);
        let elapsed = upload_s + step.elapsed_s;
        self.clock = t0 + elapsed;
        self.busy_s += elapsed;

        // Advance cursors; retire finished requests at the step boundary.
        for a in &mut self.active {
            a.cursor += 1;
        }
        let finish = self.clock;
        let index = self.index;
        let mut retired: Vec<Active> = Vec::new();
        self.active.retain_mut(|a| {
            if a.request.remaining_layers(a.cursor) == 0 {
                retired.push(a.clone());
                false
            } else {
                true
            }
        });
        // Deterministic completion order at equal finish time: by id.
        retired.sort_by_key(|a| a.request.id);
        for a in retired {
            let latency = finish - a.request.arrival_s;
            self.completed += 1;
            completions.push(Completion {
                id: a.request.id,
                class: a.request.class.name,
                arrival_s: a.request.arrival_s,
                finish_s: finish,
                replica: index,
                deadline_met: a.request.class.deadline_s.map(|d| latency <= d),
            });
        }
        t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::{AttentionTask, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn replica() -> Replica {
        Replica::new(0, CtaSystem::new(SystemConfig::paper()))
    }

    fn pending(id: u64, arrival: f64, class: QosClass) -> Pending {
        Pending { request: ServeRequest::uniform(id, arrival, class, task(), 2, 4), est_service_s: 0.0 }
    }

    #[test]
    fn queue_orders_priority_then_arrival_then_id() {
        let mut r = replica();
        r.enqueue(pending(3, 5.0, QosClass::batch()));
        r.enqueue(pending(1, 6.0, QosClass::interactive(1.0)));
        r.enqueue(pending(2, 4.0, QosClass::batch()));
        r.enqueue(pending(4, 4.0, QosClass::batch()));
        let ids: Vec<u64> = r.queue.iter().map(|p| p.request.id).collect();
        assert_eq!(ids, vec![1, 2, 4, 3]);
    }

    #[test]
    fn idle_replica_with_no_work_has_no_step() {
        assert_eq!(replica().next_step_time(), None);
    }

    #[test]
    fn step_time_waits_for_earliest_arrival() {
        let mut r = replica();
        r.enqueue(pending(1, 3.0, QosClass::batch()));
        r.enqueue(pending(0, 2.0, QosClass::batch()));
        assert_eq!(r.next_step_time(), Some(2.0));
        r.clock = 10.0;
        assert_eq!(r.next_step_time(), Some(10.0));
    }

    #[test]
    fn unbatched_steps_serve_one_request_to_completion_first() {
        let mut r = replica();
        let mut cost = CostModel::new();
        r.enqueue(pending(0, 0.0, QosClass::standard()));
        r.enqueue(pending(1, 0.0, QosClass::standard()));
        let mut done = Vec::new();
        // 2 layers per request; batching off: 4 steps total, first two
        // steps complete request 0.
        let batch = BatchPolicy::off();
        r.execute_step(&batch, &mut cost, &mut done);
        r.execute_step(&batch, &mut cost, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 0);
        r.execute_step(&batch, &mut cost, &mut done);
        r.execute_step(&batch, &mut cost, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].id, 1);
        assert!(done[1].finish_s > done[0].finish_s);
    }

    #[test]
    fn batching_merges_layers_and_finishes_together() {
        let mut r = replica();
        let mut cost = CostModel::new();
        r.enqueue(pending(0, 0.0, QosClass::standard()));
        r.enqueue(pending(1, 0.0, QosClass::standard()));
        let mut done = Vec::new();
        let batch = BatchPolicy::up_to(4);
        r.execute_step(&batch, &mut cost, &mut done);
        assert_eq!(r.active.len(), 2, "both requests batched");
        r.execute_step(&batch, &mut cost, &mut done);
        assert_eq!(done.len(), 2, "both finish at the final merged layer");
        assert_eq!(done[0].finish_s, done[1].finish_s);
        assert_eq!((done[0].id, done[1].id), (0, 1));
    }

    #[test]
    fn batched_throughput_beats_fifo_on_small_head_counts() {
        // 4-head layers on 12 units: two requests' layers fit side by
        // side, so batching should finish the pair strictly earlier. The
        // task is compute-heavy (few queries, many keys) so the merged
        // step is critical-path-bound, not host-link-bound — a
        // transfer-bound step costs the same merged or not under the
        // paper config's overlapped transfers.
        let heavy = AttentionTask::from_counts(16, 512, 64, 8, 180, 40, 6);
        let run = |batch: BatchPolicy| {
            let mut r = replica();
            let mut cost = CostModel::new();
            for id in 0..2 {
                r.enqueue(Pending {
                    request: ServeRequest::uniform(id, 0.0, QosClass::standard(), heavy, 2, 4),
                    est_service_s: 0.0,
                });
            }
            let mut done = Vec::new();
            while r.next_step_time().is_some() {
                r.execute_step(&batch, &mut cost, &mut done);
            }
            done.iter().map(|c| c.finish_s).fold(0.0, f64::max)
        };
        let fifo = run(BatchPolicy::off());
        let batched = run(BatchPolicy::up_to(2));
        assert!(batched < fifo, "batched {batched} vs fifo {fifo}");
    }
}
