//! One replica: a [`CtaSystem`] pool with a priority queue and a
//! continuous-batching execution loop.
//!
//! Execution advances in *layer steps*: at every step the replica merges
//! the current-layer head tasks of all active requests into one
//! [`CtaSystem::step_layer_costed`] dispatch. Layer boundaries are the
//! batching points — queued requests join the active set there (up to
//! [`BatchPolicy::max_active_requests`]) and finished requests leave, so
//! a long request never blocks a short one for more than one layer.

use cta_sim::{AttentionTask, CtaSystem, TaskCost};
use cta_telemetry::{Module, SpanClass, TraceSink, TrackId};

use crate::{CostModel, FaultPlan, ServeRequest, SessionTurn};

/// Continuous-batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum requests whose layers may be merged into one dispatch.
    /// `1` disables batching (strict one-request-at-a-time service).
    pub max_active_requests: usize,
}

impl BatchPolicy {
    /// No batching: one request in flight per replica at a time.
    pub fn off() -> Self {
        Self { max_active_requests: 1 }
    }

    /// Batch up to `n` concurrent requests per replica.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn up_to(n: usize) -> Self {
        assert!(n > 0, "batch width must be positive");
        Self { max_active_requests: n }
    }
}

/// A request waiting in a replica queue.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub request: ServeRequest,
    /// Solo service estimate, cached at admission for routing decisions.
    pub est_service_s: f64,
    /// Layer to resume from when the request joins a batch: `0` for fresh
    /// arrivals, the last completed layer for crash-evicted requeues
    /// (steps are atomic and the host retains per-layer activations, so
    /// completed layers survive a crash).
    pub resume_cursor: usize,
    /// Requeue attempts consumed so far (0 for fresh arrivals).
    pub attempt: u32,
    /// Session-state rebuild the replica must execute before this
    /// request's first layer (0 for non-session requests and for turns
    /// landing on the replica already holding their session state).
    /// Charged once, at the batch join, like the weight upload.
    pub re_prefill_s: f64,
}

impl Pending {
    /// A freshly admitted request (no crash history, no re-prefill debt).
    pub fn fresh(request: ServeRequest, est_service_s: f64) -> Self {
        Self { request, est_service_s, resume_cursor: 0, attempt: 0, re_prefill_s: 0.0 }
    }
}

/// A request being served (its next layer is `cursor`).
#[derive(Debug, Clone)]
pub(crate) struct Active {
    pub request: ServeRequest,
    pub cursor: usize,
    /// When the request joined the active set (telemetry: end of its
    /// queued interval, start of its serving interval).
    pub joined_s: f64,
    /// Requeue attempts consumed so far.
    pub attempt: u32,
    /// Worst (highest) brownout accuracy loss any of this request's
    /// dispatched layers ran at, percent. 0 on the healthy path.
    pub loss_pct: f64,
}

/// Wall-clock anchors of one executed layer step, as handed to the
/// telemetry emitter: step start, the weight-upload interval ahead of
/// compute, and the session-state rebuild (0 on the healthy path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepTiming {
    pub t0: f64,
    pub upload_s: f64,
    pub re_prefill_s: f64,
}

/// A finished request, as reported by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Class name of the request.
    pub class: &'static str,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Completion time, seconds.
    pub finish_s: f64,
    /// Which replica served it.
    pub replica: usize,
    /// Whether the class deadline (if any) was met.
    pub deadline_met: Option<bool>,
    /// Crash-eviction requeues the request survived before finishing
    /// (0 on the healthy path).
    pub retries: u32,
    /// Worst brownout accuracy loss any of the request's layers was
    /// served at, percent (quality-loss attribution; 0.0 when the serving
    /// replicas stayed at the baseline operating point throughout).
    pub accuracy_loss_pct: f64,
    /// Owning tenant id (0 in single-tenant configurations).
    pub tenant: u32,
    /// Decode-session turn this completion closed (`None` for ordinary
    /// requests). Feeds inter-token latency and session-conservation
    /// accounting.
    pub session: Option<SessionTurn>,
}

impl Completion {
    /// End-to-end latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// One replica's mutable serving state.
#[derive(Debug, Clone)]
pub(crate) struct Replica {
    pub index: usize,
    pub system: CtaSystem,
    /// Time up to which the replica's schedule is committed.
    pub clock: f64,
    /// Total wall-clock time spent executing steps.
    pub busy_s: f64,
    /// Queue ordered by (priority desc, arrival asc, id asc).
    pub queue: Vec<Pending>,
    pub active: Vec<Active>,
    pub completed: usize,
    /// Whether the replica is healthy. Down replicas hold no work, take
    /// no arrivals and schedule no steps.
    pub up: bool,
    /// When the current outage began (meaningful only while `!up`).
    pub down_since: f64,
    /// Total seconds spent down (for availability metrics).
    pub down_s: f64,
    /// Whether the host link to this replica is intact. A partitioned
    /// replica (`!reachable`) is *not* down: it holds its work stranded
    /// (no steps dispatch, nothing is evicted) until the link heals.
    pub reachable: bool,
    /// When the current partition began (meaningful only while
    /// `!reachable`).
    pub partition_since: f64,
    /// Current brownout ladder level (0 = baseline; only the overload
    /// controller moves it).
    pub level: u8,
    /// Cluster-budget scale of the current level (1.0 at baseline).
    pub level_scale: f64,
    /// Accuracy loss of the current level, percent (0.0 at baseline).
    pub level_loss_pct: f64,
    /// Static display name of the current level (for the trace lane).
    pub level_name: &'static str,
    /// Total step wall-clock executed while degraded, seconds.
    pub brownout_s: f64,
    /// Decode sessions whose compression state lives on this replica:
    /// `(session id, occupancy hold seconds)`. The hold — the cost of
    /// rebuilding the state elsewhere — is folded into
    /// [`outstanding_s`](Self::outstanding_s) so routing sees resident
    /// state as load. Empty on non-session fleets (bitwise-dormant).
    pub(crate) resident_sessions: Vec<(u64, f64)>,
}

impl Replica {
    pub fn new(index: usize, system: CtaSystem) -> Self {
        Self {
            index,
            system,
            clock: 0.0,
            busy_s: 0.0,
            queue: Vec::new(),
            active: Vec::new(),
            completed: 0,
            up: true,
            down_since: 0.0,
            down_s: 0.0,
            reachable: true,
            partition_since: 0.0,
            level: 0,
            level_scale: 1.0,
            level_loss_pct: 0.0,
            level_name: crate::overload::LEVEL_NAMES[0],
            brownout_s: 0.0,
            resident_sessions: Vec::new(),
        }
    }

    /// Moves the replica to brownout `level` of `ladder` (controller
    /// action; does not touch in-flight work — the next layer step
    /// dispatches at the new operating point).
    pub fn set_level(&mut self, ladder: &crate::BrownoutLadder, level: usize) {
        let point = ladder.level(level);
        self.level = level as u8;
        self.level_scale = point.budget_scale;
        self.level_loss_pct = point.accuracy_loss_pct;
        self.level_name = ladder.level_name(level);
    }

    /// Removes every copy of request `id` from the queue and active set
    /// (hedge-loser cancellation; active copies are cancelled here, i.e.
    /// at a layer boundary — the runtime only calls this between steps).
    /// Returns how many copies were removed.
    pub fn cancel_request(&mut self, id: u64) -> usize {
        let before = self.queue.len() + self.active.len();
        self.queue.retain(|p| p.request.id != id);
        self.active.retain(|a| a.request.id != id);
        before - (self.queue.len() + self.active.len())
    }

    /// Whether any copy of request `id` is queued or active here.
    pub fn holds_request(&self, id: u64) -> bool {
        self.queue.iter().any(|p| p.request.id == id)
            || self.active.iter().any(|a| a.request.id == id)
    }

    /// Requests queued but not yet running.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests queued or running.
    pub fn load(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// Estimated seconds of work the replica still owes as of `now`:
    /// committed schedule beyond `now`, plus remaining layers of active
    /// requests, plus solo estimates of everything queued.
    pub fn outstanding_s(&mut self, cost: &mut CostModel, now: f64) -> f64 {
        let committed = (self.clock - now).max(0.0);
        let active: f64 = self
            .active
            .iter()
            .map(|a| cost.remaining_service_s(&self.system, &a.request, a.cursor))
            .sum();
        let queued: f64 = self.queue.iter().map(|p| p.est_service_s).sum();
        let mut total = committed + active + queued;
        // Resident session state occupies the replica (SRAM + the debt of
        // rebuilding it elsewhere); the guard keeps the non-session
        // fleet's arithmetic bit-for-bit the pre-session expression.
        if !self.resident_sessions.is_empty() {
            total += self.resident_sessions.iter().map(|(_, h)| h).sum::<f64>();
        }
        total
    }

    /// Inserts into the queue keeping (priority desc, arrival asc, id asc)
    /// order.
    pub fn enqueue(&mut self, pending: Pending) {
        let key = |p: &Pending| {
            (core::cmp::Reverse(p.request.class.priority), p.request.arrival_s, p.request.id)
        };
        let pos = self
            .queue
            .binary_search_by(|probe| {
                let (ap, aa, ai) = key(probe);
                let (bp, ba, bi) = key(&pending);
                ap.cmp(&bp).then(aa.partial_cmp(&ba).expect("finite arrivals")).then(ai.cmp(&bi))
            })
            .unwrap_or_else(|e| e);
        self.queue.insert(pos, pending);
    }

    /// Marks the replica down at `t`, draining its remaining work for the
    /// runtime to requeue or shed: mid-flight actives first (keeping their
    /// layer progress — steps are atomic, so every completed layer's
    /// activations already reached the host), then the queue in priority
    /// order.
    pub fn crash(&mut self, t: f64) -> Vec<Pending> {
        self.up = false;
        self.down_since = t;
        let mut orphans: Vec<Pending> = self
            .active
            .drain(..)
            .map(|a| Pending {
                request: a.request,
                est_service_s: 0.0, // re-estimated at requeue
                resume_cursor: a.cursor,
                attempt: a.attempt,
                re_prefill_s: 0.0, // re-assessed when placed again
            })
            .collect();
        orphans.append(&mut self.queue);
        orphans
    }

    /// Brings the replica back at `t`. Its schedule resumes no earlier
    /// than the recovery instant.
    pub fn recover(&mut self, t: f64) {
        self.up = true;
        self.down_s += t - self.down_since;
        self.clock = self.clock.max(t);
    }

    /// Cuts the host link at `t`: queued and mid-flight work is stranded
    /// in place (steps pause at the next atomic layer boundary — the
    /// replica cannot stream activations back to the host), nothing is
    /// evicted.
    pub fn partition_start(&mut self, t: f64) {
        self.reachable = false;
        self.partition_since = t;
    }

    /// Heals the host link at `t`. The stranded schedule resumes no
    /// earlier than the heal instant.
    pub fn partition_heal(&mut self, t: f64) {
        self.reachable = true;
        self.clock = self.clock.max(t);
    }

    /// When the replica will next dispatch a layer step, or `None` if it
    /// has no work, is down, or is partitioned from the host.
    pub fn next_step_time(&self) -> Option<f64> {
        if !self.up || !self.reachable {
            return None;
        }
        if !self.active.is_empty() {
            return Some(self.clock);
        }
        self.queue
            .iter()
            .map(|p| p.request.arrival_s)
            .min_by(|a, b| a.partial_cmp(b).expect("finite arrivals"))
            .map(|earliest| self.clock.max(earliest))
    }

    /// Executes one layer step at its scheduled time, appending finished
    /// requests to `completions` and emitting telemetry to `sink`. Returns
    /// the step's start time.
    ///
    /// The sink is generic so the disabled implementation
    /// ([`cta_telemetry::NullSink`]) compiles away: with tracing off this
    /// is the exact pre-telemetry step function, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the replica has no work.
    pub fn execute_step<S: TraceSink>(
        &mut self,
        batch: &BatchPolicy,
        faults: &FaultPlan,
        cost: &mut CostModel,
        completions: &mut Vec<Completion>,
        sink: &mut S,
    ) -> f64 {
        let t0 = self.next_step_time().expect("execute_step needs work");
        let runtime = TrackId::new(self.index as u32, Module::Runtime);

        // Continuous batching: pull arrived queued requests into the
        // active set at this layer boundary, in queue (priority) order.
        let mut upload_s = 0.0;
        let mut re_prefill_s = 0.0;
        let mut i = 0;
        while self.active.len() < batch.max_active_requests && i < self.queue.len() {
            if self.queue[i].request.arrival_s <= t0 {
                let p = self.queue.remove(i);
                // Each joining request pays its one-time weight upload
                // before its first layer can run.
                upload_s += self.system.weight_upload_s();
                // A session turn landing on a replica that does not hold
                // its compression state additionally rebuilds the prefix
                // (charged once, like the upload; 0 on the sticky path).
                if p.re_prefill_s > 0.0 {
                    re_prefill_s += p.re_prefill_s;
                }
                if S::ENABLED {
                    // The request's queued interval ends at this batch
                    // join.
                    sink.async_span(runtime, "queued", p.request.id, p.request.arrival_s, t0);
                    sink.instant(runtime, "batch-join", t0);
                }
                self.active.push(Active {
                    request: p.request,
                    cursor: p.resume_cursor,
                    joined_s: t0,
                    attempt: p.attempt,
                    loss_pct: 0.0,
                });
            } else {
                i += 1;
            }
        }
        // Host-link stall: uploads inside a stall window take longer. The
        // guard keeps the healthy path's arithmetic untouched.
        if upload_s > 0.0 {
            let link = faults.link_factor(self.index, t0);
            if link != 1.0 {
                upload_s *= link;
            }
        }
        assert!(!self.active.is_empty(), "step with an empty active set");
        if S::ENABLED {
            sink.counter(runtime, "queue_depth", t0, self.queue.len() as f64);
            sink.counter(runtime, "active_requests", t0, self.active.len() as f64);
        }

        // Merge every active request's current layer into one dispatch,
        // degraded to the replica's brownout operating point when the
        // controller has moved it off baseline. The `degraded` guard keeps
        // the baseline path's float arithmetic bit-for-bit the
        // pre-brownout expression (memo keys changed shape, values did
        // not).
        let degraded = self.level != 0;
        let mut merged: Vec<AttentionTask> = Vec::new();
        let mut costs: Vec<TaskCost> = Vec::new();
        for a in &self.active {
            // Session turns price each layer as a decode segment (per-
            // token incremental compression at the resident prefix)
            // instead of a full prefill. Decode segments run at the
            // nominal operating point — brownout shrinks the *prefill*
            // cluster budget, which decode inherits through its prefix.
            let turn = a.request.session;
            for t in &a.request.layer_tasks[a.cursor] {
                if degraded {
                    merged.push(t.with_budget_scale(self.level_scale));
                } else {
                    merged.push(*t);
                }
                costs.push(match &turn {
                    Some(st) => cost.decode_head(&self.system, t, st),
                    None => cost.head_at(&self.system, self.level, self.level_scale, t),
                });
            }
        }
        let step = self.system.step_layer_costed(&merged, &costs);
        // Transient slowdown: steps starting inside a window stretch by
        // the plan's factor. Guarded so the healthy path's float
        // arithmetic is bit-for-bit the pre-fault expression.
        let mut step_elapsed = step.elapsed_s;
        let slow = faults.step_factor(self.index, t0);
        if slow != 1.0 {
            step_elapsed *= slow;
        }
        let mut elapsed = upload_s + step_elapsed;
        if re_prefill_s > 0.0 {
            elapsed += re_prefill_s;
        }
        self.clock = t0 + elapsed;
        self.busy_s += elapsed;
        if degraded {
            self.brownout_s += elapsed;
        }

        if S::ENABLED {
            self.trace_step(sink, cost, StepTiming { t0, upload_s, re_prefill_s }, &merged, &step);
            if degraded {
                // The whole degraded step lands on the brownout lane,
                // named after the operating point, so AggregateReport can
                // attribute time-in-brownout per replica and per level.
                let brownout = TrackId::new(self.index as u32, Module::Brownout);
                sink.span(brownout, self.level_name, t0, self.clock, SpanClass::Control, false);
            }
            // The stretch beyond the nominal step lands on the fault lane
            // as a bubble: time the replica was occupied but degraded.
            let extra = step_elapsed - step.elapsed_s;
            if extra > 0.0 {
                let fault = TrackId::new(self.index as u32, Module::Fault);
                sink.span(
                    fault,
                    "slowdown",
                    self.clock - extra,
                    self.clock,
                    SpanClass::Fault,
                    true,
                );
            }
        }

        // Advance cursors; retire finished requests at the step boundary.
        let level_loss = self.level_loss_pct;
        for a in &mut self.active {
            a.cursor += 1;
            if degraded && level_loss > a.loss_pct {
                a.loss_pct = level_loss;
            }
        }
        let finish = self.clock;
        let index = self.index;
        let mut retired: Vec<Active> = Vec::new();
        self.active.retain_mut(|a| {
            if a.request.remaining_layers(a.cursor) == 0 {
                retired.push(a.clone());
                false
            } else {
                true
            }
        });
        // Deterministic completion order at equal finish time: by id.
        retired.sort_by_key(|a| a.request.id);
        for a in retired {
            let latency = finish - a.request.arrival_s;
            self.completed += 1;
            if S::ENABLED {
                sink.async_span(runtime, "serving", a.request.id, a.joined_s, finish);
                sink.instant(runtime, "complete", finish);
            }
            completions.push(Completion {
                id: a.request.id,
                class: a.request.class.name,
                arrival_s: a.request.arrival_s,
                finish_s: finish,
                replica: index,
                deadline_met: a.request.class.deadline_s.map(|d| latency <= d),
                retries: a.attempt,
                accuracy_loss_pct: a.loss_pct,
                tenant: a.request.tenant,
                session: a.request.session,
            });
        }
        t0
    }

    /// Emits the telemetry layout of one executed layer step: host-link
    /// upload/transfer spans, SA phase spans (compression → linear →
    /// attention, with the PAG-stall tail flagged as a bubble), and
    /// auxiliary-module overlays. Phase boundaries inside the step's
    /// critical path follow the merged tasks' memoised
    /// [`cta_sim::PhaseSplit`] proportions, so summed span seconds per
    /// class reconcile with `SystemRun` totals (the reconciliation
    /// integration test pins this).
    fn trace_step<S: TraceSink>(
        &self,
        sink: &mut S,
        cost: &mut CostModel,
        timing: StepTiming,
        merged: &[AttentionTask],
        step: &cta_sim::LayerStep,
    ) {
        let StepTiming { t0, upload_s, re_prefill_s } = timing;
        let replica = self.index as u32;
        let host = TrackId::new(replica, Module::Host);
        let sa = TrackId::new(replica, Module::Sa);
        let mut c0 = t0 + upload_s;
        // `self.clock` (already advanced past this step) lower-bounds the
        // next step's start time; capping span ends there absorbs the
        // 1-ulp float-associativity drift between `c0 + interval` and the
        // clock update `t0 + (upload + elapsed)`, keeping per-track spans
        // non-overlapping.
        let end_cap = self.clock;
        sink.span(host, "weight-upload", t0, c0, SpanClass::Upload, false);
        // A session-state rebuild runs between the upload and the layer's
        // compute; with no re-prefill this block emits nothing and `c0`
        // is bit-for-bit the pre-session expression.
        if re_prefill_s > 0.0 {
            let rp_end = (c0 + re_prefill_s).min(end_cap);
            sink.span(sa, "session-re-prefill", c0, rp_end, SpanClass::Compression, false);
            c0 = rp_end;
        }
        let transfer_end = (c0 + step.transfer_s).min(end_cap);
        sink.span(host, "activation-transfer", c0, transfer_end, SpanClass::Transfer, false);

        let mut comp = 0.0;
        let mut lin = 0.0;
        let mut att = 0.0;
        let mut stall = 0.0;
        for t in merged {
            // `merged` already holds the degraded shapes, so the split is
            // keyed at the *degraded* shape under the current level — it
            // can't alias the baseline entry for the same nominal shape.
            let ps = cost.phase_split_at(&self.system, self.level, 1.0, t);
            comp += ps.compression_s;
            lin += ps.linear_s;
            att += ps.attention_s;
            stall += ps.pag_stall_s;
        }
        let total = comp + lin + att;
        if total <= 0.0 || step.critical_s <= 0.0 {
            return;
        }
        // Scale the summed per-head phase seconds onto the LPT critical
        // path; the final boundary is forced exactly to the step end so
        // successive steps stay non-overlapping.
        let scale = step.critical_s / total;
        let end = (c0 + step.critical_s).min(end_cap);
        let comp_end = (c0 + comp * scale).min(end);
        let lin_end = (comp_end + lin * scale).min(end);
        let stall_s = (stall * scale).min(end - lin_end).max(0.0);
        let att_work_end = end - stall_s;
        sink.span(sa, "compression", c0, comp_end, SpanClass::Compression, false);
        sink.span(sa, "linear", comp_end, lin_end, SpanClass::Linear, false);
        sink.span(sa, "attention", lin_end, att_work_end, SpanClass::Attention, false);
        sink.span(sa, "pag-stall", att_work_end, end, SpanClass::Attention, true);
        // Auxiliary-module overlays (visual lanes; phase aggregation only
        // counts the SA track).
        let cim = TrackId::new(replica, Module::Cim);
        let cag = TrackId::new(replica, Module::Cag);
        let pag = TrackId::new(replica, Module::Pag);
        sink.span(cim, "cluster-index", c0, comp_end, SpanClass::Compression, false);
        sink.span(cag, "centroid-agg", c0, comp_end, SpanClass::Compression, false);
        sink.span(pag, "probability-agg", lin_end, end, SpanClass::Attention, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosClass;
    use cta_sim::{AttentionTask, SystemConfig};

    fn task() -> AttentionTask {
        AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
    }

    fn replica() -> Replica {
        Replica::new(0, CtaSystem::new(SystemConfig::paper()))
    }

    fn pending(id: u64, arrival: f64, class: QosClass) -> Pending {
        Pending::fresh(ServeRequest::uniform(id, arrival, class, task(), 2, 4), 0.0)
    }

    #[test]
    fn queue_orders_priority_then_arrival_then_id() {
        let mut r = replica();
        r.enqueue(pending(3, 5.0, QosClass::batch()));
        r.enqueue(pending(1, 6.0, QosClass::interactive(1.0)));
        r.enqueue(pending(2, 4.0, QosClass::batch()));
        r.enqueue(pending(4, 4.0, QosClass::batch()));
        let ids: Vec<u64> = r.queue.iter().map(|p| p.request.id).collect();
        assert_eq!(ids, vec![1, 2, 4, 3]);
    }

    #[test]
    fn idle_replica_with_no_work_has_no_step() {
        assert_eq!(replica().next_step_time(), None);
    }

    #[test]
    fn step_time_waits_for_earliest_arrival() {
        let mut r = replica();
        r.enqueue(pending(1, 3.0, QosClass::batch()));
        r.enqueue(pending(0, 2.0, QosClass::batch()));
        assert_eq!(r.next_step_time(), Some(2.0));
        r.clock = 10.0;
        assert_eq!(r.next_step_time(), Some(10.0));
    }

    #[test]
    fn unbatched_steps_serve_one_request_to_completion_first() {
        let mut r = replica();
        let mut cost = CostModel::new();
        r.enqueue(pending(0, 0.0, QosClass::standard()));
        r.enqueue(pending(1, 0.0, QosClass::standard()));
        let mut done = Vec::new();
        // 2 layers per request; batching off: 4 steps total, first two
        // steps complete request 0.
        let batch = BatchPolicy::off();
        let faults = FaultPlan::none();
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 0);
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].id, 1);
        assert!(done[1].finish_s > done[0].finish_s);
    }

    #[test]
    fn batching_merges_layers_and_finishes_together() {
        let mut r = replica();
        let mut cost = CostModel::new();
        r.enqueue(pending(0, 0.0, QosClass::standard()));
        r.enqueue(pending(1, 0.0, QosClass::standard()));
        let mut done = Vec::new();
        let batch = BatchPolicy::up_to(4);
        let faults = FaultPlan::none();
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        assert_eq!(r.active.len(), 2, "both requests batched");
        r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
        assert_eq!(done.len(), 2, "both finish at the final merged layer");
        assert_eq!(done[0].finish_s, done[1].finish_s);
        assert_eq!((done[0].id, done[1].id), (0, 1));
    }

    #[test]
    fn crash_evicts_actives_with_progress_then_queue() {
        let mut r = replica();
        let mut cost = CostModel::new();
        r.enqueue(pending(0, 0.0, QosClass::standard()));
        r.enqueue(pending(1, 0.0, QosClass::standard()));
        let mut done = Vec::new();
        // Batching off: one step runs request 0's first layer only.
        let batch = BatchPolicy::off();
        r.execute_step(
            &batch,
            &FaultPlan::none(),
            &mut cost,
            &mut done,
            &mut cta_telemetry::NullSink,
        );
        assert!(done.is_empty());
        let t = r.clock;
        let orphans = r.crash(t);
        assert!(!r.up);
        assert_eq!(r.next_step_time(), None, "down replica schedules nothing");
        assert_eq!(orphans.len(), 2);
        // Mid-flight request first, with its completed layer retained.
        assert_eq!(orphans[0].request.id, 0);
        assert_eq!(orphans[0].resume_cursor, 1);
        assert_eq!(orphans[1].request.id, 1);
        assert_eq!(orphans[1].resume_cursor, 0);
        r.recover(t + 1.0);
        assert!(r.up);
        assert!((r.down_s - 1.0).abs() < 1e-12, "down for ~1 s, got {}", r.down_s);
        assert!(r.clock >= t + 1.0);
    }

    #[test]
    fn batched_throughput_beats_fifo_on_small_head_counts() {
        // 4-head layers on 12 units: two requests' layers fit side by
        // side, so batching should finish the pair strictly earlier. The
        // task is compute-heavy (few queries, many keys) so the merged
        // step is critical-path-bound, not host-link-bound — a
        // transfer-bound step costs the same merged or not under the
        // paper config's overlapped transfers.
        let heavy = AttentionTask::from_counts(16, 512, 64, 8, 180, 40, 6);
        let run = |batch: BatchPolicy| {
            let mut r = replica();
            let mut cost = CostModel::new();
            for id in 0..2 {
                r.enqueue(Pending::fresh(
                    ServeRequest::uniform(id, 0.0, QosClass::standard(), heavy, 2, 4),
                    0.0,
                ));
            }
            let mut done = Vec::new();
            let faults = FaultPlan::none();
            while r.next_step_time().is_some() {
                r.execute_step(&batch, &faults, &mut cost, &mut done, &mut cta_telemetry::NullSink);
            }
            done.iter().map(|c| c.finish_s).fold(0.0, f64::max)
        };
        let fifo = run(BatchPolicy::off());
        let batched = run(BatchPolicy::up_to(2));
        assert!(batched < fifo, "batched {batched} vs fifo {fifo}");
    }
}
