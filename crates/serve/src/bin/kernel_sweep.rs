//! Thin adapter over [`cta_serve::sweeps::kernel_sweep`] — see that
//! module for the experiment description and flag reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    cta_serve::sweeps::kernel_sweep::main(std::env::args().skip(1))
}
