//! Thin adapter over [`cta_serve::sweeps::decode_sweep`] — see that
//! module for the experiment description and flag reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    cta_serve::sweeps::decode_sweep::main(std::env::args().skip(1))
}
