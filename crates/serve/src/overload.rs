//! Closed-loop overload control: brownout ladder, circuit breakers and
//! hedging policy.
//!
//! Three independent mechanisms, all off by default
//! ([`OverloadControl::off`] keeps the runtime bitwise identical to the
//! plain fleet — pinned by test):
//!
//! * **Quality brownout** — a deterministic controller per replica samples
//!   queue depth (availability-weighted) and deadline-miss rate over
//!   sliding windows and walks an ordered [`BrownoutLadder`] of operating
//!   points. Each rung scales the CTA cluster budgets `k₀,k₁,k₂` down
//!   (the paper's §VI-B accuracy/compute dial, calibrated by
//!   `cta_workloads::calibrate_brownout_ladder`), trading a pre-measured
//!   accuracy loss for shorter layer steps. Escalation thresholds grow
//!   with the level and recovery thresholds sit strictly below them, so
//!   the controller is monotone in sustained load and cannot flap on load
//!   oscillating inside the hysteresis band (proptest-pinned).
//! * **Circuit breaker** — per replica, layered on the PR 3 health model:
//!   `failure_threshold` consecutive crashes open the breaker; after
//!   `cooldown_s` it half-opens and admits a single probe request; a
//!   completion closes it, another crash re-opens it. Open or probing
//!   replicas take no routed traffic even while nominally up.
//! * **Hedged dispatch** — deadline-bearing requests that have not
//!   completed after a p99-derived delay (sliding window over recent
//!   completion latencies) are duplicated to a second healthy replica;
//!   first completion wins and the loser is cancelled at its next layer
//!   boundary, with every copy accounted in [`OverloadStats`].

/// Hard cap on ladder length: level names must be `&'static str` for the
/// allocation-free trace ring, so they come from a fixed table.
pub const MAX_BROWNOUT_LEVELS: usize = 8;

/// Static level names (index = ladder level).
pub(crate) const LEVEL_NAMES: [&str; MAX_BROWNOUT_LEVELS] = [
    "baseline",
    "brownout-1",
    "brownout-2",
    "brownout-3",
    "brownout-4",
    "brownout-5",
    "brownout-6",
    "brownout-7",
];

/// One operating point of the brownout ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutLevel {
    /// Cluster-budget scale in `(0, 1]` applied through
    /// `AttentionTask::with_budget_scale`; 1.0 is the undegraded baseline.
    pub budget_scale: f64,
    /// Pre-measured proxy accuracy loss at this point, percent.
    pub accuracy_loss_pct: f64,
}

/// An ordered ladder of operating points, baseline first.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutLadder {
    levels: Vec<BrownoutLevel>,
}

impl BrownoutLadder {
    /// Builds a ladder from explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or longer than
    /// [`MAX_BROWNOUT_LEVELS`], if level 0 is not the exact baseline
    /// (`budget_scale == 1.0`, zero loss), if budget scales are not
    /// strictly descending, or if accuracy losses decrease along the
    /// ladder.
    pub fn new(levels: Vec<BrownoutLevel>) -> Self {
        assert!(!levels.is_empty(), "ladder needs at least the baseline level");
        assert!(levels.len() <= MAX_BROWNOUT_LEVELS, "ladder capped at {MAX_BROWNOUT_LEVELS}");
        assert!(
            levels[0].budget_scale == 1.0 && levels[0].accuracy_loss_pct == 0.0,
            "level 0 must be the exact baseline"
        );
        for l in &levels {
            assert!(
                l.budget_scale > 0.0 && l.budget_scale <= 1.0,
                "budget scale {} ∉ (0, 1]",
                l.budget_scale
            );
            assert!(l.accuracy_loss_pct >= 0.0, "negative accuracy loss");
        }
        assert!(
            levels.windows(2).all(|w| w[1].budget_scale < w[0].budget_scale),
            "budget scales must strictly descend along the ladder"
        );
        assert!(
            levels.windows(2).all(|w| w[1].accuracy_loss_pct >= w[0].accuracy_loss_pct),
            "accuracy loss must not decrease along the ladder"
        );
        Self { levels }
    }

    /// The default ladder, calibrated with
    /// `cta_workloads::calibrate_brownout_ladder` on the BERT-large/SQuAD
    /// paper cases (LSH width factors 1.6 / 2.6–4.2 / 6.8 over the
    /// width-2.0 baseline).
    pub fn standard() -> Self {
        Self::new(vec![
            BrownoutLevel { budget_scale: 1.0, accuracy_loss_pct: 0.0 },
            BrownoutLevel { budget_scale: 0.9, accuracy_loss_pct: 0.4 },
            BrownoutLevel { budget_scale: 0.75, accuracy_loss_pct: 0.7 },
            BrownoutLevel { budget_scale: 0.6, accuracy_loss_pct: 1.8 },
        ])
    }

    /// Builds a ladder from `(budget_scale, accuracy_loss_pct)` pairs as
    /// produced by `cta_workloads::BrownoutCalibration::ladder_points`.
    /// The first point is normalised to the exact baseline.
    ///
    /// # Panics
    ///
    /// Same validity rules as [`new`](Self::new).
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        let levels = points
            .iter()
            .enumerate()
            .map(|(i, &(scale, loss))| {
                if i == 0 {
                    BrownoutLevel { budget_scale: 1.0, accuracy_loss_pct: 0.0 }
                } else {
                    BrownoutLevel { budget_scale: scale, accuracy_loss_pct: loss }
                }
            })
            .collect();
        Self::new(levels)
    }

    /// Number of levels (baseline included).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the ladder is baseline-only (always false: `new` requires
    /// the baseline; a one-rung ladder just never degrades).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operating point at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level(&self, level: usize) -> BrownoutLevel {
        self.levels[level]
    }

    /// The static display name of `level`.
    pub fn level_name(&self, level: usize) -> &'static str {
        LEVEL_NAMES[level]
    }

    /// Highest level index.
    pub fn max_level(&self) -> usize {
        self.levels.len() - 1
    }
}

/// Thresholds and windows of the [`BrownoutController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerPolicy {
    /// Sliding-window length of (availability-weighted) queue-depth
    /// samples.
    pub depth_window: usize,
    /// Sliding-window length of completion deadline outcomes.
    pub miss_window: usize,
    /// Base escalation threshold: moving from level `L` to `L + 1`
    /// requires a mean windowed depth of at least `depth_up × (L + 1)`, so
    /// deeper degradation demands proportionally heavier sustained load
    /// (this is what makes the settled level monotone in offered load).
    pub depth_up: f64,
    /// Base recovery threshold: dropping from level `L` to `L - 1`
    /// requires a mean depth of at most `depth_down × L`. Must sit
    /// strictly below `depth_up` — the gap is the hysteresis band.
    pub depth_down: f64,
    /// Deadline-miss rate at or above which the controller escalates
    /// regardless of depth.
    pub miss_up: f64,
    /// Miss rate at or below which recovery is allowed.
    pub miss_down: f64,
    /// Minimum observations between transitions (flap damping).
    pub dwell: usize,
}

impl ControllerPolicy {
    /// Production defaults: escalate on a sustained mean depth of 4 per
    /// level or a 30% windowed miss rate; recover below a mean depth of 1
    /// per level and a 5% miss rate; at least 4 observations between
    /// moves.
    pub fn standard() -> Self {
        Self {
            depth_window: 8,
            miss_window: 16,
            depth_up: 4.0,
            depth_down: 1.0,
            miss_up: 0.3,
            miss_down: 0.05,
            dwell: 4,
        }
    }

    fn validate(&self) {
        assert!(self.depth_window > 0 && self.miss_window > 0, "windows must be positive");
        assert!(self.dwell > 0, "dwell must be positive");
        assert!(
            self.depth_down < self.depth_up,
            "hysteresis requires depth_down {} < depth_up {}",
            self.depth_down,
            self.depth_up
        );
        assert!(
            self.miss_down < self.miss_up,
            "hysteresis requires miss_down {} < miss_up {}",
            self.miss_down,
            self.miss_up
        );
        assert!(self.depth_up > 0.0 && self.depth_down >= 0.0, "depth thresholds must be ≥ 0");
    }
}

/// A level change decided by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Level before the change.
    pub from: usize,
    /// Level after the change.
    pub to: usize,
}

/// The per-replica closed-loop controller: pure state machine over
/// observation streams, no clocks, no allocation after construction —
/// trivially deterministic and testable in isolation.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    policy: ControllerPolicy,
    max_level: usize,
    level: usize,
    depths: Vec<f64>,
    depth_next: usize,
    depth_filled: usize,
    misses: Vec<bool>,
    miss_next: usize,
    miss_filled: usize,
    since_change: usize,
}

impl BrownoutController {
    /// A controller at the baseline level.
    ///
    /// # Panics
    ///
    /// Panics if the policy is inconsistent (see [`ControllerPolicy`]).
    pub fn new(policy: ControllerPolicy, max_level: usize) -> Self {
        policy.validate();
        Self {
            policy,
            max_level,
            level: 0,
            depths: vec![0.0; policy.depth_window],
            depth_next: 0,
            depth_filled: 0,
            misses: vec![false; policy.miss_window],
            miss_next: 0,
            miss_filled: 0,
            since_change: policy.dwell, // free to move on the first signal
        }
    }

    /// Current ladder level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Feeds one queue-depth sample (weighted by fleet availability at the
    /// caller's discretion) and returns a transition if one fires.
    pub fn observe_depth(&mut self, depth: f64) -> Option<Transition> {
        assert!(depth.is_finite() && depth >= 0.0, "depth sample must be finite and ≥ 0");
        self.depths[self.depth_next] = depth;
        self.depth_next = (self.depth_next + 1) % self.depths.len();
        self.depth_filled = (self.depth_filled + 1).min(self.depths.len());
        self.since_change = self.since_change.saturating_add(1);
        self.decide()
    }

    /// Feeds one completion outcome (`missed` = deadline missed) and
    /// returns a transition if one fires.
    pub fn observe_completion(&mut self, missed: bool) -> Option<Transition> {
        self.misses[self.miss_next] = missed;
        self.miss_next = (self.miss_next + 1) % self.misses.len();
        self.miss_filled = (self.miss_filled + 1).min(self.misses.len());
        self.since_change = self.since_change.saturating_add(1);
        self.decide()
    }

    fn mean_depth(&self) -> Option<f64> {
        if self.depth_filled < self.depths.len() {
            return None; // escalation needs a full window of evidence
        }
        Some(self.depths.iter().sum::<f64>() / self.depths.len() as f64)
    }

    fn miss_rate(&self) -> Option<f64> {
        if self.miss_filled < self.misses.len() {
            return None;
        }
        Some(self.misses.iter().filter(|&&m| m).count() as f64 / self.misses.len() as f64)
    }

    fn decide(&mut self) -> Option<Transition> {
        if self.since_change < self.policy.dwell {
            return None;
        }
        let depth = self.mean_depth();
        let miss = self.miss_rate();
        let up_th = self.policy.depth_up * (self.level + 1) as f64;
        let down_th = self.policy.depth_down * self.level as f64;

        let depth_high = depth.is_some_and(|d| d >= up_th);
        let miss_high = miss.is_some_and(|m| m >= self.policy.miss_up);
        if self.level < self.max_level && (depth_high || miss_high) {
            let from = self.level;
            self.level += 1;
            self.since_change = 0;
            return Some(Transition { from, to: self.level });
        }

        let depth_low = depth.is_some_and(|d| d <= down_th);
        let miss_low = miss.is_none_or(|m| m <= self.policy.miss_down);
        if self.level > 0 && depth_low && miss_low {
            let from = self.level;
            self.level -= 1;
            self.since_change = 0;
            return Some(Transition { from, to: self.level });
        }
        None
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures (crashes without an intervening completion)
    /// that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker blocks traffic before half-opening,
    /// seconds.
    pub cooldown_s: f64,
}

impl BreakerPolicy {
    /// Defaults matched to the simulator's timescale: two consecutive
    /// crashes open the breaker for a millisecond of simulated time
    /// (several typical request services).
    pub fn standard() -> Self {
        Self { failure_threshold: 2, cooldown_s: 1e-3 }
    }

    fn validate(&self) {
        assert!(self.failure_threshold > 0, "failure threshold must be positive");
        assert!(
            self.cooldown_s.is_finite() && self.cooldown_s > 0.0,
            "cooldown must be positive and finite"
        );
    }
}

/// Breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Traffic flows; tracks the consecutive-failure count.
    Closed {
        /// Crashes since the last completion.
        consecutive_failures: u32,
    },
    /// Traffic blocked until the cooldown elapses.
    Open {
        /// When the breaker opened, seconds.
        since_s: f64,
        /// When it may half-open, seconds.
        until_s: f64,
    },
    /// One probe request may be routed; its outcome decides.
    HalfOpen {
        /// When the breaker half-opened, seconds.
        since_s: f64,
        /// Whether the single probe slot is taken.
        probe_in_flight: bool,
    },
}

/// Per-replica circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    /// Total times the breaker opened.
    pub opens: usize,
}

/// A breaker state change, reported so the runtime can emit the
/// open/half-open interval to the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerEvent {
    /// The breaker opened at `at_s`.
    Opened {
        /// Transition instant, seconds.
        at_s: f64,
    },
    /// The open interval `[since_s, at_s)` ended; now half-open.
    HalfOpened {
        /// When the breaker had opened, seconds.
        since_s: f64,
        /// Transition instant, seconds.
        at_s: f64,
    },
    /// The half-open interval `[since_s, at_s)` ended; now closed.
    Closed {
        /// When the breaker had half-opened, seconds.
        since_s: f64,
        /// Transition instant, seconds.
        at_s: f64,
    },
}

impl CircuitBreaker {
    /// A closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(policy: BreakerPolicy) -> Self {
        policy.validate();
        Self { policy, state: BreakerState::Closed { consecutive_failures: 0 }, opens: 0 }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Advances time-based transitions (open → half-open) as of `now`.
    pub fn tick(&mut self, now: f64) -> Option<BreakerEvent> {
        if let BreakerState::Open { since_s, until_s } = self.state {
            if now >= until_s {
                self.state = BreakerState::HalfOpen { since_s: now, probe_in_flight: false };
                return Some(BreakerEvent::HalfOpened { since_s, at_s: now });
            }
        }
        None
    }

    /// Whether routing may place a request on this replica as of `now`
    /// (call [`tick`](Self::tick) first to settle time transitions).
    pub fn routable(&self) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen { probe_in_flight, .. } => !probe_in_flight,
        }
    }

    /// Records that routing placed a request here; a half-open breaker
    /// consumes its probe slot.
    pub fn on_dispatch(&mut self) {
        if let BreakerState::HalfOpen { since_s, .. } = self.state {
            self.state = BreakerState::HalfOpen { since_s, probe_in_flight: true };
        }
    }

    /// Records a crash at `now`. Returns the transition if the breaker
    /// opened (from closed after `failure_threshold` consecutive crashes,
    /// or immediately from half-open — the probe failed).
    pub fn record_failure(&mut self, now: f64) -> Option<BreakerEvent> {
        match self.state {
            BreakerState::Closed { consecutive_failures } => {
                let n = consecutive_failures + 1;
                if n >= self.policy.failure_threshold {
                    self.state =
                        BreakerState::Open { since_s: now, until_s: now + self.policy.cooldown_s };
                    self.opens += 1;
                    Some(BreakerEvent::Opened { at_s: now })
                } else {
                    self.state = BreakerState::Closed { consecutive_failures: n };
                    None
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state =
                    BreakerState::Open { since_s: now, until_s: now + self.policy.cooldown_s };
                self.opens += 1;
                Some(BreakerEvent::Opened { at_s: now })
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// Records a completion on this replica at `now`: resets the failure
    /// count and closes a half-open breaker (successful probe).
    pub fn record_success(&mut self, now: f64) -> Option<BreakerEvent> {
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed { consecutive_failures: 0 };
                None
            }
            BreakerState::HalfOpen { since_s, .. } => {
                self.state = BreakerState::Closed { consecutive_failures: 0 };
                Some(BreakerEvent::Closed { since_s, at_s: now })
            }
            BreakerState::Open { .. } => None, // stale completion of pre-open work
        }
    }

    /// When an open breaker will half-open, if currently open.
    pub fn reopen_at(&self) -> Option<f64> {
        match self.state {
            BreakerState::Open { until_s, .. } => Some(until_s),
            _ => None,
        }
    }
}

/// Hedged-dispatch policy for deadline-bearing QoS classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Floor on the hedge delay (also the delay while the latency window
    /// is still empty), seconds.
    pub min_delay_s: f64,
    /// Sliding-window length over recent completion latencies.
    pub latency_window: usize,
    /// Quantile of the window used as the hedge delay (the classic
    /// tail-at-scale choice is 0.99).
    pub quantile: f64,
}

impl HedgePolicy {
    /// Defaults matched to the simulator's timescale: hedge after the
    /// windowed p99 latency (floor 100 µs) over the last 32 completions.
    pub fn standard() -> Self {
        Self { min_delay_s: 1e-4, latency_window: 32, quantile: 0.99 }
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.min_delay_s.is_finite() && self.min_delay_s > 0.0,
            "hedge delay floor must be positive"
        );
        assert!(self.latency_window > 0, "latency window must be positive");
        assert!(self.quantile > 0.0 && self.quantile <= 1.0, "quantile {} ∉ (0, 1]", self.quantile);
    }

    /// The hedge delay given the current latency window (nearest-rank
    /// quantile, floored at `min_delay_s`).
    pub fn delay_s(&self, window: &[f64]) -> f64 {
        if window.is_empty() {
            return self.min_delay_s;
        }
        let mut sorted: Vec<f64> = window.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((self.quantile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1].max(self.min_delay_s)
    }
}

/// Brownout configuration: the ladder plus the controller that walks it.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// The operating-point ladder.
    pub ladder: BrownoutLadder,
    /// Controller thresholds.
    pub policy: ControllerPolicy,
}

impl BrownoutConfig {
    /// Standard ladder + standard controller.
    pub fn standard() -> Self {
        Self { ladder: BrownoutLadder::standard(), policy: ControllerPolicy::standard() }
    }
}

/// The overload-control master switch carried by
/// [`FleetConfig`](crate::FleetConfig). Every mechanism is independently
/// optional; [`off`](Self::off) disables all three and is pinned bitwise
/// against the pre-overload fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadControl {
    /// Quality-brownout controller (None = never degrade).
    pub brownout: Option<BrownoutConfig>,
    /// Per-replica circuit breaker (None = route by `up` alone).
    pub breaker: Option<BreakerPolicy>,
    /// Hedged dispatch for deadline classes (None = never hedge).
    pub hedge: Option<HedgePolicy>,
}

impl OverloadControl {
    /// Everything disabled: the fleet behaves exactly as before this
    /// subsystem existed.
    pub fn off() -> Self {
        Self::default()
    }

    /// All three mechanisms at their standard settings.
    pub fn standard() -> Self {
        Self {
            brownout: Some(BrownoutConfig::standard()),
            breaker: Some(BreakerPolicy::standard()),
            hedge: Some(HedgePolicy::standard()),
        }
    }

    /// Whether every mechanism is disabled.
    pub fn is_off(&self) -> bool {
        self.brownout.is_none() && self.breaker.is_none() && self.hedge.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_standard_is_valid_and_ordered() {
        let l = BrownoutLadder::standard();
        assert!(l.len() >= 2 && l.len() <= MAX_BROWNOUT_LEVELS);
        assert_eq!(l.level(0).budget_scale, 1.0);
        assert_eq!(l.level_name(0), "baseline");
        assert_eq!(l.level_name(1), "brownout-1");
        for w in (0..l.len()).collect::<Vec<_>>().windows(2) {
            assert!(l.level(w[1]).budget_scale < l.level(w[0]).budget_scale);
            assert!(l.level(w[1]).accuracy_loss_pct >= l.level(w[0]).accuracy_loss_pct);
        }
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn ladder_rejects_non_baseline_level_zero() {
        let _ =
            BrownoutLadder::new(vec![BrownoutLevel { budget_scale: 0.9, accuracy_loss_pct: 0.0 }]);
    }

    #[test]
    #[should_panic(expected = "descend")]
    fn ladder_rejects_non_descending_scales() {
        let _ = BrownoutLadder::new(vec![
            BrownoutLevel { budget_scale: 1.0, accuracy_loss_pct: 0.0 },
            BrownoutLevel { budget_scale: 0.5, accuracy_loss_pct: 0.5 },
            BrownoutLevel { budget_scale: 0.7, accuracy_loss_pct: 1.0 },
        ]);
    }

    #[test]
    fn from_points_normalises_the_baseline() {
        let l = BrownoutLadder::from_points(&[(0.9999, 0.01), (0.8, 0.5)]);
        assert_eq!(l.level(0).budget_scale, 1.0);
        assert_eq!(l.level(0).accuracy_loss_pct, 0.0);
        assert_eq!(l.level(1).budget_scale, 0.8);
    }

    #[test]
    fn controller_escalates_on_sustained_depth_and_recovers() {
        let p = ControllerPolicy::standard();
        let mut c = BrownoutController::new(p, 3);
        // Sustained heavy depth: climbs one level per dwell once the
        // window fills.
        let mut transitions = 0;
        for _ in 0..64 {
            if c.observe_depth(100.0).is_some() {
                transitions += 1;
            }
        }
        assert_eq!(c.level(), 3, "sustained overload must reach the ladder top");
        assert_eq!(transitions, 3);
        // Sustained idle: steps back down to baseline.
        for _ in 0..64 {
            c.observe_depth(0.0);
        }
        assert_eq!(c.level(), 0, "recovery must return to baseline");
    }

    #[test]
    fn controller_needs_a_full_window_before_escalating() {
        let p = ControllerPolicy::standard();
        let mut c = BrownoutController::new(p, 3);
        for _ in 0..p.depth_window - 1 {
            assert_eq!(c.observe_depth(1e6), None, "no escalation on partial evidence");
        }
        assert!(c.observe_depth(1e6).is_some(), "full window escalates");
    }

    #[test]
    fn controller_escalates_on_miss_rate_alone() {
        let p = ControllerPolicy::standard();
        let mut c = BrownoutController::new(p, 2);
        for _ in 0..p.miss_window {
            c.observe_completion(true);
        }
        assert!(c.level() > 0, "a saturated miss window must escalate");
    }

    #[test]
    fn load_inside_the_hysteresis_band_never_transitions() {
        let p = ControllerPolicy::standard();
        let mut c = BrownoutController::new(p, 3);
        // Square wave between 1.5 and 3.5: both below depth_up (4.0) and
        // the mean above depth_down·0 only matters at level > 0.
        for i in 0..256 {
            let d = if (i / 8) % 2 == 0 { 1.5 } else { 3.5 };
            assert_eq!(c.observe_depth(d), None, "sample {i} must not transition");
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn settled_level_is_monotone_in_constant_depth() {
        let p = ControllerPolicy::standard();
        let settled = |d: f64| {
            let mut c = BrownoutController::new(p, 5);
            for _ in 0..256 {
                c.observe_depth(d);
            }
            c.level()
        };
        let levels: Vec<usize> =
            [0.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 100.0].iter().map(|&d| settled(d)).collect();
        assert!(levels.windows(2).all(|w| w[1] >= w[0]), "not monotone: {levels:?}");
        assert_eq!(*levels.first().unwrap(), 0);
        assert_eq!(*levels.last().unwrap(), 5);
        // The per-level threshold scaling makes it graded, not two-valued.
        assert!(
            levels.iter().any(|&l| l > 0 && l < 5),
            "ladder should settle mid-rung: {levels:?}"
        );
    }

    #[test]
    fn breaker_opens_after_threshold_half_opens_and_closes_on_probe() {
        let mut b = CircuitBreaker::new(BreakerPolicy { failure_threshold: 2, cooldown_s: 1.0 });
        assert!(b.routable());
        assert_eq!(b.record_failure(0.0), None, "first failure only counts");
        assert!(b.routable());
        assert_eq!(b.record_failure(0.5), Some(BreakerEvent::Opened { at_s: 0.5 }));
        assert!(!b.routable());
        assert_eq!(b.opens, 1);
        // Before the cooldown: still open.
        assert_eq!(b.tick(1.0), None);
        assert!(!b.routable());
        // Cooldown elapsed: half-open, one probe slot.
        assert_eq!(b.tick(1.5), Some(BreakerEvent::HalfOpened { since_s: 0.5, at_s: 1.5 }));
        assert!(b.routable());
        b.on_dispatch();
        assert!(!b.routable(), "probe slot consumed");
        // Probe completes: closed.
        assert_eq!(b.record_success(2.0), Some(BreakerEvent::Closed { since_s: 1.5, at_s: 2.0 }));
        assert!(b.routable());
        assert_eq!(b.state(), BreakerState::Closed { consecutive_failures: 0 });
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut b = CircuitBreaker::new(BreakerPolicy { failure_threshold: 1, cooldown_s: 1.0 });
        assert!(b.record_failure(0.0).is_some());
        b.tick(1.0);
        b.on_dispatch();
        assert_eq!(b.record_failure(1.2), Some(BreakerEvent::Opened { at_s: 1.2 }));
        assert_eq!(b.opens, 2);
        assert_eq!(b.reopen_at(), Some(2.2));
    }

    #[test]
    fn completion_resets_the_consecutive_failure_count() {
        let mut b = CircuitBreaker::new(BreakerPolicy { failure_threshold: 2, cooldown_s: 1.0 });
        b.record_failure(0.0);
        b.record_success(0.5);
        assert_eq!(b.record_failure(1.0), None, "count was reset by the completion");
        assert!(b.routable());
    }

    #[test]
    fn hedge_delay_is_windowed_p99_with_floor() {
        let p = HedgePolicy { min_delay_s: 0.5, latency_window: 8, quantile: 0.99 };
        assert_eq!(p.delay_s(&[]), 0.5, "empty window falls back to the floor");
        assert_eq!(p.delay_s(&[0.1, 0.2]), 0.5, "p99 below the floor is floored");
        let window = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(p.delay_s(&window), 8.0, "p99 of 8 samples is the max");
        let p50 = HedgePolicy { min_delay_s: 1e-9, latency_window: 8, quantile: 0.5 };
        assert_eq!(p50.delay_s(&window), 4.0);
    }

    #[test]
    fn off_is_off_and_standard_enables_everything() {
        assert!(OverloadControl::off().is_off());
        let s = OverloadControl::standard();
        assert!(!s.is_off());
        assert!(s.brownout.is_some() && s.breaker.is_some() && s.hedge.is_some());
    }
}
