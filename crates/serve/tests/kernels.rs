//! The kernel-equivalence contract, end to end: a sweep binary's output
//! bytes must not depend on the kernel policy.
//!
//! `tests/jobs.rs` pins the results bytes against the worker count; this
//! suite drives the `--kernels` flag and the `CTA_KERNELS` env var the
//! same way. Policies are spawned as separate processes because the
//! policy is a process-wide `OnceLock` — flipping it in-process would
//! race with whichever test resolved it first.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `bin` with `args` (plus an optional `CTA_KERNELS` value) in a
/// fresh scratch directory and returns that directory.
fn run_in_scratch(label: &str, bin: &str, args: &[&str], env_kernels: Option<&str>) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cta-kernels-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let mut cmd = Command::new(bin);
    cmd.args(args).current_dir(&dir);
    match env_kernels {
        Some(v) => cmd.env("CTA_KERNELS", v),
        None => cmd.env_remove("CTA_KERNELS"),
    };
    let out = cmd.output().expect("spawn binary");
    assert!(
        out.status.success(),
        "{label}: {bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn read(dir: &Path, rel: &str) -> Vec<u8> {
    std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel} in {}: {e}", dir.display()))
}

const SERVE_ARGS: [&str; 10] =
    ["--replicas", "2", "--loads", "0.5,1.2", "--requests", "40", "--seed", "7", "--jobs", "4"];

/// `serve_sweep --kernels scalar|blocked|simd` must produce byte-identical
/// results files — the bitwise kernel pin makes the policy unobservable
/// everywhere except wall-clock.
#[test]
fn serve_sweep_results_are_identical_across_kernel_policies() {
    let scalar = run_in_scratch(
        "serve-scalar",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[&SERVE_ARGS[..], &["--kernels", "scalar"]].concat(),
        None,
    );
    for policy in ["blocked", "simd"] {
        let other = run_in_scratch(
            &format!("serve-{policy}"),
            env!("CARGO_BIN_EXE_serve_sweep"),
            &[&SERVE_ARGS[..], &["--kernels", policy]].concat(),
            None,
        );
        for rel in ["results/serve_sweep.csv", "results/serve_sweep.json"] {
            assert_eq!(
                read(&scalar, rel),
                read(&other, rel),
                "{rel} differs between --kernels scalar and --kernels {policy}"
            );
        }
    }
}

/// `CTA_KERNELS` is the same knob as `--kernels`, and a bogus value is
/// ignored in favour of the auto default (an env var is a *default*, not
/// an argument): every spelling reproduces the same bytes and none of
/// them may fail.
#[test]
fn cta_kernels_env_is_forgiving_and_unobservable() {
    let baseline =
        run_in_scratch("serve-noenv", env!("CARGO_BIN_EXE_serve_sweep"), &SERVE_ARGS, None);
    for (label, value) in [("env-scalar", "scalar"), ("env-bogus", "warp-drive")] {
        let run =
            run_in_scratch(label, env!("CARGO_BIN_EXE_serve_sweep"), &SERVE_ARGS, Some(value));
        for rel in ["results/serve_sweep.csv", "results/serve_sweep.json"] {
            assert_eq!(
                read(&baseline, rel),
                read(&run, rel),
                "{rel} differs under CTA_KERNELS={value}"
            );
        }
    }
}

/// The kernel microbench's pinned outputs are deterministic for a fixed
/// seed regardless of the installed policy (it exercises each policy
/// explicitly) — and its digest column proves the cross-policy identity
/// it asserted internally.
#[test]
fn kernel_sweep_csv_is_identical_across_installed_policies() {
    // One rep on the pool keeps this debug-build smoke affordable; the
    // digests (the deterministic part) are what is byte-compared.
    let args = ["--seed", "7", "--reps", "1"];
    let scalar = run_in_scratch(
        "micro-scalar",
        env!("CARGO_BIN_EXE_kernel_sweep"),
        &[&args[..], &["--kernels", "scalar"]].concat(),
        None,
    );
    let simd = run_in_scratch(
        "micro-simd",
        env!("CARGO_BIN_EXE_kernel_sweep"),
        &[&args[..], &["--kernels", "simd"]].concat(),
        None,
    );
    for rel in ["results/kernel_sweep.csv", "results/kernel_sweep.json"] {
        assert_eq!(
            read(&scalar, rel),
            read(&simd, rel),
            "{rel} differs between installed kernel policies"
        );
    }
    // The wall-clock sidecar must exist and carry per-policy entries.
    let bench = String::from_utf8(read(&simd, "results/BENCH_kernels.json")).expect("utf-8");
    for needle in ["\"runs\"", "\"policy\":\"scalar\"", "\"policy\":\"simd\"", "wall_ms"] {
        assert!(bench.contains(needle), "BENCH_kernels.json missing {needle}: {bench}");
    }
}
