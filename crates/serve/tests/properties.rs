//! Property tests of the fleet runtime's scheduler invariants.
//!
//! Across randomly drawn fleet shapes, load levels and policies:
//!
//! * **conservation** — every offered request is accounted for exactly
//!   once (completed + shed == offered), with no duplicated ids;
//! * **causality** — a completion never precedes its own arrival plus its
//!   solo service time (the cost model's admissibility lower bound);
//! * **determinism** — a fixed seed reproduces the full report bitwise.

use cta_serve::{
    mmpp_requests, poisson_requests, simulate_fleet, AdmissionPolicy, BatchPolicy, CostModel,
    FleetConfig, LoadSpec, MmppParams, RoutingPolicy,
};
use cta_sim::{AttentionTask, CtaSystem, SystemConfig};
use proptest::prelude::*;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn routing(choice: u8) -> RoutingPolicy {
    match choice % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::JoinShortestQueue,
        _ => RoutingPolicy::LeastOutstandingWork,
    }
}

fn config(replicas: usize, route: u8, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = routing(route);
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn no_request_is_lost_or_duplicated(
        replicas in 1usize..5,
        route in 0u8..3,
        batch in 1usize..5,
        depth in 1usize..8,
        count in 1usize..60,
        rate in 100.0f64..40_000.0,
        seed in 0u64..1_000,
    ) {
        let requests = poisson_requests(&spec(), count, rate, seed);
        let report = simulate_fleet(&config(replicas, route, batch, depth), &requests);

        prop_assert_eq!(report.completions.len() + report.shed.len(), count);
        prop_assert_eq!(report.metrics.completed + report.metrics.shed, count);
        prop_assert_eq!(
            report.metrics.per_replica_completed.iter().sum::<usize>(),
            report.metrics.completed
        );

        let mut ids: Vec<u64> = report
            .completions.iter().map(|c| c.id)
            .chain(report.shed.iter().map(|s| s.id))
            .collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(ids, expected, "every id exactly once across outcomes");
    }

    fn completions_respect_causality_and_solo_lower_bound(
        replicas in 1usize..4,
        route in 0u8..3,
        batch in 1usize..4,
        count in 1usize..40,
        rate in 100.0f64..20_000.0,
        seed in 0u64..1_000,
    ) {
        let s = spec();
        let requests = poisson_requests(&s, count, rate, seed);
        // Unbounded admission: everything completes, so the bound is
        // checked on every request.
        let mut cfg = config(replicas, route, batch, 1);
        cfg.admission = AdmissionPolicy::admit_all();
        let report = simulate_fleet(&cfg, &requests);
        prop_assert_eq!(report.completions.len(), count);

        let system = CtaSystem::new(SystemConfig::paper());
        let mut cost = CostModel::new();
        let solo = cost.request_service_s(&system, &requests[0]);
        for c in &report.completions {
            prop_assert!(c.finish_s >= c.arrival_s, "finish before arrival");
            // Merging never shortens a layer's critical path, so realised
            // latency is at least the solo service time (tolerance for
            // step-granular float accumulation).
            prop_assert!(
                c.latency_s() >= solo * (1.0 - 1e-9),
                "request {} latency {} below solo service {}",
                c.id, c.latency_s(), solo
            );
        }
        // Completion times are non-decreasing in report order per replica.
        for r in 0..replicas {
            let finishes: Vec<f64> = report
                .completions.iter().filter(|c| c.replica == r).map(|c| c.finish_s).collect();
            prop_assert!(
                finishes.windows(2).all(|w| w[0] <= w[1]),
                "replica {} completions out of order", r
            );
        }
    }

    fn fixed_seed_reproduces_the_report_bitwise(
        replicas in 1usize..4,
        route in 0u8..3,
        batch in 1usize..4,
        depth in 1usize..6,
        count in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let s = spec();
        let params = MmppParams::new(2_000.0, 50_000.0, 0.1);
        let requests = mmpp_requests(&s, count, params, seed);
        prop_assert_eq!(&requests, &mmpp_requests(&s, count, params, seed));

        let cfg = config(replicas, route, batch, depth);
        let a = simulate_fleet(&cfg, &requests);
        let b = simulate_fleet(&cfg, &requests);
        prop_assert_eq!(a, b);
    }
}
