//! Streaming decode sessions: the scheduler-level guarantees.
//!
//! * **Sticky routing** — with [`SessionPolicy::sticky`] every completed
//!   turn of a healthy session lands on one replica and pays no state
//!   rebuild (`re_prefills == 0` without faults); the stateless ablation
//!   on the same trace re-prefills whenever routing moves a session.
//! * **Crash semantics** — evicting a replica kills the sessions resident
//!   on it: in-flight turns shed as [`ShedReason::SessionLost`] (never
//!   `ReplicaLost`), later turns of a lost session shed at arrival, and
//!   conservation still holds turn-for-turn.
//! * **Engine independence** — session bookkeeping lives in the shared
//!   handlers, so the calendar-queue driver reproduces the step scan
//!   bitwise, faults included.
//! * **Sessions-off preservation** — a builder fleet without a session
//!   policy is bitwise the pre-session fleet on ordinary traffic (the
//!   golden suite pins the same property across every preset).

use cta_serve::{
    poisson_requests, session_requests, simulate_fleet, AdmissionPolicy, BatchPolicy, CrashWindow,
    FaultPlan, FleetConfig, FleetEngine, FleetReport, LoadSpec, RetryPolicy, RoutingPolicy,
    ServeRequest, SessionPolicy, ShedReason,
};
use cta_sim::{AttentionTask, SystemConfig};
use cta_workloads::SessionSpec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn session_load(sessions: usize, seed: u64) -> Vec<ServeRequest> {
    let turns = SessionSpec::new(sessions, 2_000.0, 3.0, 1e-3);
    session_requests(&spec(), &turns, 0.02, 0.5, seed)
}

fn fleet(replicas: usize, policy: SessionPolicy) -> FleetConfig {
    FleetConfig::builder(SystemConfig::paper())
        .replicas(replicas)
        .routing(RoutingPolicy::LeastOutstandingWork)
        .admission(AdmissionPolicy::bounded(64))
        .batch(BatchPolicy::up_to(4))
        .sessions(policy)
        .build()
        .expect("valid session fleet")
}

/// Runs the same (config, trace) under both engines and returns the pair
/// with the event-only queue samples cleared for full comparison.
fn both_engines(cfg: &FleetConfig, requests: &[ServeRequest]) -> (FleetReport, FleetReport) {
    let mut step_cfg = cfg.clone();
    step_cfg.engine = FleetEngine::StepGranular;
    let step = simulate_fleet(&step_cfg, requests);
    let mut event_cfg = cfg.clone();
    event_cfg.engine = FleetEngine::EventDriven;
    let mut event = simulate_fleet(&event_cfg, requests);
    event.event_queue_samples.clear();
    (step, event)
}

#[test]
fn sticky_sessions_stay_on_one_replica_and_never_re_prefill_without_faults() {
    let requests = session_load(12, 7);
    let report = simulate_fleet(&fleet(3, SessionPolicy::sticky()), &requests);
    let stats = report.metrics.sessions.as_ref().expect("session fleet reports session stats");
    assert_eq!(stats.re_prefills, 0, "healthy sticky sessions never rebuild state");
    assert_eq!(stats.sessions_lost, 0);
    assert!(stats.turns_completed > 0);
    assert!(stats.mean_itl_s > 0.0 && stats.p99_itl_s >= stats.mean_itl_s);

    // Every completed turn of a session was served by the same replica.
    let mut home: BTreeMap<u64, usize> = BTreeMap::new();
    for c in &report.completions {
        let turn = c.session.expect("session trace completions carry their turn");
        let prev = home.insert(turn.session, c.replica);
        if let Some(p) = prev {
            assert_eq!(p, c.replica, "session {} moved replicas", turn.session);
        }
    }
}

#[test]
fn stateless_ablation_re_prefills_when_routing_moves_a_session() {
    // Round-robin + stateless: consecutive turns of the same session are
    // all but guaranteed to land on different replicas of a 3-wide fleet.
    let requests = session_load(12, 7);
    let mut cfg = fleet(3, SessionPolicy::stateless());
    cfg.routing = RoutingPolicy::RoundRobin;
    let report = simulate_fleet(&cfg, &requests);
    let stats = report.metrics.sessions.as_ref().expect("stats");
    assert!(stats.re_prefills > 0, "free routing must pay state rebuilds");
    assert!(stats.re_prefill_rate > 0.0);

    // Sticky on the identical trace completes at least as many turns and
    // rebuilds strictly less.
    let sticky = simulate_fleet(&fleet(3, SessionPolicy::sticky()), &requests);
    let sticky_stats = sticky.metrics.sessions.as_ref().expect("stats");
    assert!(sticky_stats.re_prefills < stats.re_prefills);
}

#[test]
fn a_crash_with_retries_moves_sessions_and_charges_re_prefills() {
    let requests = session_load(16, 3);
    let span = requests.last().expect("nonempty").arrival_s;
    let mut cfg = fleet(2, SessionPolicy::sticky());
    cfg.faults = FaultPlan {
        crashes: vec![CrashWindow { replica: 0, down_s: span * 0.3, up_s: Some(span * 0.9) }],
        ..FaultPlan::none()
    };
    let report = simulate_fleet(&cfg, &requests);
    let stats = report.metrics.sessions.as_ref().expect("stats");
    // Evicted state is rebuilt on the survivor: turns that follow a
    // moved session pay re-prefills instead of being lost.
    assert!(stats.re_prefills > 0, "a mid-trace crash must move at least one session");
    assert_eq!(report.metrics.completed + report.metrics.shed, requests.len());
}

#[test]
fn a_crash_sheds_resident_sessions_as_session_lost() {
    // Arrivals far outpace decode service, so replica 0 carries a deep
    // backlog when it dies; with no retry budget every orphaned turn
    // loses its session outright.
    let turns = SessionSpec::new(40, 400_000.0, 3.0, 1e-4);
    let requests = session_requests(&spec(), &turns, 0.02, 0.5, 3);
    let span = requests.last().expect("nonempty").arrival_s;
    let mut cfg = fleet(2, SessionPolicy::sticky());
    cfg.admission = AdmissionPolicy::admit_all();
    cfg.retry = RetryPolicy::never();
    // Knock replica 0 out mid-trace and never bring it back: every
    // session resident there loses its state.
    cfg.faults = FaultPlan {
        crashes: vec![CrashWindow { replica: 0, down_s: span * 0.4, up_s: None }],
        ..FaultPlan::none()
    };
    let report = simulate_fleet(&cfg, &requests);
    let stats = report.metrics.sessions.as_ref().expect("stats");

    let lost: Vec<_> = report.shed.iter().filter(|s| s.reason == ShedReason::SessionLost).collect();
    assert!(!lost.is_empty(), "a permanent mid-trace outage must lose sessions");
    assert_eq!(stats.turns_shed, lost.len(), "every session shed carries SessionLost");
    assert!(stats.sessions_lost > 0);
    // Session turns are never shed under the generic replica-loss reason.
    assert!(
        report.shed.iter().all(|s| s.reason != ShedReason::ReplicaLost),
        "session turns shed as SessionLost, not ReplicaLost"
    );
    // Conservation: every generated turn completes or sheds exactly once.
    assert_eq!(report.metrics.completed + report.metrics.shed, requests.len());
    // Once a session is lost, no later turn of it completes.
    let lost_ids: BTreeSet<u64> = lost.iter().map(|s| s.id).collect();
    let lost_sessions: BTreeSet<u64> = requests
        .iter()
        .filter(|r| lost_ids.contains(&r.id))
        .map(|r| r.session.expect("session trace").session)
        .collect();
    for c in &report.completions {
        let turn = c.session.expect("turn");
        if lost_sessions.contains(&turn.session) {
            let shed_arrivals: Vec<f64> = requests
                .iter()
                .filter(|r| {
                    lost_ids.contains(&r.id) && r.session.expect("turn").session == turn.session
                })
                .map(|r| r.arrival_s)
                .collect();
            let first_shed = shed_arrivals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            assert!(
                c.arrival_s < first_shed,
                "turn of session {} completed after the session was lost",
                turn.session
            );
        }
    }
}

#[test]
fn session_bookkeeping_is_engine_independent() {
    for seed in [1u64, 9, 42] {
        let requests = session_load(14, seed);
        let span = requests.last().expect("nonempty").arrival_s;
        let mut cfg = fleet(3, SessionPolicy::sticky());
        cfg.faults = FaultPlan::seeded(3, 2.0 * span, span / 2.0, span / 20.0, seed);
        let (step, event) = both_engines(&cfg, &requests);
        assert_eq!(step, event, "seed {seed}");
    }
}

#[test]
fn sessions_off_builder_fleet_is_bitwise_the_pre_session_fleet() {
    // The config the builder produces without .sessions() must drive
    // ordinary traffic exactly like the preset it documents.
    let requests = poisson_requests(&spec(), 40, 20_000.0, 5);
    let preset = simulate_fleet(&FleetConfig::sharded(SystemConfig::paper(), 3), &requests);
    let built = FleetConfig::builder(SystemConfig::paper())
        .replicas(3)
        .routing(RoutingPolicy::LeastOutstandingWork)
        .admission(AdmissionPolicy::bounded(64))
        .batch(BatchPolicy::up_to(4))
        .build()
        .expect("valid");
    let report = simulate_fleet(&built, &requests);
    assert_eq!(report, preset);
    assert!(report.metrics.sessions.is_none(), "no policy, no session stats");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sessions_conserve_turns_across_fleet_shapes(
        replicas in 1usize..4,
        sessions in 1usize..12,
        sticky in 0u8..2,
        seed in 0u64..500,
        faulty in 0u8..2,
    ) {
        let requests = session_load(sessions, seed);
        let policy =
            if sticky == 1 { SessionPolicy::sticky() } else { SessionPolicy::stateless() };
        let mut cfg = fleet(replicas, policy);
        if faulty == 1 {
            let span = requests.last().expect("nonempty").arrival_s.max(1e-6);
            cfg.faults = FaultPlan::seeded(replicas, 2.0 * span, span / 2.0, span / 10.0, seed);
        }
        let report = simulate_fleet(&cfg, &requests);
        prop_assert_eq!(report.metrics.completed + report.metrics.shed, requests.len());
        let stats = report.metrics.sessions.as_ref().expect("stats");
        prop_assert_eq!(stats.turns_completed, report.completions.len());
        prop_assert_eq!(stats.turns_shed, report.shed.len());
        // Distinct sessions observed never exceed those generated, and
        // lost sessions never exceed observed.
        prop_assert!(stats.sessions <= sessions);
        prop_assert!(stats.sessions_lost <= sessions);
        // Both engines agree on every byte.
        let (step, event) = both_engines(&cfg, &requests);
        prop_assert_eq!(step, event);
    }
}
