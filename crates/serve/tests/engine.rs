//! Cross-engine equivalence: the calendar-queue event core must be a
//! drop-in replacement for the step-granular scan.
//!
//! [`FleetEngine::EventDriven`] routes control flow through
//! `cta-events` instead of scanning every replica for the next due
//! instant, but both drivers call the *same* handler code in the same
//! order, so every float operation — and therefore every report byte
//! and every trace byte — must be identical. These tests pin that
//! contract where it is most likely to crack:
//!
//! * randomly drawn fleet shapes (routing × batching × admission);
//! * seeded crash/recovery schedules (back-dated requeues, outage
//!   no-ops);
//! * the full overload-control stack (brownout ladder, breakers,
//!   hedged dispatch — including back-dated hedge-copy steps);
//! * coincident timestamps (equal arrivals resolved by request id);
//! * the telemetry stream: identical `RingBufferSink` bytes, so a
//!   trace from either engine is *the* trace.
//!
//! The only intentional differences: `event_queue_samples` is populated
//! by the event driver alone (the step scan has no queue to sample), so
//! reports are compared with it cleared.

use cta_serve::{
    mmpp_requests, poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy,
    BatchPolicy, FaultPlan, FleetConfig, FleetEngine, FleetReport, LoadSpec, MmppParams,
    OverloadControl, QosClass, RoutingPolicy, ServeRequest,
};
use cta_sim::{AttentionTask, SystemConfig};
use cta_telemetry::RingBufferSink;
use proptest::prelude::*;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn config(replicas: usize, route: u8, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = match route % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::JoinShortestQueue,
        _ => RoutingPolicy::LeastOutstandingWork,
    };
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

/// Runs the same (config, trace) under both engines and returns the pair
/// of reports with the event-only queue samples cleared, ready for full
/// `PartialEq` comparison.
fn both_engines(cfg: &FleetConfig, requests: &[ServeRequest]) -> (FleetReport, FleetReport) {
    let mut step_cfg = cfg.clone();
    step_cfg.engine = FleetEngine::StepGranular;
    let step = simulate_fleet(&step_cfg, requests);
    let mut event_cfg = cfg.clone();
    event_cfg.engine = FleetEngine::EventDriven;
    let mut event = simulate_fleet(&event_cfg, requests);
    assert!(!event.event_queue_samples.is_empty(), "the event driver samples its queue occupancy");
    assert!(step.event_queue_samples.is_empty(), "the step driver has no queue to sample");
    event.event_queue_samples.clear();
    (step, event)
}

#[test]
fn single_fifo_reports_are_identical() {
    let cfg = FleetConfig::single_fifo(SystemConfig::paper());
    let requests = poisson_requests(&spec(), 40, 20_000.0, 3);
    let (step, event) = both_engines(&cfg, &requests);
    assert_eq!(step, event);
}

#[test]
fn seeded_fault_schedules_survive_the_engine_swap() {
    // Crashes evict work mid-flight, requeue it under the retry budget,
    // and recovery replays back-dated step times — the paths where an
    // event queue most easily drifts from a rescan.
    for seed in [1u64, 9, 42] {
        let mut cfg = config(3, 1, 4, 16);
        let requests = poisson_requests(&spec(), 80, 40_000.0, seed);
        let span = requests.last().expect("nonempty").arrival_s;
        cfg.faults = FaultPlan::seeded(3, 2.0 * span, span / 2.0, span / 20.0, seed);
        let (step, event) = both_engines(&cfg, &requests);
        assert_eq!(step, event, "seed {seed}");
        assert_eq!(step.events_processed, event.events_processed, "seed {seed}");
    }
}

#[test]
fn full_overload_stack_is_engine_independent() {
    // Brownout + breakers + hedging under bursty MMPP load and faults:
    // hedge timers, hedge-win cancellations and breaker probes all flow
    // through the calendar queue in event mode.
    let mut cfg = config(3, 1, 4, 12);
    let mut load = spec();
    load.class = QosClass::interactive(0.05);
    let requests = mmpp_requests(&load, 120, MmppParams::new(10_000.0, 80_000.0, 0.1), 7);
    let span = requests.last().expect("nonempty").arrival_s;
    cfg.faults = FaultPlan::seeded(3, 2.0 * span, span, span / 10.0, 7);
    cfg.overload = OverloadControl::standard();
    let (step, event) = both_engines(&cfg, &requests);
    assert_eq!(step, event);
    assert!(step.metrics.overload.hedged > 0, "the scenario must actually hedge");
}

#[test]
fn coincident_arrivals_resolve_by_request_id_in_both_engines() {
    // Equal timestamps are legal in replayed traces (`replay_trace`
    // accepts them); both engines must serve them in id order. Two
    // bursts of four simultaneous arrivals, one at t=0.
    let s = spec();
    let mk = |id: u64, t: f64| ServeRequest::uniform(id, t, s.class, s.task, s.layers, s.heads);
    let requests: Vec<ServeRequest> =
        (0..4u64).map(|id| mk(id, 0.0)).chain((4..8u64).map(|id| mk(id, 1e-3))).collect();
    let cfg = config(2, 0, 2, 4);
    let (step, event) = both_engines(&cfg, &requests);
    assert_eq!(step, event);
    // The admitted prefix is deterministic: ids route in order.
    assert_eq!(step.metrics.completed + step.metrics.shed, 8);
}

#[test]
fn trace_bytes_are_engine_independent() {
    // The telemetry stream is written from inside the shared handlers,
    // so the two engines must emit byte-identical event streams — the
    // property the golden trace-SHA pins rely on.
    let mut cfg = config(2, 2, 3, 8);
    let requests = poisson_requests(&spec(), 60, 30_000.0, 13);
    let span = requests.last().expect("nonempty").arrival_s;
    cfg.faults = FaultPlan::seeded(2, 2.0 * span, span, span / 10.0, 13);

    cfg.engine = FleetEngine::StepGranular;
    let mut step_sink = RingBufferSink::with_capacity(1 << 16);
    let step = simulate_fleet_traced(&cfg, &requests, &mut step_sink);

    cfg.engine = FleetEngine::EventDriven;
    let mut event_sink = RingBufferSink::with_capacity(1 << 16);
    let mut event = simulate_fleet_traced(&cfg, &requests, &mut event_sink);

    assert_eq!(step_sink.dropped(), 0);
    assert_eq!(event_sink.dropped(), 0);
    assert_eq!(step_sink.events(), event_sink.events(), "trace streams diverged");
    event.event_queue_samples.clear();
    assert_eq!(step, event);
}

#[test]
fn queue_samples_are_ordered_and_bounded() {
    let mut cfg = config(4, 1, 4, 16);
    cfg.engine = FleetEngine::EventDriven;
    let requests = poisson_requests(&spec(), 100, 50_000.0, 21);
    let report = simulate_fleet(&cfg, &requests);
    assert!(!report.event_queue_samples.is_empty());
    for w in report.event_queue_samples.windows(2) {
        assert!(w[0].0 <= w[1].0, "samples follow the virtual clock");
    }
    for &(t, depth) in &report.event_queue_samples {
        assert!(t.is_finite() && t >= 0.0);
        // The queue never holds more than one step event per replica
        // plus the chained arrival/fault pair plus live retry/hedge
        // timers; a loose sanity ceiling catches leaks.
        assert!(depth <= 4 + 2 * requests.len(), "queue depth {depth} leaks events");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_fleet_shapes(
        replicas in 1usize..5,
        route in 0u8..3,
        batch in 1usize..4,
        depth in 1usize..10,
        count in 1usize..60,
        rate in 1_000.0f64..60_000.0,
        seed in 0u64..1_000,
        faulty in 0u8..2,
    ) {
        let mut cfg = config(replicas, route, batch, depth);
        let requests = poisson_requests(&spec(), count, rate, seed);
        if faulty == 1 {
            let span = requests.last().expect("nonempty").arrival_s.max(1e-6);
            cfg.faults = FaultPlan::seeded(replicas, 2.0 * span, span, span / 10.0, seed);
        }
        let (step, event) = both_engines(&cfg, &requests);
        prop_assert_eq!(step, event);
    }
}
