//! Fault-injection integration tests: the guarantees that make the
//! failure model trustworthy.
//!
//! * **Healthy-path preservation** — `FaultPlan::none()` reproduces the
//!   fault-free fleet bitwise, traced or untraced, and changing the
//!   [`RetryPolicy`] cannot perturb a run that never crashes.
//! * **Conservation under faults** — across randomly drawn fault
//!   schedules, every arrival is accounted for exactly once: completed,
//!   retried-then-completed, or shed with a reason; the retry counters
//!   reconcile against the per-outcome retry counts.
//! * **Determinism** — any (plan, seed) pair reproduces the identical
//!   [`FleetReport`], including the shed set, bit for bit.
//! * **Degradation semantics** — a crash makes the victim's availability
//!   drop below 1, orphaned work is requeued (or shed as `ReplicaLost`
//!   under `RetryPolicy::never()`), and the fault lane shows up in the
//!   trace exactly when the plan is non-empty.

use cta_serve::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    CrashWindow, FaultPlan, FleetConfig, LoadSpec, RetryPolicy, RoutingPolicy, ShedReason,
};
use cta_sim::{AttentionTask, SystemConfig};
use cta_telemetry::{chrome_trace_json, validate_chrome_trace, Module, RingBufferSink};
use proptest::prelude::*;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn config(replicas: usize, route: u8, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = match route % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::JoinShortestQueue,
        _ => RoutingPolicy::LeastOutstandingWork,
    };
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

/// A seeded plan scaled to the trace: MTBF of half the span, MTTR of a
/// twentieth, so a typical run sees a handful of crashes per replica.
fn scaled_plan(replicas: usize, span_s: f64, seed: u64) -> FaultPlan {
    FaultPlan::seeded(replicas, 2.0 * span_s, 0.5 * span_s, 0.05 * span_s, seed)
}

// --- healthy-path preservation -------------------------------------------

#[test]
fn empty_plan_reproduces_the_fault_free_fleet_bitwise() {
    for (replicas, batch) in [(1usize, 1usize), (2, 4), (4, 2)] {
        let requests = poisson_requests(&spec(), 48, 30_000.0, 11);
        let baseline_cfg = config(replicas, 1, batch, 8);
        assert!(baseline_cfg.faults.is_empty(), "constructors default to the healthy plan");
        let baseline = simulate_fleet(&baseline_cfg, &requests);

        // Explicit FaultPlan::none() and an arbitrary retry policy: the
        // retry machinery must be unreachable without a crash.
        let mut cfg = baseline_cfg.clone();
        cfg.faults = FaultPlan::none();
        cfg.retry = RetryPolicy { max_attempts: 17, backoff_s: 0.5, multiplier: 3.0 };
        assert_eq!(simulate_fleet(&cfg, &requests), baseline);

        // Traced healthy run: same report, and nothing on the fault lane.
        let mut sink = RingBufferSink::with_capacity(1 << 16);
        let traced = simulate_fleet_traced(&cfg, &requests, &mut sink);
        assert_eq!(traced, baseline);
        assert!(
            sink.events().iter().all(|e| e.track.module != Module::Fault),
            "healthy runs must not emit fault-lane events"
        );

        assert_eq!(baseline.metrics.retried, 0);
        assert_eq!(baseline.metrics.retry_events, 0);
        assert!(baseline.metrics.per_replica_availability.iter().all(|&a| a == 1.0));
    }
}

// --- degradation semantics ------------------------------------------------

#[test]
fn a_crash_degrades_availability_and_requeues_orphans() {
    let requests = poisson_requests(&spec(), 40, 20_000.0, 3);
    let span = requests.last().expect("non-empty").arrival_s;
    let mut cfg = config(2, 1, 2, 64);
    // Knock replica 0 out for the middle half of the trace.
    cfg.faults = FaultPlan {
        crashes: vec![CrashWindow { replica: 0, down_s: span * 0.25, up_s: Some(span * 0.75) }],
        ..FaultPlan::none()
    };
    let report = simulate_fleet(&cfg, &requests);
    let m = &report.metrics;

    assert_eq!(m.completed + m.shed, 40, "conservation under faults");
    assert!(
        m.per_replica_availability[0] < 1.0,
        "crashed replica availability {} must drop below 1",
        m.per_replica_availability[0]
    );
    assert_eq!(m.per_replica_availability[1], 1.0, "survivor stays fully available");
    // The outage lands mid-trace on a loaded replica: something must have
    // been evicted and either requeued or shed as ReplicaLost.
    let lost = report.shed.iter().filter(|s| s.reason == ShedReason::ReplicaLost).count();
    assert!(
        m.retry_events > 0 || lost > 0,
        "a mid-trace outage must orphan work (retries {}, lost {})",
        m.retry_events,
        lost
    );
    // Retried requests still complete under the standard budget unless the
    // fleet sheds them with an explicit reason — never silently.
    for s in &report.shed {
        assert!(
            s.reason == ShedReason::ReplicaLost || s.retries == 0,
            "retried requests can only be shed as ReplicaLost"
        );
    }
}

#[test]
fn retry_never_sheds_every_orphan_as_replica_lost() {
    let requests = poisson_requests(&spec(), 40, 20_000.0, 3);
    let span = requests.last().expect("non-empty").arrival_s;
    let mut cfg = config(2, 1, 2, 64);
    cfg.faults = FaultPlan {
        crashes: vec![CrashWindow { replica: 0, down_s: span * 0.25, up_s: Some(span * 0.75) }],
        ..FaultPlan::none()
    };
    cfg.retry = RetryPolicy::never();
    let report = simulate_fleet(&cfg, &requests);

    assert_eq!(report.metrics.retry_events, 0, "never() forbids requeues");
    let lost = report.shed.iter().filter(|s| s.reason == ShedReason::ReplicaLost).count();
    assert!(lost > 0, "orphans must be shed when the retry budget is zero");

    // The same schedule under the standard budget sheds fewer (or equal)
    // requests: retries are graceful degradation, not churn.
    let mut retry_cfg = cfg.clone();
    retry_cfg.retry = RetryPolicy::standard();
    let retried = simulate_fleet(&retry_cfg, &requests);
    assert!(
        retried.metrics.completed >= report.metrics.completed,
        "a retry budget must not lose completions ({} vs {})",
        retried.metrics.completed,
        report.metrics.completed
    );
}

#[test]
fn fault_lane_appears_in_traces_exactly_when_faults_fire() {
    let requests = poisson_requests(&spec(), 40, 25_000.0, 5);
    let span = requests.last().expect("non-empty").arrival_s;
    let mut cfg = config(2, 2, 2, 64);
    cfg.faults = scaled_plan(2, span, 21);
    assert!(!cfg.faults.is_empty());

    let mut sink = RingBufferSink::with_capacity(1 << 16);
    let traced = simulate_fleet_traced(&cfg, &requests, &mut sink);
    assert_eq!(traced, simulate_fleet(&cfg, &requests), "tracing never changes a faulty run");

    let events = sink.events();
    assert!(
        events.iter().any(|e| e.track.module == Module::Fault),
        "a crashing run must emit fault-lane events"
    );
    // The export — fault lane included — still passes the Chrome validator.
    validate_chrome_trace(&chrome_trace_json(&events)).expect("faulty trace validates");
}

// --- conservation + determinism across random schedules (property) --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn faults_conserve_requests_and_reconcile_retry_counters(
        replicas in 1usize..5,
        route in 0u8..3,
        batch in 1usize..5,
        depth in 1usize..8,
        count in 1usize..60,
        rate in 1_000.0f64..40_000.0,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        max_attempts in 0u32..5,
    ) {
        let requests = poisson_requests(&spec(), count, rate, seed);
        let span = requests.last().expect("non-empty").arrival_s.max(1e-9);
        let mut cfg = config(replicas, route, batch, depth);
        cfg.faults = scaled_plan(replicas, span, fault_seed);
        cfg.retry = RetryPolicy { max_attempts, backoff_s: 1e-5, multiplier: 2.0 };
        let report = simulate_fleet(&cfg, &requests);

        // Every arrival exactly once across completions ∪ shed.
        prop_assert_eq!(report.metrics.completed + report.metrics.shed, count);
        let mut ids: Vec<u64> = report
            .completions.iter().map(|c| c.id)
            .chain(report.shed.iter().map(|s| s.id))
            .collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..count as u64).collect::<Vec<_>>());

        // Retry counters reconcile against the per-outcome counts.
        let retries: Vec<u32> = report
            .completions.iter().map(|c| c.retries)
            .chain(report.shed.iter().map(|s| s.retries))
            .collect();
        prop_assert_eq!(
            report.metrics.retry_events as u64,
            retries.iter().map(|&r| r as u64).sum::<u64>()
        );
        prop_assert_eq!(
            report.metrics.retried,
            retries.iter().filter(|&&r| r > 0).count()
        );
        // The budget is a hard bound.
        prop_assert!(retries.iter().all(|&r| r <= max_attempts));
        // Availability is a fraction.
        prop_assert!(report
            .metrics.per_replica_availability.iter()
            .all(|a| (0.0..=1.0).contains(a)));
    }

    fn any_fault_plan_and_seed_reproduce_the_report_bitwise(
        replicas in 1usize..4,
        route in 0u8..3,
        batch in 1usize..4,
        depth in 1usize..6,
        count in 1usize..40,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
    ) {
        let requests = poisson_requests(&spec(), count, 20_000.0, seed);
        let span = requests.last().expect("non-empty").arrival_s.max(1e-9);
        let mut cfg = config(replicas, route, batch, depth);
        cfg.faults = scaled_plan(replicas, span, fault_seed);
        prop_assert_eq!(&cfg.faults, &scaled_plan(replicas, span, fault_seed));

        let a = simulate_fleet(&cfg, &requests);
        let b = simulate_fleet(&cfg, &requests);
        prop_assert_eq!(&a, &b, "identical plan + trace must reproduce bitwise");

        // The shed set — ids, reasons, retry counts — is part of that
        // guarantee.
        let sheds: Vec<(u64, ShedReason, u32)> =
            a.shed.iter().map(|s| (s.id, s.reason, s.retries)).collect();
        let sheds_b: Vec<(u64, ShedReason, u32)> =
            b.shed.iter().map(|s| (s.id, s.reason, s.retries)).collect();
        prop_assert_eq!(sheds, sheds_b);
    }
}
