//! Closed-loop overload control, end to end through `simulate_fleet`,
//! plus controller properties under proptest:
//!
//! * **off-path preservation** — `OverloadControl::off()` (and the
//!   config-struct default) reproduces the plain fleet bitwise, traced
//!   and untraced, with nothing on the brownout/breaker/hedge lanes;
//! * **brownout** — sustained overload walks replicas down the ladder,
//!   time-in-brownout and accuracy loss are accounted, and conservation
//!   holds throughout;
//! * **breaker / hedge** — crash-heavy runs trip breakers; deadline
//!   traffic hedges, and the win/cancel ledger balances;
//! * **monotonicity** — the controller's resting level is monotone in
//!   sustained queue depth;
//! * **hysteresis** — square-wave load cannot make the controller
//!   oscillate: transitions are bounded by the regime changes, not the
//!   flicker rate.

use cta_serve::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    BrownoutConfig, BrownoutController, ControllerPolicy, CrashWindow, FaultPlan, FleetConfig,
    LoadSpec, OverloadControl, QosClass, RoutingPolicy,
};
use cta_sim::{AttentionTask, CtaSystem, SystemConfig};
use cta_telemetry::{Module, RingBufferSink};
use proptest::prelude::*;

fn task() -> AttentionTask {
    AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6)
}

fn spec() -> LoadSpec {
    LoadSpec::standard(task(), 3, 4)
}

fn config(replicas: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = RoutingPolicy::JoinShortestQueue;
    cfg.batch = BatchPolicy::up_to(4);
    cfg.admission = AdmissionPolicy::bounded(16);
    cfg
}

/// Mean solo service time of the test task, for deriving rates/deadlines.
fn solo_s() -> f64 {
    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = cta_serve::CostModel::new();
    let probe = poisson_requests(&spec(), 1, 1.0, 3);
    cost.request_service_s(&system, &probe[0])
}

// --- off-path preservation -------------------------------------------------

#[test]
fn overload_off_reproduces_the_plain_fleet_bitwise() {
    for replicas in [1usize, 3] {
        let requests = poisson_requests(&spec(), 48, 1.2 * replicas as f64 / solo_s(), 11);
        let baseline_cfg = config(replicas);
        assert!(baseline_cfg.overload.is_off(), "constructors default to control off");
        let baseline = simulate_fleet(&baseline_cfg, &requests);

        // An explicit off() — and, separately, a traced off() run — must
        // both reproduce the baseline bit for bit, with silent control
        // lanes.
        let mut cfg = baseline_cfg.clone();
        cfg.overload = OverloadControl::off();
        assert_eq!(simulate_fleet(&cfg, &requests), baseline);

        let mut sink = RingBufferSink::with_capacity(1 << 16);
        let traced = simulate_fleet_traced(&cfg, &requests, &mut sink);
        assert_eq!(traced, baseline);
        assert!(
            sink.events().iter().all(|e| !matches!(
                e.track.module,
                Module::Brownout | Module::Breaker | Module::Hedge
            )),
            "control-off runs must not emit on the overload lanes"
        );

        let ov = &baseline.metrics.overload;
        assert_eq!(ov.hedged, 0);
        assert_eq!(ov.brownout_transitions, 0);
        assert_eq!(ov.breaker_opens, 0);
        assert_eq!(ov.mean_accuracy_loss_pct, 0.0);
        assert!(ov.per_replica_brownout_s.iter().all(|&s| s == 0.0));
    }
}

// --- brownout through the fleet -------------------------------------------

#[test]
fn sustained_overload_browns_out_and_recovers_quality_accounting() {
    let mut cfg = config(2);
    cfg.overload =
        OverloadControl { brownout: Some(BrownoutConfig::standard()), ..OverloadControl::off() };
    // 3× capacity, enough requests for the depth window to fill many
    // times over.
    let requests = poisson_requests(&spec(), 200, 3.0 * 2.0 / solo_s(), 5);
    let report = simulate_fleet(&cfg, &requests);
    let ov = &report.metrics.overload;

    assert_eq!(report.metrics.completed + report.metrics.shed, 200, "conservation");
    assert!(ov.brownout_transitions > 0, "3× overload must move the ladder: {ov:?}");
    assert!(ov.per_replica_brownout_s.iter().any(|&s| s > 0.0), "degraded time accounted");
    assert!(
        ov.mean_accuracy_loss_pct > 0.0 && ov.mean_accuracy_loss_pct <= ov.max_accuracy_loss_pct,
        "loss accounting must be populated and ordered: {ov:?}"
    );
    assert!(
        ov.max_accuracy_loss_pct <= 1.8 + 1e-12,
        "loss cannot exceed the deepest ladder point: {ov:?}"
    );

    // The same trace at comfortable load never engages the ladder.
    let calm = poisson_requests(&spec(), 200, 0.3 * 2.0 / solo_s(), 5);
    let calm_report = simulate_fleet(&cfg, &calm);
    assert_eq!(calm_report.metrics.overload.brownout_transitions, 0);
    assert_eq!(calm_report.metrics.overload.mean_accuracy_loss_pct, 0.0);
}

// --- breaker through the fleet --------------------------------------------

#[test]
fn repeated_crashes_trip_the_breaker_and_conservation_holds() {
    let mut cfg = config(2);
    cfg.overload = OverloadControl::standard();
    let solo = solo_s();
    // Replica 0 flaps: two short outages early in the trace, each one
    // orphaning whatever it held. Two consecutive failures is the
    // standard breaker threshold.
    let span = 40.0 * solo;
    cfg.faults = FaultPlan {
        crashes: vec![
            CrashWindow { replica: 0, down_s: 2.0 * solo, up_s: Some(2.5 * solo) },
            CrashWindow { replica: 0, down_s: 4.0 * solo, up_s: Some(4.5 * solo) },
            CrashWindow { replica: 0, down_s: 6.0 * solo, up_s: Some(span) },
        ],
        ..FaultPlan::default()
    };
    let requests = poisson_requests(&spec(), 120, 1.5 * 2.0 / solo, 9);
    let report = simulate_fleet(&cfg, &requests);

    assert_eq!(report.metrics.completed + report.metrics.shed, 120, "conservation");
    assert!(
        report.metrics.overload.breaker_opens > 0,
        "a flapping replica must open its breaker: {:?}",
        report.metrics.overload
    );
}

// --- hedging through the fleet --------------------------------------------

#[test]
fn deadline_traffic_hedges_and_the_ledger_balances() {
    let mut cfg = config(3);
    cfg.overload = OverloadControl::standard();
    let solo = solo_s();
    let mut hedge_spec = spec();
    // A generous deadline: requests qualify for hedging without being
    // shed as unmeetable.
    hedge_spec.class = QosClass::interactive(200.0 * solo);
    // Moderate load so queues stay shallow and the p99-derived delay
    // actually elapses before completion for a decent fraction.
    let requests = poisson_requests(&hedge_spec, 150, 0.9 * 3.0 / solo, 21);
    let report = simulate_fleet(&cfg, &requests);
    let ov = &report.metrics.overload;

    assert_eq!(report.metrics.completed + report.metrics.shed, 150, "conservation");
    assert!(ov.hedged > 0, "deadline-bearing traffic must hedge: {ov:?}");
    assert!(ov.hedge_wins <= ov.hedged, "wins are a subset of hedges: {ov:?}");
    assert!(
        ov.hedge_cancelled <= ov.hedged,
        "every cancellation stems from a dispatched hedge: {ov:?}"
    );
    // No request may be counted twice: completions are unique by id.
    let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.completions.len(), "hedge duplicates leaked to completions");
}

#[test]
fn hedging_without_deadlines_is_inert() {
    let mut cfg = config(3);
    cfg.overload = OverloadControl::standard();
    // The standard class has no deadline, so nothing qualifies.
    let requests = poisson_requests(&spec(), 100, 1.0 * 3.0 / solo_s(), 13);
    let report = simulate_fleet(&cfg, &requests);
    assert_eq!(report.metrics.overload.hedged, 0);
    assert_eq!(report.metrics.overload.hedge_wins, 0);
    assert_eq!(report.metrics.overload.hedge_cancelled, 0);
}

// --- controller properties -------------------------------------------------

/// Feeds `depths` through a fresh standard controller and returns
/// `(final_level, transitions)`.
fn drive(depths: impl IntoIterator<Item = f64>) -> (usize, usize) {
    let ladder_levels = 3; // BrownoutLadder::standard().max_level()
    let mut ctrl = BrownoutController::new(ControllerPolicy::standard(), ladder_levels);
    let mut transitions = 0;
    for d in depths {
        if ctrl.observe_depth(d).is_some() {
            transitions += 1;
        }
    }
    (ctrl.level(), transitions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under sustained constant depth, the level the controller settles
    /// at never decreases as the sustained depth grows.
    #[test]
    fn resting_level_is_monotone_in_sustained_depth(
        depth in 0.0f64..40.0,
        extra in 0.0f64..40.0,
        samples in 64usize..160,
    ) {
        let (lo_level, _) = drive(std::iter::repeat_n(depth, samples));
        let (hi_level, _) = drive(std::iter::repeat_n(depth + extra, samples));
        prop_assert!(
            hi_level >= lo_level,
            "deeper sustained queues must not rest at a shallower level: \
             depth {depth} -> {lo_level}, depth {} -> {hi_level}",
            depth + extra
        );
    }

    /// A square wave — however fast it flickers — cannot make the
    /// controller thrash. Transitions are bounded by the ladder walks the
    /// *sustained regimes* justify: at most one full climb plus one full
    /// descent per half-period, and far fewer when the flicker is faster
    /// than the observation window (the windowed mean never reaches
    /// either threshold region more often than that).
    #[test]
    fn square_wave_load_cannot_oscillate_the_ladder(
        high in 8.0f64..64.0,
        half_period in 1usize..64,
        periods in 1usize..6,
    ) {
        let max_level = 3usize;
        let wave = (0..periods).flat_map(|_| {
            std::iter::repeat_n(high, half_period).chain(std::iter::repeat_n(0.0, half_period))
        });
        let (_, transitions) = drive(wave);
        // One climb to the top and one descent to the floor per period is
        // the most any square wave can justify; hysteresis (full-window
        // evidence + dwell) keeps the realised count at or under it.
        let bound = 2 * max_level * periods;
        prop_assert!(
            transitions <= bound,
            "square wave (high {high}, half-period {half_period}, {periods} periods) \
             caused {transitions} transitions > bound {bound}"
        );
    }

    /// Hysteresis, sharper: when each half-period is shorter than the
    /// observation window, the windowed mean hovers near `high/2` and the
    /// controller must settle — the tail of the run sees no transitions
    /// at all.
    #[test]
    fn fast_flicker_settles_instead_of_tracking_the_wave(
        high in 8.0f64..64.0,
        half_period in 1usize..4,
        tail in 64usize..128,
    ) {
        let ladder_levels = 3;
        let mut ctrl = BrownoutController::new(ControllerPolicy::standard(), ladder_levels);
        // Warm-up: long enough for any climbing the mean justifies.
        let warmup = 64;
        let mut phase_high = true;
        let mut in_phase = 0;
        for _ in 0..warmup {
            let d = if phase_high { high } else { 0.0 };
            let _ = ctrl.observe_depth(d);
            in_phase += 1;
            if in_phase == half_period {
                phase_high = !phase_high;
                in_phase = 0;
            }
        }
        // Tail: the wave keeps flickering; the settled controller must
        // not move again.
        let mut tail_transitions = 0;
        for _ in 0..tail {
            let d = if phase_high { high } else { 0.0 };
            if ctrl.observe_depth(d).is_some() {
                tail_transitions += 1;
            }
            in_phase += 1;
            if in_phase == half_period {
                phase_high = !phase_high;
                in_phase = 0;
            }
        }
        prop_assert_eq!(
            tail_transitions, 0,
            "fast flicker (high {}, half-period {}) kept the ladder moving", high, half_period
        );
    }
}

// --- admission exemption during an outage ----------------------------------

/// During a one-replica outage the surviving replica's queue fills; the
/// depth-exempt class must still get in (and then be subject only to
/// deadline shedding), while standard traffic sheds `QueueFull`.
#[test]
fn exempt_class_is_admitted_into_a_full_queue_during_an_outage() {
    let solo = solo_s();
    let mut cfg = config(2);
    cfg.admission = AdmissionPolicy::bounded(2);
    // Replica 1 is down for the whole trace: everything funnels to 0.
    cfg.faults = FaultPlan {
        crashes: vec![CrashWindow { replica: 1, down_s: 0.0, up_s: None }],
        ..FaultPlan::default()
    };

    // A burst at t=0 deep enough to fill replica 0's queue, then one
    // exempt (interactive, priority 200 = the bounded() threshold) and
    // one standard arrival while it is still full.
    let burst = poisson_requests(&spec(), 64, 50.0 / solo, 17);
    let mut requests = burst;
    let mut interactive = spec();
    interactive.class = QosClass::interactive(1e6 * solo);
    let probe_time = requests.last().unwrap().arrival_s;
    let mut vip = poisson_requests(&interactive, 1, 1.0, 23);
    vip[0].id = 9_000;
    vip[0].arrival_s = probe_time;
    let mut pleb = poisson_requests(&spec(), 1, 1.0, 29);
    pleb[0].id = 9_001;
    pleb[0].arrival_s = probe_time;
    requests.push(vip[0].clone());
    requests.push(pleb[0].clone());

    let report = simulate_fleet(&cfg, &requests);
    assert_eq!(report.completions.len() + report.shed.len(), 66, "conservation");
    assert!(
        report.completions.iter().any(|c| c.id == 9_000),
        "the exempt interactive request must be admitted past the full queue and complete"
    );
    assert!(
        report.shed.iter().any(|s| s.id == 9_001),
        "the standard request must shed against the same full queue"
    );
}
