//! Pins the fleet runtime to `cta_sim::simulate_serving`: configured down
//! to a single replica with batching off and everything admitted
//! ([`FleetConfig::single_fifo`]), `simulate_fleet` must reproduce the
//! FIFO path's metrics **bit for bit** — both paths are built from the
//! same `CtaSystem` step primitives and accumulate time in the same
//! order, so any divergence is a scheduler bug, not round-off.

use cta_serve::{replay_trace, simulate_fleet, FleetConfig, QosClass};
use cta_sim::{poisson_trace, simulate_serving, AttentionTask, CtaSystem, SystemConfig};

fn task() -> AttentionTask {
    AttentionTask::from_counts(256, 256, 64, 100, 90, 20, 6)
}

#[test]
fn single_fifo_fleet_matches_simulate_serving_bitwise() {
    for (rate, seed) in [(50.0, 1u64), (2_000.0, 2), (20_000.0, 3)] {
        let trace = poisson_trace(40, rate, task(), 3, 8, seed);
        let serving = simulate_serving(&CtaSystem::new(SystemConfig::paper()), &trace);

        let requests = replay_trace(&trace, QosClass::standard()).expect("valid trace");
        let report = simulate_fleet(&FleetConfig::single_fifo(SystemConfig::paper()), &requests);

        assert_eq!(report.metrics.shed, 0, "single_fifo admits everything");
        let fleet = report.metrics.latency.as_ref().expect("has completions");
        assert_eq!(
            fleet, &serving,
            "rate {rate}: fleet metrics must equal the FIFO path bit for bit"
        );
    }
}

#[test]
fn single_fifo_serves_in_arrival_order() {
    let trace = poisson_trace(30, 5_000.0, task(), 2, 4, 9);
    let requests = replay_trace(&trace, QosClass::standard()).expect("valid trace");
    let report = simulate_fleet(&FleetConfig::single_fifo(SystemConfig::paper()), &requests);
    let ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
    let expected: Vec<u64> = (0..30).collect();
    assert_eq!(ids, expected, "FIFO completion order is arrival order");
}
