//! Golden-file pinning for the sweep binaries.
//!
//! Every test here runs a real binary (via `CARGO_BIN_EXE_*`) in a
//! scratch directory and compares its output **byte for byte** against
//! files committed under `tests/golden/`. This is the enforcement arm of
//! the overload-control contract: with `OverloadControl::off()` (the
//! default for `serve_sweep` / `degradation_sweep`, and the `off` half of
//! every `brownout_sweep` pair) the fleet must reproduce the pre-change
//! output bitwise — traced and untraced. Chrome traces are large, so they
//! are pinned by SHA-256 (implemented inline below; the workspace takes
//! no crypto dependency) against `tests/golden/traced.sha256`.
//!
//! If one of these tests fails after an intentional behaviour change,
//! regenerate the goldens with the invocations named in each test and
//! audit the diff before committing it.

use std::path::{Path, PathBuf};
use std::process::Command;

// ---------------------------------------------------------------------------
// Minimal SHA-256 (FIPS 180-4), enough to check the pinned trace digests.
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256_hex(data: &[u8]) -> String {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    h.iter().map(|v| format!("{v:08x}")).collect()
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The pinned digest for `name` from `tests/golden/traced.sha256`.
fn pinned_digest(name: &str) -> String {
    let listing = std::fs::read_to_string(golden_dir().join("traced.sha256"))
        .expect("tests/golden/traced.sha256");
    for line in listing.lines() {
        if let Some((digest, file)) = line.split_once("  ") {
            if file.trim() == name {
                return digest.to_string();
            }
        }
    }
    panic!("{name} not pinned in traced.sha256");
}

/// Runs `bin` with `args` in a fresh scratch directory and returns that
/// directory (the caller reads `results/…` and trace files out of it).
fn run_in_scratch(label: &str, bin: &str, args: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cta-golden-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out = Command::new(bin)
        .args(args)
        .current_dir(&dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{label}: {bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn assert_bytes_match_golden(dir: &Path, rel: &str, golden_name: &str) {
    let got = std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
    let want = std::fs::read(golden_dir().join(golden_name))
        .unwrap_or_else(|e| panic!("golden {golden_name}: {e}"));
    assert!(
        got == want,
        "{rel} drifted from tests/golden/{golden_name} ({} vs {} bytes) — \
         the controller-disabled path must stay bitwise stable",
        got.len(),
        want.len()
    );
}

fn assert_trace_matches_pin(dir: &Path, trace_name: &str) {
    let bytes = std::fs::read(dir.join(trace_name)).unwrap_or_else(|e| panic!("{trace_name}: {e}"));
    assert_eq!(
        sha256_hex(&bytes),
        pinned_digest(trace_name),
        "{trace_name} drifted from its pinned digest — traced runs must stay bitwise stable"
    );
}

// ---------------------------------------------------------------------------
// The pins
// ---------------------------------------------------------------------------

/// `serve_sweep` ships with overload control off; its untraced output is
/// the canonical pre-overload-control fleet, byte for byte.
#[test]
fn serve_sweep_untraced_output_is_bitwise_pinned() {
    let dir = run_in_scratch(
        "serve-untraced",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &["--replicas", "2", "--loads", "0.5,1.2", "--requests", "40", "--seed", "7"],
    );
    assert_bytes_match_golden(&dir, "results/serve_sweep.csv", "serve_sweep.csv");
    assert_bytes_match_golden(&dir, "results/serve_sweep.json", "serve_sweep.json");
}

/// Tracing must observe, never perturb: the traced run reproduces the
/// same results files and a pinned trace.
#[test]
fn serve_sweep_traced_run_is_bitwise_pinned() {
    let dir = run_in_scratch(
        "serve-traced",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.5,1.2",
            "--requests",
            "40",
            "--seed",
            "7",
            "--trace",
            "serve_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/serve_sweep.csv", "serve_sweep.csv");
    assert_bytes_match_golden(&dir, "results/serve_sweep.json", "serve_sweep.json");
    assert_trace_matches_pin(&dir, "serve_trace.json");
}

#[test]
fn degradation_sweep_untraced_output_is_bitwise_pinned() {
    let dir = run_in_scratch(
        "degradation-untraced",
        env!("CARGO_BIN_EXE_degradation_sweep"),
        &["--replicas", "3", "--requests", "60", "--seed", "7", "--mtbf-factors", "2,0.5"],
    );
    assert_bytes_match_golden(&dir, "results/degradation_sweep.csv", "degradation_sweep.csv");
    assert_bytes_match_golden(&dir, "results/degradation_sweep.json", "degradation_sweep.json");
}

#[test]
fn degradation_sweep_traced_run_is_bitwise_pinned() {
    let dir = run_in_scratch(
        "degradation-traced",
        env!("CARGO_BIN_EXE_degradation_sweep"),
        &[
            "--replicas",
            "3",
            "--requests",
            "60",
            "--seed",
            "7",
            "--mtbf-factors",
            "2,0.5",
            "--trace",
            "degradation_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/degradation_sweep.csv", "degradation_sweep.csv");
    assert_bytes_match_golden(&dir, "results/degradation_sweep.json", "degradation_sweep.json");
    assert_trace_matches_pin(&dir, "degradation_trace.json");
}

/// `brownout_sweep` interleaves controller-off and controller-on rows; the
/// whole table (including the off rows, which must equal the plain fleet)
/// is pinned, as is the controlled trace.
#[test]
fn brownout_sweep_output_is_bitwise_pinned() {
    let dir = run_in_scratch(
        "brownout",
        env!("CARGO_BIN_EXE_brownout_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.9,1.6",
            "--requests",
            "60",
            "--seed",
            "7",
            "--mtbf-factors",
            "inf,0.6",
            "--trace",
            "brownout_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/brownout_sweep.csv", "brownout_sweep.csv");
    assert_bytes_match_golden(&dir, "results/brownout_sweep.json", "brownout_sweep.json");
    assert_trace_matches_pin(&dir, "brownout_trace.json");
}

// ---------------------------------------------------------------------------
// Event-engine replays: the same pins, the other engine
// ---------------------------------------------------------------------------

/// `--engine event` swaps the step-granular scan for the calendar-queue
/// event core; everything it computes must land on the *same* golden
/// bytes. CSV and trace are compared against the existing pins verbatim;
/// the JSON differs only by its `engine` metadata marker.
#[test]
fn serve_sweep_event_engine_reproduces_the_pins() {
    let dir = run_in_scratch(
        "serve-event",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.5,1.2",
            "--requests",
            "40",
            "--seed",
            "7",
            "--engine",
            "event",
            "--trace",
            "serve_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/serve_sweep.csv", "serve_sweep.csv");
    assert_trace_matches_pin(&dir, "serve_trace.json");
    let json = std::fs::read_to_string(dir.join("results/serve_sweep.json")).expect("json report");
    assert!(json.contains("\"engine\""), "event runs are marked in the JSON metadata");
}

#[test]
fn serve_sweep_single_tenant_drr_reproduces_the_pins() {
    // `--scheduler drr` alone enables the tenancy front end with one
    // equal-weight tenant — the configuration contractually pinned
    // bitwise against the tenancy-off fleet. CSV, JSON and trace bytes
    // must all match the goldens exactly, under both engines.
    let dir = run_in_scratch(
        "serve-tenancy-step",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.5,1.2",
            "--requests",
            "40",
            "--seed",
            "7",
            "--scheduler",
            "drr",
            "--trace",
            "serve_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/serve_sweep.csv", "serve_sweep.csv");
    assert_bytes_match_golden(&dir, "results/serve_sweep.json", "serve_sweep.json");
    assert_trace_matches_pin(&dir, "serve_trace.json");

    let dir = run_in_scratch(
        "serve-tenancy-event",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.5,1.2",
            "--requests",
            "40",
            "--seed",
            "7",
            "--scheduler",
            "drr",
            "--engine",
            "event",
            "--trace",
            "serve_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/serve_sweep.csv", "serve_sweep.csv");
    assert_trace_matches_pin(&dir, "serve_trace.json");
}

#[test]
fn degradation_sweep_event_engine_reproduces_the_pins() {
    let dir = run_in_scratch(
        "degradation-event",
        env!("CARGO_BIN_EXE_degradation_sweep"),
        &[
            "--replicas",
            "3",
            "--requests",
            "60",
            "--seed",
            "7",
            "--mtbf-factors",
            "2,0.5",
            "--engine",
            "event",
            "--trace",
            "degradation_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/degradation_sweep.csv", "degradation_sweep.csv");
    assert_trace_matches_pin(&dir, "degradation_trace.json");
}

#[test]
fn brownout_sweep_event_engine_reproduces_the_pins() {
    let dir = run_in_scratch(
        "brownout-event",
        env!("CARGO_BIN_EXE_brownout_sweep"),
        &[
            "--replicas",
            "2",
            "--loads",
            "0.9,1.6",
            "--requests",
            "60",
            "--seed",
            "7",
            "--mtbf-factors",
            "inf,0.6",
            "--engine",
            "event",
            "--trace",
            "brownout_trace.json",
        ],
    );
    assert_bytes_match_golden(&dir, "results/brownout_sweep.csv", "brownout_sweep.csv");
    assert_trace_matches_pin(&dir, "brownout_trace.json");
}

// ---------------------------------------------------------------------------
// Schema snapshots
// ---------------------------------------------------------------------------

/// Collects every distinct `"key":` in first-appearance order. The report
/// writer serialises objects in insertion order and no string value in
/// these reports embeds a `":`, so a lexical scan is exact enough for a
/// schema snapshot.
fn json_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while let Some(open) = json[i..].find('"') {
        let start = i + open + 1;
        let Some(close) = json[start..].find('"') else { break };
        let end = start + close;
        if bytes.get(end + 1) == Some(&b':') {
            let key = &json[start..end];
            if !keys.iter().any(|k| k == key) {
                keys.push(key.to_string());
            }
            i = end + 2;
        } else {
            // A string value, not a key — skip past it.
            i = end + 1;
        }
    }
    keys
}

/// The schema snapshot for both fault-era sweep binaries: CSV header and
/// JSON field set, pinned exactly. Extending a report is fine — update the
/// snapshot here and bump nothing; *renaming or removing* a field is a
/// breaking change and must bump [`cta_bench::SCHEMA_VERSION`].
#[test]
fn sweep_reports_snapshot_their_schema() {
    let golden = golden_dir();
    let csv_header = |name: &str| {
        let text = std::fs::read_to_string(golden.join(name)).unwrap();
        text.lines().next().unwrap().to_string()
    };
    assert_eq!(
        csv_header("degradation_sweep.csv"),
        "mtbf_factor,crashes_per_replica,completed,shed_lost,shed_other,retried,retry_events,\
         goodput_rps,p50_ms,p99_ms,min_avail,schema_version",
    );
    assert_eq!(
        csv_header("brownout_sweep.csv"),
        "load,mtbf_factor,control,completed,shed,goodput_rps,p50_ms,p99_ms,loss_pct,\
         brownout_s,transitions,hedged,breaker_opens,schema_version",
    );

    let keys = |name: &str| json_keys(&std::fs::read_to_string(golden.join(name)).unwrap());
    assert_eq!(
        keys("degradation_sweep.json"),
        [
            "schema_version",
            "experiment",
            "case",
            "replicas",
            "load",
            "offered_rps",
            "trace_span_s",
            "mttr_factor",
            "routing",
            "batch",
            "queue_depth",
            "requests",
            "seed",
            "points",
            "mtbf_factor",
            "crashes_per_replica",
            "completed",
            "shed",
            "shed_replica_lost",
            "retried",
            "retry_events",
            "goodput_rps",
            "p50_s",
            "p99_s",
            "min_availability",
            "makespan_s",
        ],
        "degradation_sweep JSON schema drifted"
    );
    assert_eq!(
        keys("brownout_sweep.json"),
        [
            "schema_version",
            "experiment",
            "case",
            "replicas",
            "link_gbs",
            "solo_service_s",
            "deadline_s",
            "deadline_factor",
            "mttr_factor",
            "control",
            "routing",
            "batch",
            "queue_depth",
            "requests_per_point",
            "seed",
            "points",
            "load",
            "mtbf_factor",
            "completed",
            "shed",
            "shed_rate",
            "goodput_rps",
            "p50_s",
            "p99_s",
            "mean_accuracy_loss_pct",
            "max_accuracy_loss_pct",
            "brownout_s",
            "brownout_transitions",
            "hedged",
            "hedge_wins",
            "hedge_cancelled",
            "breaker_opens",
            "makespan_s",
        ],
        "brownout_sweep JSON schema drifted"
    );
}
