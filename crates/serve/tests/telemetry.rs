//! Telemetry integration tests: the three guarantees that make tracing
//! trustworthy.
//!
//! * **Determinism guard** — attaching a [`RingBufferSink`] must not
//!   change the simulation: `simulate_fleet` (NullSink) and
//!   `simulate_fleet_traced` produce bitwise-identical [`FleetReport`]s.
//! * **Span well-formedness** — across randomly drawn fleet shapes, the
//!   spans on every (replica, module) track are non-overlapping and
//!   monotonically ordered, and the Chrome export round-trips through the
//!   validator with balanced begin/end pairs.
//! * **Reconciliation** — summed span seconds per phase equal the
//!   `SystemRun` totals of the same requests, so the trace is the
//!   schedule, not a sketch of it.

use cta_serve::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, BatchPolicy,
    FleetConfig, LoadSpec, RoutingPolicy, ServeRequest,
};
use cta_sim::{AttentionTask, CtaSystem, SystemConfig};
use cta_telemetry::{
    chrome_trace_json, validate_chrome_trace, AggregateReport, Event, EventKind, RingBufferSink,
    TrackId,
};
use proptest::prelude::*;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn config(replicas: usize, route: u8, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = match route % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::JoinShortestQueue,
        _ => RoutingPolicy::LeastOutstandingWork,
    };
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

fn traced(cfg: &FleetConfig, requests: &[ServeRequest]) -> (cta_serve::FleetReport, Vec<Event>) {
    let mut sink = RingBufferSink::with_capacity(1 << 16);
    let report = simulate_fleet_traced(cfg, requests, &mut sink);
    assert_eq!(sink.dropped(), 0, "test traces must fit the ring");
    (report, sink.events())
}

/// Groups the synchronous span events of a stream by track, preserving
/// recording order.
fn spans_by_track(events: &[Event]) -> Vec<(TrackId, Vec<(f64, f64)>)> {
    let mut tracks: Vec<(TrackId, Vec<(f64, f64)>)> = Vec::new();
    for e in events {
        if let EventKind::Span { end_s, .. } = e.kind {
            match tracks.iter_mut().find(|(t, _)| *t == e.track) {
                Some((_, spans)) => spans.push((e.t_s, end_s)),
                None => tracks.push((e.track, vec![(e.t_s, end_s)])),
            }
        }
    }
    tracks
}

// --- determinism guard (satellite: NullSink vs RingBufferSink) -----------

#[test]
fn tracing_never_changes_the_report() {
    for (replicas, batch) in [(1usize, 1usize), (2, 4), (4, 2)] {
        let cfg = config(replicas, 2, batch, 8);
        let requests = poisson_requests(&spec(), 48, 30_000.0, 11);
        let untraced = simulate_fleet(&cfg, &requests);
        let (traced_report, events) = traced(&cfg, &requests);
        // Exact PartialEq over the whole report: every completion time,
        // every metric, bit for bit.
        assert_eq!(untraced, traced_report, "{replicas} replicas, batch {batch}");
        assert!(!events.is_empty(), "traced run must record events");
    }
}

#[test]
fn single_fifo_equivalence_survives_tracing() {
    // The single-replica FIFO configuration is pinned elsewhere to
    // `cta_sim::simulate_serving`; attaching a sink must not break that
    // chain.
    let cfg = FleetConfig::single_fifo(SystemConfig::paper());
    let requests = poisson_requests(&spec(), 32, 20_000.0, 3);
    let (traced_report, _) = traced(&cfg, &requests);
    assert_eq!(simulate_fleet(&cfg, &requests), traced_report);
}

// --- reconciliation with SystemRun totals --------------------------------

#[test]
fn fleet_trace_reconciles_with_system_run_totals() {
    // Batching off: every layer step executes exactly one request's layer,
    // so the trace must reproduce the per-request `SystemRun` totals.
    let mut cfg = FleetConfig::single_fifo(SystemConfig::paper());
    cfg.admission = AdmissionPolicy::admit_all();
    let requests = poisson_requests(&spec(), 24, 25_000.0, 5);
    let (report, events) = traced(&cfg, &requests);
    assert_eq!(report.completions.len(), requests.len(), "admit-all completes everything");

    let system = CtaSystem::new(SystemConfig::paper());
    let (mut compute, mut transfer, mut upload) = (0.0f64, 0.0f64, 0.0f64);
    let (mut comp, mut lin, mut att) = (0.0f64, 0.0f64, 0.0f64);
    for r in &requests {
        let run = system.run_layers(&r.layer_tasks);
        compute += run.compute_s;
        transfer += run.transfer_s;
        upload += run.weight_upload_s;
        // Per-phase expectation: the per-head schedule splits, renormalised
        // onto each layer step's LPT critical path — the same quantities
        // the SA-track spans are laid out from, computed here through the
        // sim-side API instead of the serve-side trace writer.
        for tasks in &r.layer_tasks {
            let step = system.step_layer(tasks);
            let (mut c, mut l, mut a) = (0.0f64, 0.0f64, 0.0f64);
            for t in tasks {
                let ps = system.head_phase_split(t);
                c += ps.compression_s;
                l += ps.linear_s;
                a += ps.attention_s;
            }
            let scale = step.critical_s / (c + l + a);
            comp += c * scale;
            lin += l * scale;
            att += a * scale;
        }
    }

    let agg = AggregateReport::from_events(&events);
    let close = |got: f64, want: f64, what: &str| {
        assert!((got - want).abs() <= want.abs() * 1e-9, "{what}: trace {got} vs SystemRun {want}");
    };
    close(agg.compute_s(), compute, "SA compute (bubbles included)");
    close(agg.compression_s, comp, "compression phase");
    close(agg.linear_s, lin, "linear phase");
    close(agg.attention_s, att, "attention phase (stalls included)");
    close(agg.transfer_s, transfer, "host activation transfer");
    close(agg.upload_s, upload, "host weight upload");
    // Occupancy accounting: busy + bubble partitions every SA span.
    for r in &agg.replicas {
        assert!(r.occupancy_pct().is_some());
        assert!(r.sa_busy_s + r.sa_bubble_s <= r.sa_extent_s * (1.0 + 1e-9));
    }
}

// --- span invariants across random fleets (property test) ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    fn exported_spans_are_ordered_balanced_and_non_overlapping(
        replicas in 1usize..4,
        route in 0u8..3,
        batch in 1usize..4,
        depth in 1usize..8,
        count in 1usize..40,
        rate in 1_000.0f64..40_000.0,
        seed in 0u64..1_000,
    ) {
        let cfg = config(replicas, route, batch, depth);
        let requests = poisson_requests(&spec(), count, rate, seed);
        let (_, events) = traced(&cfg, &requests);

        // Per-track synchronous spans: monotonically ordered, no overlap,
        // in recording order (no sorting — the writer must emit them
        // ordered).
        for (track, spans) in spans_by_track(&events) {
            for w in spans.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1,
                    "track {track:?}: span [{}, {}) starts before [{}, {}) ended",
                    w[1].0, w[1].1, w[0].0, w[0].1
                );
            }
            for (start, end) in spans {
                prop_assert!(end > start, "track {track:?}: empty span recorded");
            }
        }

        // The Chrome export passes its own validator (stack-balanced B/E
        // per track, paired b/e per id, well-formed JSON) and the counts
        // agree with the event stream.
        let validated = validate_chrome_trace(&chrome_trace_json(&events));
        prop_assert!(validated.is_ok(), "export failed validation: {:?}", validated);
        let stats = validated.unwrap();
        prop_assert_eq!(stats.begins, stats.ends, "every B has its E");
        prop_assert_eq!(stats.async_begins, stats.async_ends, "every b has its e");
        let spans = events.iter()
            .filter(|e| matches!(e.kind, EventKind::Span { .. })).count();
        let asyncs = events.iter()
            .filter(|e| matches!(e.kind, EventKind::Async { .. })).count();
        prop_assert_eq!(stats.begins, spans);
        prop_assert_eq!(stats.async_begins, asyncs);
    }
}
