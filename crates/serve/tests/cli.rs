//! CLI robustness tests: malformed `serve_sweep` / `degradation_sweep` /
//! `brownout_sweep` / `tenant_sweep` / `kernel_sweep` invocations must print an error
//! plus the usage text to stderr and exit non-zero — never panic (no
//! `RUST_BACKTRACE` hint, no `panicked at`).

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn assert_graceful_failure(bin: &str, args: &[&str], expect: &str) {
    let out = run(bin, args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{args:?} must exit non-zero, got {:?}", out.status);
    assert!(stderr.contains("error:"), "{args:?} stderr missing error line: {stderr}");
    assert!(stderr.contains(expect), "{args:?} stderr missing {expect:?}: {stderr}");
    assert!(stderr.contains("usage:"), "{args:?} stderr missing usage text: {stderr}");
    assert!(!stderr.contains("panicked at"), "{args:?} must not panic: {stderr}");
}

const SERVE_SWEEP: &str = env!("CARGO_BIN_EXE_serve_sweep");
const DEGRADATION_SWEEP: &str = env!("CARGO_BIN_EXE_degradation_sweep");
const BROWNOUT_SWEEP: &str = env!("CARGO_BIN_EXE_brownout_sweep");
const TENANT_SWEEP: &str = env!("CARGO_BIN_EXE_tenant_sweep");
const KERNEL_SWEEP: &str = env!("CARGO_BIN_EXE_kernel_sweep");

#[test]
fn serve_sweep_rejects_unknown_flags() {
    assert_graceful_failure(SERVE_SWEEP, &["--frobnicate"], "unknown flag");
}

#[test]
fn serve_sweep_rejects_missing_values() {
    assert_graceful_failure(SERVE_SWEEP, &["--replicas"], "needs a value");
    assert_graceful_failure(SERVE_SWEEP, &["--seed", "1", "--loads"], "needs a value");
}

#[test]
fn serve_sweep_rejects_unknown_routing_policies() {
    assert_graceful_failure(SERVE_SWEEP, &["--routing", "chaotic"], "unknown routing policy");
}

#[test]
fn serve_sweep_rejects_unparseable_numbers() {
    assert_graceful_failure(SERVE_SWEEP, &["--requests", "many"], "--requests");
    assert_graceful_failure(SERVE_SWEEP, &["--loads", "0.5,oops"], "--loads");
}

#[test]
fn serve_sweep_rejects_malformed_fault_specs() {
    assert_graceful_failure(SERVE_SWEEP, &["--faults", "5"], "mtbf");
    assert_graceful_failure(SERVE_SWEEP, &["--faults", "abc:1"], "number");
    assert_graceful_failure(SERVE_SWEEP, &["--faults", "0:1"], "positive");
}

#[test]
fn serve_sweep_brownout_is_a_bare_switch() {
    // `--brownout` takes no value, mirroring how `--faults off` is the
    // only way to spell the default: a stray operand is an unknown flag.
    assert_graceful_failure(SERVE_SWEEP, &["--brownout", "yes"], "unknown flag");
}

#[test]
fn brownout_sweep_rejects_malformed_invocations() {
    assert_graceful_failure(BROWNOUT_SWEEP, &["--frobnicate"], "unknown flag");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--control"], "needs a value");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--control", "chaos"], "unknown control mode");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--routing", "x"], "unknown routing policy");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--loads", "0.5,oops"], "--loads");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--mtbf-factors", "-1"], "positive");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--deadline-factor", "nan"], "positive");
    assert_graceful_failure(BROWNOUT_SWEEP, &["--link-gbs", "0"], "positive");
}

#[test]
fn degradation_sweep_rejects_malformed_invocations() {
    assert_graceful_failure(DEGRADATION_SWEEP, &["--frobnicate"], "unknown flag");
    assert_graceful_failure(DEGRADATION_SWEEP, &["--load"], "needs a value");
    assert_graceful_failure(DEGRADATION_SWEEP, &["--routing", "x"], "unknown routing policy");
    assert_graceful_failure(DEGRADATION_SWEEP, &["--mtbf-factors", "-1"], "positive");
}

#[test]
fn serve_sweep_rejects_malformed_tenancy_flags() {
    assert_graceful_failure(SERVE_SWEEP, &["--tenants", "many"], "--tenants");
    assert_graceful_failure(SERVE_SWEEP, &["--tenants", "0"], "positive");
    assert_graceful_failure(SERVE_SWEEP, &["--tenants"], "needs a value");
    assert_graceful_failure(SERVE_SWEEP, &["--scheduler", "chaos"], "unknown scheduler");
}

#[test]
fn sweeps_reject_malformed_kernels_flag() {
    // The shared --kernels flag is strict: an unknown spelling is an
    // error on every sweep binary (only the CTA_KERNELS *env default*
    // is forgiving).
    assert_graceful_failure(SERVE_SWEEP, &["--kernels", "turbo"], "scalar|blocked|simd");
    assert_graceful_failure(SERVE_SWEEP, &["--kernels"], "needs a value");
    assert_graceful_failure(KERNEL_SWEEP, &["--kernels", "SIMD"], "scalar|blocked|simd");
    assert_graceful_failure(TENANT_SWEEP, &["--kernels", ""], "scalar|blocked|simd");
}

#[test]
fn kernel_sweep_rejects_malformed_invocations() {
    assert_graceful_failure(KERNEL_SWEEP, &["--frobnicate"], "unknown flag");
    assert_graceful_failure(KERNEL_SWEEP, &["--seed", "many"], "--seed");
    assert_graceful_failure(KERNEL_SWEEP, &["--reps", "0"], "positive");
    assert_graceful_failure(KERNEL_SWEEP, &["--reps"], "needs a value");
}

#[test]
fn tenant_sweep_rejects_malformed_invocations() {
    assert_graceful_failure(TENANT_SWEEP, &["--frobnicate"], "unknown flag");
    assert_graceful_failure(TENANT_SWEEP, &["--tenants", "0"], "positive");
    assert_graceful_failure(TENANT_SWEEP, &["--tenants", "many"], "--tenants");
    assert_graceful_failure(TENANT_SWEEP, &["--skew", "-1"], "non-negative");
    assert_graceful_failure(TENANT_SWEEP, &["--skew", "0,oops"], "--skew");
    assert_graceful_failure(TENANT_SWEEP, &["--scheduler", "chaos"], "unknown scheduler");
    assert_graceful_failure(TENANT_SWEEP, &["--scheduler"], "needs a value");
    assert_graceful_failure(TENANT_SWEEP, &["--autoscale", "wild"], "unknown autoscale policy");
    assert_graceful_failure(TENANT_SWEEP, &["--quota", "100"], "<rps>:<burst>");
    assert_graceful_failure(TENANT_SWEEP, &["--quota", "0:4"], "positive");
    assert_graceful_failure(TENANT_SWEEP, &["--deadline-factor", "0"], "positive");
    assert_graceful_failure(TENANT_SWEEP, &["--engine", "warp"], "unknown engine");
    assert_graceful_failure(TENANT_SWEEP, &["--load", "-2"], "positive");
}
