//! Engine equivalence and bitwise-off pins for the chaos-era fault
//! classes: random zone-outage / partition / gray-failure schedules must
//! survive the step↔event engine swap byte-for-byte, and an armed
//! detector must not perturb a healthy fleet (quarantine is the *only*
//! mechanism by which it may change routing).

use cta_serve::{
    poisson_requests, simulate_fleet, AdmissionPolicy, BatchPolicy, CrashWindow, DetectorPolicy,
    FaultPlan, FleetConfig, FleetEngine, FleetReport, GrayFailure, LoadSpec, Partition,
    RoutingPolicy, ServeRequest, Slowdown, ZoneOutage,
};
use cta_sim::{AttentionTask, SystemConfig};
use proptest::prelude::*;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn config(replicas: usize, route: u8, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = match route % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::JoinShortestQueue,
        _ => RoutingPolicy::LeastOutstandingWork,
    };
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

/// A valid plan exercising every chaos-era class, laid out over the
/// trace span: crash early, zone outage late (disjoint by construction,
/// as the validator requires), partition and gray mid-run.
fn chaos_plan(replicas: usize, zones: usize, span: f64, seed: u64, severity: f64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.crashes.push(CrashWindow {
        replica: seed as usize % replicas,
        down_s: 0.10 * span,
        up_s: Some(0.20 * span),
    });
    if zones >= 2 && replicas >= zones {
        plan.zones = (0..replicas).map(|r| r % zones).collect();
        plan.zone_outages.push(ZoneOutage {
            zone: (seed / 7) as usize % zones,
            down_s: 0.60 * span,
            up_s: Some(0.75 * span),
        });
    }
    plan.partitions.push(Partition {
        replica: (seed / 3) as usize % replicas,
        from_s: 0.30 * span,
        until_s: 0.50 * span,
    });
    plan.gray.push(GrayFailure {
        replica: (seed / 5) as usize % replicas,
        from_s: 0.25 * span,
        until_s: 0.55 * span,
        severity,
        seed,
    });
    plan.slowdowns.push(Slowdown {
        replica: (seed / 11) as usize % replicas,
        from_s: 0.40 * span,
        until_s: 0.65 * span,
        factor: 2.5,
    });
    plan
}

/// Runs the same (config, trace) under both engines and returns the
/// reports ready for full `PartialEq` comparison (the event-only queue
/// samples cleared).
fn both_engines(cfg: &FleetConfig, requests: &[ServeRequest]) -> (FleetReport, FleetReport) {
    let mut step_cfg = cfg.clone();
    step_cfg.engine = FleetEngine::StepGranular;
    let step = simulate_fleet(&step_cfg, requests);
    let mut event_cfg = cfg.clone();
    event_cfg.engine = FleetEngine::EventDriven;
    let mut event = simulate_fleet(&event_cfg, requests);
    event.event_queue_samples.clear();
    (step, event)
}

#[test]
fn sharded_default_leaves_the_detector_off() {
    // The bitwise-off contract starts here: no constructor arms the
    // detector, so every pre-existing golden runs the pre-detector path.
    assert!(FleetConfig::sharded(SystemConfig::paper(), 4).detector.is_none());
    assert!(FleetConfig::single_fifo(SystemConfig::paper()).detector.is_none());
}

#[test]
fn armed_detector_does_not_perturb_a_healthy_fleet() {
    // No faults -> no silence, no slow replica -> no quarantine -> the
    // routing mask stays all-true and every byte of the outcome matches
    // the detector-off fleet. (Only the stats field may differ.)
    for seed in [1u64, 7, 23] {
        let requests = poisson_requests(&spec(), 60, 30_000.0, seed);
        let off_cfg = config(3, seed as u8, 2, 8);
        let mut on_cfg = off_cfg.clone();
        on_cfg.detector = Some(DetectorPolicy::standard());
        let off = simulate_fleet(&off_cfg, &requests);
        let mut on = simulate_fleet(&on_cfg, &requests);
        let stats = on.metrics.detector.take().expect("armed detector reports stats");
        assert_eq!(stats.quarantines, 0, "seed {seed}: healthy fleet must not quarantine");
        assert_eq!(off.metrics.detector, None);
        assert_eq!(on, off, "seed {seed}: detector-on healthy run must be bitwise detector-off");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_zone_partition_gray_schedules(
        replicas in 2usize..5,
        zones in 2usize..4,
        route in 0u8..3,
        batch in 1usize..4,
        depth in 2usize..10,
        count in 8usize..60,
        rate in 1_000.0f64..60_000.0,
        seed in 0u64..1_000,
        severity in 0.5f64..8.0,
        detector_sel in 0u8..2,
    ) {
        let cfg0 = config(replicas, route, batch, depth);
        let requests = poisson_requests(&spec(), count, rate, seed);
        let span = requests.last().expect("nonempty").arrival_s.max(1e-6);
        let mut cfg = cfg0;
        cfg.faults = chaos_plan(replicas, zones, span, seed, severity);
        cfg.faults.validate(replicas);
        if detector_sel == 1 {
            let mut policy = DetectorPolicy::standard();
            policy.phi_threshold = 2.0;
            policy.window = 8;
            policy.min_samples = 3;
            policy.probation_s = (0.05 * span).max(1e-6);
            cfg.detector = Some(policy);
        }
        let (step, event) = both_engines(&cfg, &requests);
        prop_assert_eq!(step, event);
    }
}
