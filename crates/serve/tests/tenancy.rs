//! Tenancy integration: the fair-queue front end, quotas, and the
//! autoscaler composed with the full fleet runtime.
//!
//! The contract under test, in order of importance:
//!
//! * **transparency** — `tenancy: None` is the pre-tenancy runtime by
//!   construction; a *one-tenant equal-weight DRR* configuration with
//!   shed backpressure must also reproduce it byte-for-byte (reports
//!   and trace bytes), under both engines. This is the pin that lets
//!   the golden sweep outputs survive the subsystem's introduction.
//! * **engine independence** — the full tenancy stack (multi-tenant
//!   skew, hold backpressure, quotas, autoscaling, faults) produces
//!   identical reports under `StepGranular` and `EventDriven`.
//! * **isolation** — at 16:1 tenant skew and sustained overload, DRR
//!   holds the Jain fairness index of per-tenant goodput at ≥ 0.95
//!   while FIFO collapses below 0.7 (goodput follows offered share).
//! * **accounting** — quota sheds carry `ShedReason::QuotaExceeded`,
//!   roll up per tenant, and conservation (`offered = completed +
//!   shed`) holds per tenant and fleet-wide.

use cta_serve::{
    poisson_requests, simulate_fleet, simulate_fleet_traced, AdmissionPolicy, AutoscalePolicy,
    Backpressure, BatchPolicy, CostModel, FaultPlan, FleetConfig, FleetEngine, FleetReport,
    LoadSpec, QosClass, QuotaPolicy, RoutingPolicy, SchedulerPolicy, ServeRequest, ShedReason,
    TenancyConfig,
};
use cta_sim::{AttentionTask, CtaSystem, SystemConfig};
use cta_telemetry::RingBufferSink;
use cta_workloads::TenantMix;

fn spec() -> LoadSpec {
    LoadSpec::standard(AttentionTask::from_counts(128, 128, 64, 50, 40, 20, 6), 3, 4)
}

fn config(replicas: usize, batch: usize, depth: usize) -> FleetConfig {
    let mut cfg = FleetConfig::sharded(SystemConfig::paper(), replicas);
    cfg.routing = RoutingPolicy::JoinShortestQueue;
    cfg.batch = BatchPolicy::up_to(batch);
    cfg.admission = AdmissionPolicy::bounded(depth);
    cfg
}

/// Stamps tenant owners onto a trace from a Zipf popularity mix.
fn stamp(requests: Vec<ServeRequest>, mix: &TenantMix, seed: u64) -> Vec<ServeRequest> {
    let owners = mix.assign(requests.len(), seed);
    requests.into_iter().zip(owners).map(|(r, t)| r.with_tenant(t)).collect()
}

/// One replica's zero-queue service time for the standard request shape.
fn solo_service_s() -> f64 {
    let system = CtaSystem::new(SystemConfig::paper());
    let mut cost = CostModel::new();
    let probe = poisson_requests(&spec(), 1, 1.0, 0);
    cost.request_service_s(&system, &probe[0])
}

/// Runs the same (config, trace) under both engines and returns the pair
/// of reports with the event-only queue samples cleared, ready for full
/// `PartialEq` comparison.
fn both_engines(cfg: &FleetConfig, requests: &[ServeRequest]) -> (FleetReport, FleetReport) {
    let mut step_cfg = cfg.clone();
    step_cfg.engine = FleetEngine::StepGranular;
    let step = simulate_fleet(&step_cfg, requests);
    let mut event_cfg = cfg.clone();
    event_cfg.engine = FleetEngine::EventDriven;
    let mut event = simulate_fleet(&event_cfg, requests);
    event.event_queue_samples.clear();
    (step, event)
}

#[test]
fn single_tenant_equal_weight_drr_is_bitwise_transparent() {
    // The satellite pin: one tenant, equal weights, DRR, shed
    // backpressure — every report byte and every trace byte must match
    // the tenancy-off fleet, faults included, under both engines.
    for engine in [FleetEngine::StepGranular, FleetEngine::EventDriven] {
        let mut cfg = config(3, 4, 8);
        cfg.engine = engine;
        let requests = poisson_requests(&spec(), 80, 40_000.0, 11);
        let span = requests.last().expect("nonempty").arrival_s;
        cfg.faults = FaultPlan::seeded(3, 2.0 * span, span, span / 10.0, 11);

        let mut off_sink = RingBufferSink::with_capacity(1 << 16);
        let off = simulate_fleet_traced(&cfg, &requests, &mut off_sink);

        let mut on_cfg = cfg.clone();
        on_cfg.tenancy = Some(TenancyConfig::equal_weight(1, SchedulerPolicy::Drr));
        let mut on_sink = RingBufferSink::with_capacity(1 << 16);
        let mut on = simulate_fleet_traced(&on_cfg, &requests, &mut on_sink);

        assert_eq!(off_sink.dropped(), 0);
        assert_eq!(on_sink.dropped(), 0);
        assert_eq!(off_sink.events(), on_sink.events(), "trace bytes diverged ({engine:?})");

        let stats = on.metrics.tenancy.take().expect("tenancy stats reported");
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.fairness_index, 1.0, "one tenant is trivially fair");
        assert_eq!(stats.tenants[0].offered, requests.len());
        assert_eq!(off, on, "reports diverged ({engine:?})");
    }
}

#[test]
fn full_tenancy_stack_is_engine_independent() {
    // Multi-tenant skew + hold backpressure + quotas + autoscaling +
    // faults: every tenancy code path active at once, both engines.
    let mut cfg = config(4, 4, 4);
    let mix = TenantMix::new(6, 1.2);
    let requests = stamp(poisson_requests(&spec(), 150, 60_000.0, 5), &mix, 5);
    let span = requests.last().expect("nonempty").arrival_s;
    cfg.faults = FaultPlan::seeded(4, 2.0 * span, span, span / 10.0, 5);
    let mut tenancy = TenancyConfig::equal_weight(6, SchedulerPolicy::Wfq);
    tenancy.backpressure = Backpressure::Hold;
    tenancy.quota = Some(QuotaPolicy::new(8_000.0, 4.0));
    tenancy.autoscale = Some(AutoscalePolicy::reactive(2, 4, span / 20.0));
    cfg.tenancy = Some(tenancy);

    let (step, event) = both_engines(&cfg, &requests);
    assert_eq!(step, event);
    let stats = step.metrics.tenancy.as_ref().expect("tenancy stats reported");
    assert_eq!(stats.tenants.len(), 6);
    assert_eq!(
        stats.tenants.iter().map(|t| t.offered).sum::<usize>(),
        requests.len(),
        "every request is attributed to a tenant"
    );
    for t in &stats.tenants {
        assert_eq!(
            t.offered,
            t.completed + t.shed,
            "per-tenant conservation (tenant {})",
            t.tenant
        );
    }
    assert!(stats.quota_shed > 0, "the 8k rps quota must bite at 60k rps offered");
}

#[test]
fn drr_isolates_goodput_where_fifo_follows_offered_share() {
    // The acceptance scenario: 16 tenants under a Zipf(1.0) popularity
    // mix (16:1 hot/cold offered ratio), offered load ~6x fleet
    // capacity, a deadline-bearing non-exempt class, tiny replica
    // queues, and hold backpressure so contention lives in the fair
    // queue. DRR serves backlogged tenants evenly, so per-tenant
    // goodput equalizes; FIFO serves in arrival order, so goodput
    // tracks the skewed offered shares and Jain's index collapses.
    let solo = solo_service_s();
    let replicas = 2;
    let mix = TenantMix::new(16, 1.0);
    let rate = 6.0 * replicas as f64 / solo;
    let base = poisson_requests(&spec(), 1200, rate, 17);
    let deadline_s = 40.0 * solo;
    let class = QosClass { name: "tenant-slo", priority: 100, deadline_s: Some(deadline_s) };
    let requests: Vec<ServeRequest> = stamp(base, &mix, 17)
        .into_iter()
        .map(|mut r| {
            r.class = class;
            r
        })
        .collect();

    let fairness = |scheduler: SchedulerPolicy| {
        let mut cfg = config(replicas, 2, 2);
        let mut tenancy = TenancyConfig::equal_weight(16, scheduler);
        tenancy.backpressure = Backpressure::Hold;
        cfg.tenancy = Some(tenancy);
        let report = simulate_fleet(&cfg, &requests);
        let stats = report.metrics.tenancy.expect("tenancy stats reported");
        assert_eq!(
            stats.tenants.iter().map(|t| t.offered).sum::<usize>(),
            requests.len(),
            "conservation under {scheduler:?}"
        );
        stats.fairness_index
    };

    let drr = fairness(SchedulerPolicy::Drr);
    let fifo = fairness(SchedulerPolicy::Fifo);
    assert!(drr >= 0.95, "DRR fairness {drr:.3} < 0.95 at 16:1 skew");
    assert!(fifo < 0.7, "FIFO fairness {fifo:.3} should collapse under skew");
    assert!(drr > fifo, "DRR must beat FIFO ({drr:.3} vs {fifo:.3})");
}

#[test]
fn quota_exhaustion_sheds_at_arrival_with_full_accounting() {
    let mut cfg = config(2, 4, 16);
    let mut tenancy = TenancyConfig::equal_weight(2, SchedulerPolicy::Drr);
    // ~1 admitted request per tenant per 2ms at a 50k rps offered rate:
    // almost everything quota-sheds.
    tenancy.quota = Some(QuotaPolicy::new(500.0, 2.0));
    cfg.tenancy = Some(tenancy);
    let requests = stamp(poisson_requests(&spec(), 60, 50_000.0, 3), &TenantMix::new(2, 0.0), 3);
    let report = simulate_fleet(&cfg, &requests);

    let quota_sheds: Vec<_> =
        report.shed.iter().filter(|s| s.reason == ShedReason::QuotaExceeded).collect();
    assert!(!quota_sheds.is_empty(), "the quota must bite");
    let stats = report.metrics.tenancy.as_ref().expect("tenancy stats reported");
    assert_eq!(stats.quota_shed, quota_sheds.len());
    for t in &stats.tenants {
        assert_eq!(
            t.quota_shed,
            quota_sheds.iter().filter(|s| s.tenant == t.tenant).count(),
            "per-tenant quota attribution (tenant {})",
            t.tenant
        );
        assert!(t.quota_shed <= t.shed, "quota sheds are a subset of sheds");
    }
    // Burst tokens admit the first arrivals: the fleet still completes work.
    assert!(report.metrics.completed > 0);
    assert_eq!(report.metrics.completed + report.metrics.shed, requests.len());
}

#[test]
fn autoscaler_scales_up_under_burst_and_down_when_calm() {
    // A hot burst followed by a calm tail: the scaler must grow the
    // active prefix during the burst and drain it once the signal
    // drops, never leaving the [min, max] band.
    let mut burst = poisson_requests(&spec(), 100, 80_000.0, 9);
    let t_end = burst.last().expect("nonempty").arrival_s;
    let tail = poisson_requests(&spec(), 40, 2_000.0, 10);
    for (i, mut r) in tail.into_iter().enumerate() {
        r.id = 100 + i as u64;
        r.arrival_s += t_end;
        burst.push(r);
    }
    let requests = burst;

    let mut cfg = config(4, 4, 4);
    let mut tenancy = TenancyConfig::equal_weight(1, SchedulerPolicy::Drr);
    tenancy.backpressure = Backpressure::Hold;
    tenancy.autoscale = Some(AutoscalePolicy::reactive(1, 4, t_end / 10.0));
    cfg.tenancy = Some(tenancy);

    let (step, event) = both_engines(&cfg, &requests);
    assert_eq!(step, event);
    let stats = step.metrics.tenancy.as_ref().expect("tenancy stats reported");
    assert!(stats.scale_ups >= 1, "the burst must trigger a scale-up");
    assert!(stats.scale_downs >= 1, "the calm tail must trigger a scale-down");
    assert!((1..=4).contains(&stats.final_active), "active prefix stays in band");
    // Hold backpressure + no deadline: nothing is lost, only delayed.
    assert_eq!(step.metrics.completed, requests.len());
    assert_eq!(step.metrics.shed, 0);
}

#[test]
fn hold_backpressure_trades_sheds_for_latency() {
    // Same overloaded single-tenant trace, shed vs hold: hold with a
    // deadline-free class completes everything; shed drops the excess
    // at the bounded replica queues.
    let requests = poisson_requests(&spec(), 80, 60_000.0, 21);
    let run = |backpressure: Backpressure| {
        let mut cfg = config(2, 2, 2);
        let mut tenancy = TenancyConfig::equal_weight(1, SchedulerPolicy::Drr);
        tenancy.backpressure = backpressure;
        cfg.tenancy = Some(tenancy);
        simulate_fleet(&cfg, &requests)
    };
    let held = run(Backpressure::Hold);
    let shed = run(Backpressure::Shed);
    assert_eq!(held.metrics.completed, requests.len(), "hold completes everything");
    assert_eq!(held.metrics.shed, 0);
    assert!(shed.metrics.shed > 0, "shed backpressure drops the overload excess");
    let p99 = |r: &FleetReport| r.metrics.latency.as_ref().expect("completions").p99_s;
    assert!(p99(&held) > p99(&shed), "holding queues work instead of dropping it");
}

#[test]
#[should_panic(expected = "request tenant id out of range")]
fn out_of_range_tenant_ids_are_rejected() {
    let mut cfg = config(2, 2, 4);
    cfg.tenancy = Some(TenancyConfig::equal_weight(2, SchedulerPolicy::Drr));
    let requests: Vec<ServeRequest> =
        poisson_requests(&spec(), 4, 10_000.0, 1).into_iter().map(|r| r.with_tenant(7)).collect();
    let _ = simulate_fleet(&cfg, &requests);
}
