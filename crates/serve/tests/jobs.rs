//! The harness determinism contract, end to end: a sweep binary's output
//! bytes must not depend on the worker count.
//!
//! `tests/golden.rs` pins the results files at the implicit default
//! parallelism; this suite drives the `--jobs` flag (and the `CTA_JOBS`
//! env var) explicitly and byte-compares entire scratch directories, so a
//! nondeterministic reduction, a shared-RNG leak, or an out-of-order row
//! emission fails loudly rather than flaking.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `bin` with `args` (plus optional `CTA_JOBS`) in a fresh scratch
/// directory and returns that directory.
fn run_in_scratch(label: &str, bin: &str, args: &[&str], env_jobs: Option<&str>) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cta-jobs-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let mut cmd = Command::new(bin);
    cmd.args(args).current_dir(&dir);
    match env_jobs {
        Some(n) => cmd.env("CTA_JOBS", n),
        None => cmd.env_remove("CTA_JOBS"),
    };
    let out = cmd.output().expect("spawn binary");
    assert!(
        out.status.success(),
        "{label}: {bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn read(dir: &Path, rel: &str) -> Vec<u8> {
    std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel} in {}: {e}", dir.display()))
}

/// `serve_sweep --jobs 1` and `--jobs 4` must produce byte-identical
/// results files — the ordered reduction makes worker count unobservable.
#[test]
fn serve_sweep_results_are_identical_across_jobs() {
    let args = ["--replicas", "2", "--loads", "0.5,1.2", "--requests", "40", "--seed", "7"];
    let serial = run_in_scratch(
        "serve-j1",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[&args[..], &["--jobs", "1"]].concat(),
        None,
    );
    let parallel = run_in_scratch(
        "serve-j4",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[&args[..], &["--jobs", "4"]].concat(),
        None,
    );
    for rel in ["results/serve_sweep.csv", "results/serve_sweep.json"] {
        assert_eq!(
            read(&serial, rel),
            read(&parallel, rel),
            "{rel} differs between --jobs 1 and --jobs 4"
        );
    }
}

/// The `CTA_JOBS` env var is the same knob as `--jobs`: running under
/// `CTA_JOBS=4` reproduces the `--jobs 1` bytes too.
#[test]
fn degradation_sweep_respects_cta_jobs_env() {
    let args = ["--replicas", "3", "--requests", "60", "--seed", "7", "--mtbf-factors", "2,0.5"];
    let serial = run_in_scratch(
        "degr-j1",
        env!("CARGO_BIN_EXE_degradation_sweep"),
        &[&args[..], &["--jobs", "1"]].concat(),
        None,
    );
    let env4 =
        run_in_scratch("degr-env4", env!("CARGO_BIN_EXE_degradation_sweep"), &args, Some("4"));
    for rel in ["results/degradation_sweep.csv", "results/degradation_sweep.json"] {
        assert_eq!(read(&serial, rel), read(&env4, rel), "{rel} differs under CTA_JOBS=4");
    }
}

/// The grid-paired sweep (two simulations per point, interleaved off/on
/// rows) keeps its row interleaving at any worker count.
#[test]
fn brownout_sweep_row_interleaving_survives_parallelism() {
    let args = [
        "--replicas",
        "2",
        "--loads",
        "0.9,1.6",
        "--requests",
        "60",
        "--seed",
        "7",
        "--mtbf-factors",
        "inf,0.6",
    ];
    let serial = run_in_scratch(
        "brown-j1",
        env!("CARGO_BIN_EXE_brownout_sweep"),
        &[&args[..], &["--jobs", "1"]].concat(),
        None,
    );
    let parallel = run_in_scratch(
        "brown-j3",
        env!("CARGO_BIN_EXE_brownout_sweep"),
        &[&args[..], &["--jobs", "3"]].concat(),
        None,
    );
    for rel in ["results/brownout_sweep.csv", "results/brownout_sweep.json"] {
        assert_eq!(
            read(&serial, rel),
            read(&parallel, rel),
            "{rel} differs between --jobs 1 and --jobs 3"
        );
    }
}

/// `--pool-trace` writes a separate, well-formed Chrome trace without
/// perturbing the deterministic results files.
#[test]
fn pool_trace_rides_along_without_touching_results() {
    let args = ["--replicas", "2", "--loads", "0.5,1.2", "--requests", "40", "--seed", "7"];
    let plain = run_in_scratch(
        "pool-off",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[&args[..], &["--jobs", "2"]].concat(),
        None,
    );
    let traced = run_in_scratch(
        "pool-on",
        env!("CARGO_BIN_EXE_serve_sweep"),
        &[&args[..], &["--jobs", "2", "--pool-trace", "pool.json"]].concat(),
        None,
    );
    for rel in ["results/serve_sweep.csv", "results/serve_sweep.json"] {
        assert_eq!(read(&plain, rel), read(&traced, rel), "{rel} perturbed by --pool-trace");
    }
    let trace = String::from_utf8(read(&traced, "pool.json")).expect("utf-8 trace");
    assert!(trace.contains("\"traceEvents\""), "pool trace is a Chrome trace envelope");
    assert!(trace.contains("worker"), "pool trace names worker lanes");
}
