//! Lloyd's k-means — the quality reference for LSH clustering.
//!
//! The paper picks LSH clustering because it is *cheap and hardware
//! friendly* (one matrix product + a tree walk), not because it is the
//! best clustering. This module provides the classical quality reference:
//! k-means with k-means++-style seeding, used by the clustering-quality
//! ablation to measure how much approximation error the LSH shortcut
//! costs relative to an L2-optimised clustering at the same `k` — and how
//! much more computation that optimisation would burn.

use cta_tensor::{Matrix, MatrixRng};

use crate::{aggregate_centroids, ClusterTable, Compression};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansRun {
    /// The final clustering as a [`Compression`] (centroids + table).
    pub compression: Compression,
    /// Lloyd iterations executed (≤ the configured maximum).
    pub iterations: usize,
    /// Total distance computations spent (the cost LSH avoids).
    pub distance_evals: u64,
}

/// Runs Lloyd's k-means with k-means++-style seeding.
///
/// Empty clusters are re-seeded on the farthest point from its centroid,
/// so the result always has exactly `k` populated clusters (assuming
/// `k ≤ n`). Iteration stops when assignments stabilise or after
/// `max_iterations`.
///
/// # Panics
///
/// Panics if `tokens` is empty, `k == 0`, or `k > tokens.rows()`.
pub fn kmeans(tokens: &Matrix, k: usize, max_iterations: usize, seed: u64) -> KMeansRun {
    let n = tokens.rows();
    assert!(n > 0, "k-means requires at least one token");
    assert!(k > 0 && k <= n, "k must be in 1..=n (got {k} for n = {n})");
    let mut rng = MatrixRng::new(seed);
    let mut distance_evals = 0u64;

    // k-means++-style seeding: first center uniform, then proportional to
    // squared distance from the nearest chosen center.
    let mut centers: Vec<usize> = vec![rng.index(n)];
    let mut d2 = vec![0.0f64; n];
    while centers.len() < k {
        let mut total = 0.0f64;
        for (t, slot) in d2.iter_mut().enumerate() {
            let mut best = f64::INFINITY;
            for &c in &centers {
                best = best.min(sq_dist(tokens.row(t), tokens.row(c)));
                distance_evals += 1;
            }
            *slot = best;
            total += best;
        }
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centers: pick any
            // index not yet chosen to keep k distinct slots.
            (0..n).find(|t| !centers.contains(t)).unwrap_or(0)
        } else {
            let mut u = rng.uniform(0.0, 1.0) as f64 * total;
            let mut pick = n - 1;
            for (t, &w) in d2.iter().enumerate() {
                if u < w {
                    pick = t;
                    break;
                }
                u -= w;
            }
            pick
        };
        centers.push(next);
    }
    let mut centroids = tokens.gather_rows(&centers);

    let mut assignment = vec![0usize; n];
    let mut iterations = 0usize;
    for _ in 0..max_iterations {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (t, slot) in assignment.iter_mut().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for c in 0..k {
                let d = sq_dist(tokens.row(t), centroids.row(c));
                distance_evals += 1;
                if d < best.1 {
                    best = (c, d);
                }
            }
            if *slot != best.0 {
                *slot = best.0;
                changed = true;
            }
        }
        // Update step (re-seed empty clusters on the worst-fit point).
        let mut counts = vec![0usize; k];
        for &a in &assignment {
            counts[a] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                let worst = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(tokens.row(a), centroids.row(assignment[a]))
                            .partial_cmp(&sq_dist(tokens.row(b), centroids.row(assignment[b])))
                            .expect("finite distances")
                    })
                    .expect("non-empty tokens");
                distance_evals += 2 * n as u64;
                assignment[worst] = c;
                changed = true;
            }
        }
        let table = ClusterTable::new(assignment.clone(), k);
        centroids = aggregate_centroids(tokens, &table).matrix;
        if !changed {
            break;
        }
    }

    let table = ClusterTable::new(assignment, k);
    let cents = aggregate_centroids(tokens, &table);
    KMeansRun {
        compression: Compression { centroids: cents.matrix, counts: cents.counts, table },
        iterations,
        distance_evals,
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + i as f32 * 0.01, 0.0]);
            rows.push(vec![10.0 + i as f32 * 0.01, 10.0]);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn separates_two_blobs() {
        let run = kmeans(&two_blobs(), 2, 20, 3);
        let t = &run.compression.table;
        // All near-origin points share a cluster; all far points the other.
        let a = t.cluster_of(0);
        for i in (0..20).step_by(2) {
            assert_eq!(t.cluster_of(i), a);
        }
        for i in (1..20).step_by(2) {
            assert_ne!(t.cluster_of(i), a);
        }
        assert!(run.compression.approximation_error(&two_blobs()) < 0.01);
    }

    #[test]
    fn k_equals_n_gives_zero_error() {
        let tokens = cta_tensor::standard_normal_matrix(5, 8, 4);
        let run = kmeans(&tokens, 8, 30, 7);
        assert_eq!(run.compression.k(), 8);
        assert!(run.compression.approximation_error(&tokens) < 1e-5);
    }

    #[test]
    fn beats_or_matches_lsh_at_same_k() {
        use crate::{compress, LshFamily, LshParams};
        let tokens = cta_tensor::standard_normal_matrix(11, 64, 8);
        let lsh = compress(&tokens, &LshFamily::sample(8, LshParams::new(6, 3.0), 9));
        let km = kmeans(&tokens, lsh.k(), 30, 13);
        assert!(
            km.compression.approximation_error(&tokens) <= lsh.approximation_error(&tokens) + 1e-6,
            "k-means should not lose to LSH at equal k"
        );
    }

    #[test]
    fn all_clusters_populated() {
        let tokens = cta_tensor::standard_normal_matrix(17, 40, 6);
        let run = kmeans(&tokens, 10, 25, 19);
        assert!(run.compression.counts.iter().all(|&c| c > 0));
        assert_eq!(run.compression.counts.iter().sum::<usize>(), 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let tokens = cta_tensor::standard_normal_matrix(23, 30, 5);
        let a = kmeans(&tokens, 5, 15, 1);
        let b = kmeans(&tokens, 5, 15, 1);
        assert_eq!(a.compression, b.compression);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_larger_than_n_rejected() {
        let tokens = Matrix::zeros(3, 2);
        let _ = kmeans(&tokens, 4, 5, 0);
    }
}
