//! Cluster tables (`CT` in the paper).

/// A cluster index table: `CT[i]` is the cluster index of token `i`.
///
/// Cluster indices are dense, `0..cluster_count()`, assigned in order of
/// first appearance — exactly the order the hardware cluster tree allocates
/// leaves (paper Fig. 4a increments a shared `cl_cnt`; we number from 0
/// instead of 1).
///
/// ```
/// use cta_lsh::ClusterTable;
/// let ct = ClusterTable::new(vec![0, 1, 0, 2], 3);
/// assert_eq!(ct.cluster_of(2), 0);
/// assert_eq!(ct.cluster_count(), 3);
/// assert_eq!(ct.population(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTable {
    indices: Vec<usize>,
    cluster_count: usize,
}

impl ClusterTable {
    /// Builds a table from explicit indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= cluster_count`, or if `cluster_count > 0`
    /// while some cluster in `0..cluster_count` never appears (indices must
    /// be dense).
    pub fn new(indices: Vec<usize>, cluster_count: usize) -> Self {
        let mut seen = vec![false; cluster_count];
        for &i in &indices {
            assert!(i < cluster_count, "cluster index {i} out of range 0..{cluster_count}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "cluster indices must be dense in 0..{cluster_count}");
        Self { indices, cluster_count }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of clusters `k`.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// The cluster index of token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn cluster_of(&self, t: usize) -> usize {
        self.indices[t]
    }

    /// All per-token indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of tokens assigned to cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cluster_count()`.
    pub fn population(&self, c: usize) -> usize {
        assert!(c < self.cluster_count, "cluster {c} out of range");
        self.indices.iter().filter(|&&i| i == c).count()
    }

    /// Per-cluster populations (`cntr` in paper Fig. 4b).
    pub fn populations(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cluster_count];
        for &i in &self.indices {
            counts[i] += 1;
        }
        counts
    }

    /// The compression ratio `k/n` (1.0 for an empty table).
    pub fn compression_ratio(&self) -> f64 {
        if self.indices.is_empty() {
            1.0
        } else {
            self.cluster_count as f64 / self.indices.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_sum_to_token_count() {
        let ct = ClusterTable::new(vec![0, 1, 1, 2, 0], 3);
        assert_eq!(ct.populations(), vec![2, 2, 1]);
        assert_eq!(ct.populations().iter().sum::<usize>(), ct.len());
    }

    #[test]
    fn compression_ratio_reflects_cluster_count() {
        let ct = ClusterTable::new(vec![0, 0, 0, 0], 1);
        assert_eq!(ct.compression_ratio(), 0.25);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_indices() {
        let _ = ClusterTable::new(vec![0, 3], 3);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_indices() {
        let _ = ClusterTable::new(vec![0, 2], 3);
    }

    #[test]
    fn empty_table_is_valid() {
        let ct = ClusterTable::new(vec![], 0);
        assert!(ct.is_empty());
        assert_eq!(ct.compression_ratio(), 1.0);
    }
}
