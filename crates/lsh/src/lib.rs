#![deny(missing_docs)]

//! Locality-sensitive hashing and token compression for CTA.
//!
//! This crate implements the software side of the paper's §III-A/B:
//!
//! * [`LshFamily`] — p-stable LSH, `h(x) = ⌊(A·x + b)/w⌋` (eq. 1);
//! * [`ClusterTree`] — the streaming hash-code → cluster-index structure of
//!   Fig. 4(a), plus a hash-map reference implementation for cross-checks;
//! * [`aggregate_centroids`] — per-cluster means (Fig. 4b);
//! * [`compress`] / [`compress_two_level`] — one-level compression for
//!   query tokens and two-level *residual* compression for key/value
//!   tokens (Fig. 3b, eq. 2);
//! * [`StreamingCompressor`] — incremental compression for generative
//!   decoding (O(l + d) per appended token, batch-equivalent).
//!
//! # Example
//!
//! ```
//! use cta_lsh::{compress, LshFamily, LshParams};
//! use cta_tensor::standard_normal_matrix;
//!
//! let tokens = standard_normal_matrix(1, 64, 16);
//! let family = LshFamily::sample(16, LshParams::with_paper_length(8.0), 2);
//! let compressed = compress(&tokens, &family);
//! assert!(compressed.k() <= 64);
//! // The reconstruction expands centroids back to one row per token.
//! assert_eq!(compressed.reconstruct().shape(), tokens.shape());
//! ```

mod centroid;
mod cluster_tree;
mod codes;
mod compress;
mod family;
mod kmeans;
mod streaming;
mod table;

pub use centroid::{aggregate_centroids, Centroids};
pub use cluster_tree::{cluster_by_code_map, ClusterTree};
pub use codes::HashCodes;
pub use compress::{compress, compress_two_level, Compression, TwoLevelCompression};
pub use family::{LshFamily, LshParams};
pub use kmeans::{kmeans, KMeansRun};
pub use streaming::{CompressionView, StreamingCompressor};
pub use table::ClusterTable;
