//! Hash-code containers.

/// The hash codes of a token sequence: one `l`-dimensional integer code per
/// token, stored flat and row-major (token-major).
///
/// The paper's eq. 1 produces codes as *columns* of `H`; we store them as
/// rows so that `code(t)` is a contiguous slice, which is also the order in
/// which the systolic array streams hash values into the Cluster Index
/// Module (one token's values arrive staggered across `l` consecutive
/// cycles).
///
/// ```
/// use cta_lsh::HashCodes;
/// let codes = HashCodes::from_flat(2, 3, vec![1, 2, 3, 1, 2, 4]);
/// assert_eq!(codes.code(1), &[1, 2, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashCodes {
    n: usize,
    l: usize,
    values: Vec<i32>,
}

impl HashCodes {
    /// Builds from a flat token-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n * l` or `l == 0`.
    pub fn from_flat(n: usize, l: usize, values: Vec<i32>) -> Self {
        assert!(l > 0, "hash length must be positive");
        assert_eq!(values.len(), n * l, "flat hash values length mismatch");
        Self { n, l, values }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no tokens.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code length `l`.
    pub fn hash_length(&self) -> usize {
        self.l
    }

    /// The code of token `t` as a slice of `l` hash values.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn code(&self, t: usize) -> &[i32] {
        assert!(t < self.n, "token index {t} out of bounds for {} tokens", self.n);
        &self.values[t * self.l..(t + 1) * self.l]
    }

    /// Iterates over per-token codes.
    pub fn iter(&self) -> impl Iterator<Item = &[i32]> {
        self.values.chunks_exact(self.l)
    }

    /// The flat token-major values (the order the SA streams them out).
    pub fn as_flat(&self) -> &[i32] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_slices_are_token_major() {
        let c = HashCodes::from_flat(3, 2, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.code(0), &[0, 1]);
        assert_eq!(c.code(2), &[4, 5]);
    }

    #[test]
    fn iter_yields_all_tokens() {
        let c = HashCodes::from_flat(2, 2, vec![7, 8, 9, 10]);
        let collected: Vec<&[i32]> = c.iter().collect();
        assert_eq!(collected, vec![&[7, 8][..], &[9, 10][..]]);
    }

    #[test]
    fn empty_sequence_is_allowed() {
        let c = HashCodes::from_flat(0, 4, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_flat_validates_length() {
        let _ = HashCodes::from_flat(2, 3, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn code_bounds_checked() {
        let c = HashCodes::from_flat(1, 1, vec![0]);
        let _ = c.code(1);
    }
}
