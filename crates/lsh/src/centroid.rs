//! Centroid aggregation (paper Fig. 4b).

use cta_tensor::Matrix;

use crate::ClusterTable;

/// Cluster centroids with their populations.
///
/// `matrix` is `k × d`, row `c` being the mean of the tokens assigned to
/// cluster `c`; `counts[c]` is that cluster's population. Produced by
/// [`aggregate_centroids`] and consumed by the compression schemes and the
/// CAG hardware model.
#[derive(Debug, Clone, PartialEq)]
pub struct Centroids {
    /// `k × d` centroid matrix (`C` in the paper).
    pub matrix: Matrix,
    /// Per-cluster populations (`cntr` in the paper).
    pub counts: Vec<usize>,
}

impl Centroids {
    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.matrix.rows()
    }
}

/// Computes cluster centroids as per-cluster means (paper Fig. 4b):
/// accumulate every token into its cluster's row, then divide by the
/// population.
///
/// # Panics
///
/// Panics if `table.len() != tokens.rows()`.
pub fn aggregate_centroids(tokens: &Matrix, table: &ClusterTable) -> Centroids {
    assert_eq!(
        table.len(),
        tokens.rows(),
        "cluster table covers {} tokens but matrix has {} rows",
        table.len(),
        tokens.rows()
    );
    let k = table.cluster_count();
    let d = tokens.cols();
    let mut acc = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    // Accumulation loop (Fig. 4b lines 4-6).
    for t in 0..tokens.rows() {
        let c = table.cluster_of(t);
        let row = tokens.row(t);
        let acc_row = acc.row_mut(c);
        for (a, &x) in acc_row.iter_mut().zip(row) {
            *a += x;
        }
        counts[c] += 1;
    }
    // Averaging loop (Fig. 4b lines 7-9).
    for (c, &count) in counts.iter().enumerate() {
        let inv = 1.0 / count as f32;
        for a in acc.row_mut(c) {
            *a *= inv;
        }
    }
    Centroids { matrix: acc, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_tensor::MatrixRng;
    use proptest::prelude::*;

    #[test]
    fn centroid_is_cluster_mean() {
        let tokens = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0], &[0.0, 8.0]]);
        let ct = ClusterTable::new(vec![0, 0, 1], 2);
        let c = aggregate_centroids(&tokens, &ct);
        assert_eq!(c.matrix.row(0), &[2.0, 0.0]);
        assert_eq!(c.matrix.row(1), &[0.0, 8.0]);
        assert_eq!(c.counts, vec![2, 1]);
    }

    #[test]
    fn singleton_clusters_reproduce_tokens() {
        let tokens = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let ct = ClusterTable::new(vec![0, 1], 2);
        let c = aggregate_centroids(&tokens, &ct);
        assert_eq!(c.matrix, tokens);
    }

    #[test]
    fn single_cluster_gives_global_mean() {
        let tokens = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0], &[6.0]]);
        let ct = ClusterTable::new(vec![0, 0, 0, 0], 1);
        let c = aggregate_centroids(&tokens, &ct);
        assert_eq!(c.matrix.row(0), &[3.0]);
        assert_eq!(c.k(), 1);
    }

    #[test]
    #[should_panic(expected = "cluster table covers")]
    fn rejects_table_token_mismatch() {
        let tokens = Matrix::zeros(3, 2);
        let ct = ClusterTable::new(vec![0, 0], 1);
        let _ = aggregate_centroids(&tokens, &ct);
    }

    proptest! {
        /// The centroid is the L2-optimal single representative: total
        /// squared error to centroids never exceeds error to any other
        /// single point per cluster (checked against the cluster's first
        /// member as the alternative representative).
        #[test]
        fn centroid_beats_first_member_representative(seed in 0u64..300) {
            let mut rng = MatrixRng::new(seed);
            let n = 2 + rng.index(20);
            let d = 1 + rng.index(6);
            let k = 1 + rng.index(n.min(5));
            let tokens = rng.normal_matrix(n, d, 0.0, 1.0);
            // Random dense assignment.
            let mut indices: Vec<usize> = (0..k).collect();
            for _ in k..n { indices.push(rng.index(k)); }
            let ct = ClusterTable::new(indices.clone(), k);
            let cents = aggregate_centroids(&tokens, &ct);

            let mut first_member = vec![usize::MAX; k];
            for (t, &c) in indices.iter().enumerate() {
                if first_member[c] == usize::MAX { first_member[c] = t; }
            }
            let mut err_centroid = 0.0f64;
            let mut err_first = 0.0f64;
            for (t, &c) in indices.iter().enumerate() {
                for j in 0..d {
                    err_centroid += ((tokens[(t, j)] - cents.matrix[(c, j)]) as f64).powi(2);
                    err_first += ((tokens[(t, j)] - tokens[(first_member[c], j)]) as f64).powi(2);
                }
            }
            prop_assert!(err_centroid <= err_first + 1e-6);
        }

        /// Counts always sum to the number of tokens.
        #[test]
        fn counts_partition_tokens(seed in 0u64..300) {
            let mut rng = MatrixRng::new(seed);
            let n = 1 + rng.index(30);
            let k = 1 + rng.index(n);
            let tokens = rng.normal_matrix(n, 3, 0.0, 1.0);
            let mut indices: Vec<usize> = (0..k).collect();
            for _ in k..n { indices.push(rng.index(k)); }
            let ct = ClusterTable::new(indices, k);
            let c = aggregate_centroids(&tokens, &ct);
            prop_assert_eq!(c.counts.iter().sum::<usize>(), n);
        }
    }
}
