//! Incremental token compression for generative decoding.
//!
//! The paper evaluates GPT-2, where inference is *incremental*: each
//! decode step appends one token to the key/value sequence. The cluster
//! tree is naturally incremental — assigning a new token touches one
//! root-to-leaf path and the centroid update is a running mean — so the
//! whole compression state can be maintained in O(l + d) per token instead
//! of recompressing the growing prefix every step. This module provides
//! that maintenance; batch equivalence with [`compress`](crate::compress)
//! is the defining property (tested below).
//!
//! # Two-level residual streaming
//!
//! The KV side of CTA is *two-level*: level 1 clusters the tokens, level 2
//! clusters the residuals `X_i − C¹_{CT₁[i]}` (paper Fig. 3b). Batch
//! compression computes every residual against the *final* level-1
//! centroids; a streaming compressor cannot — when token `t` arrives, the
//! centroid of its cluster will keep moving as later tokens join. The
//! scheme here (enabled by [`StreamingCompressor::two_level`]) therefore
//! maintains:
//!
//! * **stale residuals** — each appended token's residual is taken against
//!   its level-1 centroid *as of that push* and streamed into an inner
//!   one-level compressor (so level 2 is itself exactly batch-equivalent
//!   over the residual stream it saw);
//! * a **drift estimate** — every push that moves a level-1 centroid by
//!   `‖δ‖` leaves the stale residuals of that cluster's prior members off
//!   by the same displacement; the accumulated `Σ (n_c − 1)·‖δ‖`,
//!   normalised by the accumulated token norm, is a proxy for how far the
//!   streamed level-2 state has drifted from what a batch re-cluster
//!   would produce ([`StreamingCompressor::drift`]);
//! * a **re-cluster trigger** — when the drift estimate exceeds the
//!   configured threshold, [`StreamingCompressor::recluster`] rebuilds
//!   level 2 from the retained token buffer (the KV cache of the decode
//!   idiom): residuals are recomputed against the *current* level-1
//!   centroids and re-streamed, which makes the full two-level snapshot
//!   bitwise-equal to [`compress_two_level`](crate::compress_two_level)
//!   of the prefix at that instant (pinned by proptest below).

use cta_tensor::Matrix;

use crate::{ClusterTable, ClusterTree, Compression, LshFamily, TwoLevelCompression};

/// A borrowing view of the current compression state — the allocation-free
/// counterpart of [`StreamingCompressor::snapshot`], so per-token
/// telemetry over a long decode stays O(1) per step instead of cloning
/// the full centroid matrix and cluster table every token.
#[derive(Debug, Clone, Copy)]
pub struct CompressionView<'a> {
    d: usize,
    centroids: &'a [f32],
    counts: &'a [usize],
    assignments: &'a [usize],
}

impl<'a> CompressionView<'a> {
    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Token dimension `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of tokens compressed.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no tokens have been pushed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Centroid of cluster `c` (`d` elements).
    ///
    /// # Panics
    ///
    /// Panics if `c >= k()`.
    pub fn centroid(&self, c: usize) -> &'a [f32] {
        &self.centroids[c * self.d..(c + 1) * self.d]
    }

    /// The flattened `k × d` centroid matrix.
    pub fn centroids_flat(&self) -> &'a [f32] {
        self.centroids
    }

    /// Per-cluster populations.
    pub fn counts(&self) -> &'a [usize] {
        self.counts
    }

    /// Token → cluster assignments in push order.
    pub fn assignments(&self) -> &'a [usize] {
        self.assignments
    }

    /// Materialises an owned [`Compression`] (bitwise-equal to
    /// [`StreamingCompressor::snapshot`]).
    pub fn to_compression(&self) -> Compression {
        Compression {
            centroids: Matrix::from_vec(self.k(), self.d, self.centroids.to_vec()),
            counts: self.counts.to_vec(),
            table: ClusterTable::new(self.assignments.to_vec(), self.k()),
        }
    }
}

/// The residual (level-2) state of a two-level streaming compressor.
#[derive(Debug, Clone)]
struct ResidualLevel {
    /// Inner one-level compressor over the stale residual stream.
    stream: StreamingCompressor,
    /// Pristine family for re-cluster rebuilds (the inner stream's tree
    /// state is discarded and re-grown on every re-cluster).
    family: LshFamily,
    /// Retained token buffer (flattened `n × d` — the decode KV cache);
    /// re-clustering recomputes residuals from it.
    tokens: Vec<f32>,
    /// Accumulated `Σ (n_c − 1)·‖δ‖` of level-1 centroid displacements
    /// since the last re-cluster.
    drift_abs: f64,
    /// Accumulated `Σ ‖x_i‖` over all pushed tokens (drift normaliser).
    token_norm: f64,
    /// Re-cluster when `drift()` exceeds this (∞ disables the trigger).
    threshold: f64,
    /// Re-clusters performed so far.
    reclusters: usize,
    /// Token count at the last re-cluster.
    reclustered_at: usize,
}

/// An incrementally maintained compression: one-level by default
/// ([`StreamingCompressor::new`]), or the full two-level residual-centroid
/// scheme of the paper's KV side ([`StreamingCompressor::two_level`]).
///
/// ```
/// use cta_lsh::{compress, LshFamily, LshParams, StreamingCompressor};
/// use cta_tensor::standard_normal_matrix;
///
/// let family = LshFamily::sample(8, LshParams::new(4, 2.0), 1);
/// let tokens = standard_normal_matrix(2, 10, 8);
///
/// let mut stream = StreamingCompressor::new(family.clone());
/// for t in 0..tokens.rows() {
///     stream.push(tokens.row(t));
/// }
/// // Identical to compressing the batch at once.
/// assert_eq!(stream.snapshot(), compress(&tokens, &family));
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCompressor {
    family: LshFamily,
    tree: ClusterTree,
    /// Per-cluster running sums, flattened `k × d`.
    sums: Vec<f32>,
    counts: Vec<usize>,
    assignments: Vec<usize>,
    /// Cached centroids, flattened `k × d`: only the pushed token's
    /// cluster row is recomputed per push, so reading the state is
    /// allocation-free ([`Self::as_compression`]). Values are bitwise the
    /// batch centroids — untouched rows' sums and counts are unchanged,
    /// and the touched row uses the same reciprocal-multiply expression
    /// as `aggregate_centroids`.
    centroids: Vec<f32>,
    /// Level-2 residual state, present in two-level mode.
    residual: Option<Box<ResidualLevel>>,
}

impl StreamingCompressor {
    /// Creates an empty one-level compressor for the given family.
    pub fn new(family: LshFamily) -> Self {
        let l = family.hash_length();
        Self {
            family,
            tree: ClusterTree::new(l),
            sums: Vec::new(),
            counts: Vec::new(),
            assignments: Vec::new(),
            centroids: Vec::new(),
            residual: None,
        }
    }

    /// Creates an empty *two-level* compressor: `family1` clusters the
    /// tokens, `family2` clusters the stale residuals, and a re-cluster
    /// is triggered whenever [`Self::drift`] exceeds
    /// `recluster_threshold` (pass `f64::INFINITY` to disable the
    /// automatic trigger and re-cluster manually).
    ///
    /// # Panics
    ///
    /// Panics if the families' dimensions differ or the threshold is NaN
    /// or non-positive.
    pub fn two_level(family1: LshFamily, family2: LshFamily, recluster_threshold: f64) -> Self {
        assert_eq!(family1.dim(), family2.dim(), "family dimensions must match");
        assert!(
            recluster_threshold > 0.0 && !recluster_threshold.is_nan(),
            "re-cluster threshold must be positive (inf disables the trigger)"
        );
        let mut s = Self::new(family1);
        s.residual = Some(Box::new(ResidualLevel {
            stream: StreamingCompressor::new(family2.clone()),
            family: family2,
            tokens: Vec::new(),
            drift_abs: 0.0,
            token_norm: 0.0,
            threshold: recluster_threshold,
            reclusters: 0,
            reclustered_at: 0,
        }));
        s
    }

    /// Whether the compressor maintains the residual (second) level.
    pub fn is_two_level(&self) -> bool {
        self.residual.is_some()
    }

    /// Number of tokens pushed so far.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no tokens have been pushed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Current cluster count `k` (level 1).
    pub fn cluster_count(&self) -> usize {
        self.counts.len()
    }

    /// Appends one token, returning its level-1 cluster index. Cost: `l`
    /// hash values, one tree walk, one `d`-wide sum update — twice that
    /// plus a `d`-wide subtraction in two-level mode. May trigger a
    /// re-cluster (O(n·(l + d)) against the retained buffer) when the
    /// drift estimate crosses the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `token.len() != family.dim()`.
    pub fn push(&mut self, token: &[f32]) -> usize {
        let code = self.family.hash_code(token);
        let cluster = self.tree.assign(&code);
        let d = self.family.dim();
        if cluster == self.counts.len() {
            self.counts.push(0);
            self.sums.extend(std::iter::repeat_n(0.0, d));
            self.centroids.extend(std::iter::repeat_n(0.0, d));
        }
        let prior_members = self.counts[cluster];
        self.counts[cluster] += 1;
        for (s, &x) in self.sums[cluster * d..(cluster + 1) * d].iter_mut().zip(token) {
            *s += x;
        }
        // Refresh the cached centroid row. The reciprocal multiply (not a
        // divide) keeps the cache bit-identical to `aggregate_centroids`.
        let inv = 1.0 / self.counts[cluster] as f32;
        let mut displacement_sq = 0.0f64;
        for j in 0..d {
            let new = self.sums[cluster * d + j] * inv;
            if prior_members > 0 {
                let delta = (new - self.centroids[cluster * d + j]) as f64;
                displacement_sq += delta * delta;
            }
            self.centroids[cluster * d + j] = new;
        }
        self.assignments.push(cluster);

        if let Some(res) = &mut self.residual {
            // Stale residual against the post-push centroid; prior members
            // of the cluster are now off by the displacement — account it.
            res.drift_abs += prior_members as f64 * displacement_sq.sqrt();
            res.token_norm += token.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
            res.tokens.extend_from_slice(token);
            let base = &self.centroids[cluster * d..(cluster + 1) * d];
            let residual_row: Vec<f32> = token.iter().zip(base).map(|(&x, &c)| x - c).collect();
            res.stream.push(&residual_row);
            if self.drift() > self.recluster_threshold() {
                self.recluster();
            }
        }
        cluster
    }

    /// The relative drift estimate: accumulated level-1 centroid
    /// displacement weighted by affected members, over the accumulated
    /// token norm. 0 for a one-level compressor, and reset to 0 by
    /// [`Self::recluster`].
    pub fn drift(&self) -> f64 {
        match &self.residual {
            Some(res) if res.token_norm > 0.0 => res.drift_abs / res.token_norm,
            _ => 0.0,
        }
    }

    /// The configured re-cluster threshold (∞ for one-level compressors
    /// and disabled triggers).
    pub fn recluster_threshold(&self) -> f64 {
        self.residual.as_ref().map_or(f64::INFINITY, |r| r.threshold)
    }

    /// Re-clusters performed so far (0 in one-level mode).
    pub fn reclusters(&self) -> usize {
        self.residual.as_ref().map_or(0, |r| r.reclusters)
    }

    /// Tokens pushed since the last re-cluster (= [`Self::len`] if none
    /// has happened).
    pub fn tokens_since_recluster(&self) -> usize {
        self.len() - self.residual.as_ref().map_or(0, |r| r.reclustered_at)
    }

    /// Rebuilds level 2 from the retained token buffer: residuals are
    /// recomputed against the *current* level-1 centroids and re-streamed
    /// through a fresh inner compressor, then the drift estimate resets.
    /// Afterwards [`Self::two_level_snapshot`] is bitwise-equal to
    /// [`compress_two_level`](crate::compress_two_level) of the prefix.
    ///
    /// No-op for a one-level compressor.
    pub fn recluster(&mut self) {
        let d = self.family.dim();
        let Some(res) = &mut self.residual else { return };
        let mut fresh = StreamingCompressor::new(res.family.clone());
        for (i, &cluster) in self.assignments.iter().enumerate() {
            let token = &res.tokens[i * d..(i + 1) * d];
            let base = &self.centroids[cluster * d..(cluster + 1) * d];
            let residual_row: Vec<f32> = token.iter().zip(base).map(|(&x, &c)| x - c).collect();
            fresh.push(&residual_row);
        }
        res.stream = fresh;
        res.drift_abs = 0.0;
        res.reclusters += 1;
        res.reclustered_at = self.assignments.len();
    }

    /// The current level-1 centroid matrix (`k × d`, running means).
    pub fn centroids(&self) -> Matrix {
        Matrix::from_vec(self.counts.len(), self.family.dim(), self.centroids.clone())
    }

    /// The current level-1 cluster table.
    pub fn table(&self) -> ClusterTable {
        ClusterTable::new(self.assignments.clone(), self.counts.len())
    }

    /// A borrowing view of the level-1 state: no clone, no allocation.
    /// Use this for per-token telemetry; [`Self::snapshot`] for an owned
    /// copy.
    pub fn as_compression(&self) -> CompressionView<'_> {
        CompressionView {
            d: self.family.dim(),
            centroids: &self.centroids,
            counts: &self.counts,
            assignments: &self.assignments,
        }
    }

    /// A borrowing view of the level-2 (stale-residual) state, if the
    /// compressor is two-level.
    pub fn residual_compression(&self) -> Option<CompressionView<'_>> {
        self.residual.as_ref().map(|r| r.stream.as_compression())
    }

    /// A full owned [`Compression`] snapshot of the level-1 state.
    pub fn snapshot(&self) -> Compression {
        self.as_compression().to_compression()
    }

    /// A full owned [`TwoLevelCompression`] snapshot: level 1 plus the
    /// current (stale-residual) level 2. Bitwise-equal to
    /// [`compress_two_level`](crate::compress_two_level) of the prefix
    /// immediately after a [`Self::recluster`].
    ///
    /// # Panics
    ///
    /// Panics if the compressor is one-level.
    pub fn two_level_snapshot(&self) -> TwoLevelCompression {
        let res = self.residual.as_ref().expect("two_level_snapshot needs a two-level compressor");
        TwoLevelCompression { level1: self.snapshot(), level2: res.stream.snapshot() }
    }

    /// Scalar operations spent per pushed token: `l·d` hash MACs plus the
    /// `d` centroid-sum additions per maintained level (the tree walk is
    /// `l` pointer steps), plus the `d`-wide residual subtraction in
    /// two-level mode.
    pub fn ops_per_token(&self) -> u64 {
        let per_level = (self.family.hash_length() * self.family.dim() + self.family.dim()) as u64;
        if self.residual.is_some() {
            2 * per_level + self.family.dim() as u64
        } else {
            per_level
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, compress_two_level, LshParams};
    use cta_tensor::MatrixRng;
    use proptest::prelude::*;

    fn family(seed: u64) -> LshFamily {
        LshFamily::sample(6, LshParams::new(4, 1.5), seed)
    }

    /// A coarse family (few, wide hashes) so tokens actually share
    /// clusters and level-1 centroids move — needed by the drift tests.
    fn coarse_family(seed: u64) -> LshFamily {
        LshFamily::sample(6, LshParams::new(2, 20.0), seed)
    }

    #[test]
    fn streaming_equals_batch_compression() {
        let mut rng = MatrixRng::new(3);
        let tokens = rng.normal_matrix(40, 6, 0.0, 1.0);
        let fam = family(9);
        let mut stream = StreamingCompressor::new(fam.clone());
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
        }
        assert_eq!(stream.snapshot(), compress(&tokens, &fam));
    }

    #[test]
    fn snapshots_are_consistent_at_every_prefix() {
        let mut rng = MatrixRng::new(5);
        let tokens = rng.normal_matrix(24, 6, 0.0, 1.0);
        let fam = family(11);
        let mut stream = StreamingCompressor::new(fam.clone());
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
            let prefix = tokens.slice_rows(0, t + 1);
            assert_eq!(stream.snapshot(), compress(&prefix, &fam), "prefix {t}");
        }
    }

    #[test]
    fn view_borrows_without_cloning_and_matches_snapshot() {
        let mut rng = MatrixRng::new(6);
        let tokens = rng.normal_matrix(20, 6, 0.0, 1.0);
        let mut stream = StreamingCompressor::new(family(19));
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
            let view = stream.as_compression();
            assert_eq!(view.len(), t + 1);
            assert_eq!(view.counts().iter().sum::<usize>(), t + 1);
            assert_eq!(view.to_compression(), stream.snapshot(), "prefix {t}");
            // Centroid rows index the flat cache consistently.
            for c in 0..view.k() {
                assert_eq!(view.centroid(c), &view.centroids_flat()[c * 6..(c + 1) * 6]);
            }
        }
    }

    #[test]
    fn push_returns_tree_assignment() {
        let fam = family(13);
        let mut stream = StreamingCompressor::new(fam);
        let a = stream.push(&[0.0; 6]);
        let b = stream.push(&[0.0; 6]);
        let c = stream.push(&[10.0; 6]);
        assert_eq!(a, 0);
        assert_eq!(b, 0);
        assert_eq!(c, 1);
        assert_eq!(stream.cluster_count(), 2);
        assert_eq!(stream.len(), 3);
        assert!(!stream.is_two_level());
        assert_eq!(stream.drift(), 0.0, "one-level compressors never drift");
    }

    #[test]
    fn ops_per_token_is_constant_in_sequence_length() {
        let fam = family(17);
        let mut stream = StreamingCompressor::new(fam);
        let before = stream.ops_per_token();
        for _ in 0..50 {
            stream.push(&[1.0; 6]);
        }
        assert_eq!(stream.ops_per_token(), before);
        assert_eq!(before, (4 * 6 + 6) as u64);
        // Two levels cost two maintenance passes plus the residual
        // subtraction.
        let two = StreamingCompressor::two_level(family(17), family(18), f64::INFINITY);
        assert_eq!(two.ops_per_token(), 2 * before + 6);
    }

    #[test]
    fn two_level_drift_grows_and_recluster_resets_it() {
        let mut rng = MatrixRng::new(8);
        let tokens = rng.normal_matrix(40, 6, 0.0, 1.5);
        let mut stream =
            StreamingCompressor::two_level(coarse_family(21), coarse_family(22), f64::INFINITY);
        let mut last = 0.0;
        let mut grew = false;
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
            let d = stream.drift();
            assert!(d >= 0.0 && d.is_finite());
            if d > last {
                grew = true;
            }
            last = d;
        }
        assert!(grew, "drift never accumulated over 40 tokens");
        assert!(stream.drift() > 0.0);
        stream.recluster();
        assert_eq!(stream.drift(), 0.0);
        assert_eq!(stream.reclusters(), 1);
        assert_eq!(stream.tokens_since_recluster(), 0);
    }

    #[test]
    fn tight_threshold_triggers_automatic_reclusters() {
        let mut rng = MatrixRng::new(9);
        let tokens = rng.normal_matrix(60, 6, 0.0, 1.5);
        let mut auto = StreamingCompressor::two_level(coarse_family(23), coarse_family(24), 1e-6);
        for t in 0..tokens.rows() {
            auto.push(tokens.row(t));
            assert!(
                auto.drift() <= 1e-6 || auto.tokens_since_recluster() == 0,
                "drift {} above threshold without a re-cluster",
                auto.drift()
            );
        }
        assert!(auto.reclusters() > 0, "tight threshold must re-cluster");
        // A slack threshold on the same stream never triggers.
        let mut slack =
            StreamingCompressor::two_level(coarse_family(23), coarse_family(24), f64::INFINITY);
        for t in 0..tokens.rows() {
            slack.push(tokens.row(t));
        }
        assert_eq!(slack.reclusters(), 0);
    }

    #[test]
    fn recluster_matches_batch_two_level_exactly() {
        let mut rng = MatrixRng::new(10);
        let tokens = rng.normal_matrix(32, 6, 0.0, 1.0);
        let f1 = family(25);
        let f2 = family(26);
        let mut stream = StreamingCompressor::two_level(f1.clone(), f2.clone(), f64::INFINITY);
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
        }
        stream.recluster();
        assert_eq!(stream.two_level_snapshot(), compress_two_level(&tokens, &f1, &f2));
    }

    #[test]
    #[should_panic(expected = "re-cluster threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = StreamingCompressor::two_level(family(1), family(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "two_level_snapshot needs a two-level compressor")]
    fn one_level_snapshot_of_two_levels_rejected() {
        let _ = StreamingCompressor::new(family(1)).two_level_snapshot();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn equivalence_with_batch(seed in 0u64..500, n in 1usize..60) {
            let mut rng = MatrixRng::new(seed);
            let tokens = rng.normal_matrix(n, 6, 0.0, 1.5);
            let fam = family(seed + 1);
            let mut stream = StreamingCompressor::new(fam.clone());
            for t in 0..n {
                stream.push(tokens.row(t));
            }
            prop_assert_eq!(stream.snapshot(), compress(&tokens, &fam));
        }

        /// The two-level equivalence pin at *every* prefix length:
        /// re-clustering a clone of the streamed state is bitwise-equal
        /// to batch `compress_two_level` of the prefix, level 1 alone is
        /// bitwise-equal to batch `compress`, and the streamed level 2 is
        /// bitwise-equal to batch `compress` of the stale residual stream
        /// it was fed.
        #[test]
        fn two_level_equivalence_with_batch_at_every_prefix(
            seed in 0u64..200,
            n in 1usize..40,
        ) {
            let mut rng = MatrixRng::new(seed);
            let tokens = rng.normal_matrix(n, 6, 0.0, 1.5);
            let f1 = family(seed + 1);
            let f2 = family(seed + 2);
            let mut stream =
                StreamingCompressor::two_level(f1.clone(), f2.clone(), f64::INFINITY);
            let mut stale_rows: Vec<Vec<f32>> = Vec::new();
            for t in 0..n {
                let cluster = stream.push(tokens.row(t));
                let view = stream.as_compression();
                stale_rows.push(
                    tokens.row(t).iter().zip(view.centroid(cluster)).map(|(&x, &c)| x - c).collect(),
                );
                let prefix = tokens.slice_rows(0, t + 1);

                // Level 1 is exactly batch at every prefix.
                prop_assert_eq!(stream.snapshot(), compress(&prefix, &f1));

                // Level 2 is exactly batch over the stale residual stream.
                let refs: Vec<&[f32]> = stale_rows.iter().map(|r| r.as_slice()).collect();
                let stale = Matrix::from_rows(&refs);
                prop_assert_eq!(
                    stream.residual_compression().expect("two-level").to_compression(),
                    compress(&stale, &f2)
                );

                // Re-clustering a clone lands exactly on batch two-level.
                let mut reclustered = stream.clone();
                reclustered.recluster();
                prop_assert_eq!(
                    reclustered.two_level_snapshot(),
                    compress_two_level(&prefix, &f1, &f2)
                );
            }
        }
    }
}
