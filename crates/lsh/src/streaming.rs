//! Incremental token compression for generative decoding.
//!
//! The paper evaluates GPT-2, where inference is *incremental*: each
//! decode step appends one token to the key/value sequence. The cluster
//! tree is naturally incremental — assigning a new token touches one
//! root-to-leaf path and the centroid update is a running mean — so the
//! whole compression state can be maintained in O(l + d) per token instead
//! of recompressing the growing prefix every step. This module provides
//! that maintenance; batch equivalence with [`compress`](crate::compress)
//! is the defining property (tested below).

use cta_tensor::Matrix;

use crate::{ClusterTable, ClusterTree, Compression, LshFamily};

/// An incrementally maintained one-level compression.
///
/// ```
/// use cta_lsh::{compress, LshFamily, LshParams, StreamingCompressor};
/// use cta_tensor::standard_normal_matrix;
///
/// let family = LshFamily::sample(8, LshParams::new(4, 2.0), 1);
/// let tokens = standard_normal_matrix(2, 10, 8);
///
/// let mut stream = StreamingCompressor::new(family.clone());
/// for t in 0..tokens.rows() {
///     stream.push(tokens.row(t));
/// }
/// // Identical to compressing the batch at once.
/// assert_eq!(stream.snapshot(), compress(&tokens, &family));
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCompressor {
    family: LshFamily,
    tree: ClusterTree,
    /// Per-cluster running sums, flattened `k × d`.
    sums: Vec<f32>,
    counts: Vec<usize>,
    assignments: Vec<usize>,
}

impl StreamingCompressor {
    /// Creates an empty compressor for the given family.
    pub fn new(family: LshFamily) -> Self {
        let l = family.hash_length();
        Self {
            family,
            tree: ClusterTree::new(l),
            sums: Vec::new(),
            counts: Vec::new(),
            assignments: Vec::new(),
        }
    }

    /// Number of tokens pushed so far.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no tokens have been pushed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Current cluster count `k`.
    pub fn cluster_count(&self) -> usize {
        self.counts.len()
    }

    /// Appends one token, returning its cluster index. Cost: `l` hash
    /// values, one tree walk, one `d`-wide sum update.
    ///
    /// # Panics
    ///
    /// Panics if `token.len() != family.dim()`.
    pub fn push(&mut self, token: &[f32]) -> usize {
        let code = self.family.hash_code(token);
        let cluster = self.tree.assign(&code);
        let d = self.family.dim();
        if cluster == self.counts.len() {
            self.counts.push(0);
            self.sums.extend(std::iter::repeat_n(0.0, d));
        }
        self.counts[cluster] += 1;
        for (s, &x) in self.sums[cluster * d..(cluster + 1) * d].iter_mut().zip(token) {
            *s += x;
        }
        self.assignments.push(cluster);
        cluster
    }

    /// The current centroid matrix (`k × d`, running means).
    pub fn centroids(&self) -> Matrix {
        let d = self.family.dim();
        let k = self.counts.len();
        // Multiply by the reciprocal (not divide) so results are
        // bit-identical to `aggregate_centroids`' averaging loop.
        Matrix::from_fn(k, d, |c, j| self.sums[c * d + j] * (1.0 / self.counts[c] as f32))
    }

    /// The current cluster table.
    pub fn table(&self) -> ClusterTable {
        ClusterTable::new(self.assignments.clone(), self.counts.len())
    }

    /// A full [`Compression`] snapshot of the current state.
    pub fn snapshot(&self) -> Compression {
        Compression {
            centroids: self.centroids(),
            counts: self.counts.clone(),
            table: self.table(),
        }
    }

    /// Scalar operations spent per pushed token: `l·d` hash MACs plus the
    /// `d` centroid-sum additions (the tree walk is `l` pointer steps).
    pub fn ops_per_token(&self) -> u64 {
        (self.family.hash_length() * self.family.dim() + self.family.dim()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, LshParams};
    use cta_tensor::MatrixRng;
    use proptest::prelude::*;

    fn family(seed: u64) -> LshFamily {
        LshFamily::sample(6, LshParams::new(4, 1.5), seed)
    }

    #[test]
    fn streaming_equals_batch_compression() {
        let mut rng = MatrixRng::new(3);
        let tokens = rng.normal_matrix(40, 6, 0.0, 1.0);
        let fam = family(9);
        let mut stream = StreamingCompressor::new(fam.clone());
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
        }
        assert_eq!(stream.snapshot(), compress(&tokens, &fam));
    }

    #[test]
    fn snapshots_are_consistent_at_every_prefix() {
        let mut rng = MatrixRng::new(5);
        let tokens = rng.normal_matrix(24, 6, 0.0, 1.0);
        let fam = family(11);
        let mut stream = StreamingCompressor::new(fam.clone());
        for t in 0..tokens.rows() {
            stream.push(tokens.row(t));
            let prefix = tokens.slice_rows(0, t + 1);
            assert_eq!(stream.snapshot(), compress(&prefix, &fam), "prefix {t}");
        }
    }

    #[test]
    fn push_returns_tree_assignment() {
        let fam = family(13);
        let mut stream = StreamingCompressor::new(fam);
        let a = stream.push(&[0.0; 6]);
        let b = stream.push(&[0.0; 6]);
        let c = stream.push(&[10.0; 6]);
        assert_eq!(a, 0);
        assert_eq!(b, 0);
        assert_eq!(c, 1);
        assert_eq!(stream.cluster_count(), 2);
        assert_eq!(stream.len(), 3);
    }

    #[test]
    fn ops_per_token_is_constant_in_sequence_length() {
        let fam = family(17);
        let mut stream = StreamingCompressor::new(fam);
        let before = stream.ops_per_token();
        for _ in 0..50 {
            stream.push(&[1.0; 6]);
        }
        assert_eq!(stream.ops_per_token(), before);
        assert_eq!(before, (4 * 6 + 6) as u64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn equivalence_with_batch(seed in 0u64..500, n in 1usize..60) {
            let mut rng = MatrixRng::new(seed);
            let tokens = rng.normal_matrix(n, 6, 0.0, 1.5);
            let fam = family(seed + 1);
            let mut stream = StreamingCompressor::new(fam.clone());
            for t in 0..n {
                stream.push(tokens.row(t));
            }
            prop_assert_eq!(stream.snapshot(), compress(&tokens, &fam));
        }
    }
}
