//! The cluster tree (paper Fig. 4a): streaming hash-code → cluster-index
//! assignment.

use std::collections::HashMap;

use crate::{ClusterTable, HashCodes};

/// Where a tree edge leads: an internal node (layers `0..l-1`) or a leaf
/// holding a cluster index (layer `l-1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Child {
    Internal(usize),
    Leaf(usize),
}

/// A node's outgoing edges, keyed by hash value.
///
/// The hardware stores `(hash value, child address)` pairs in per-layer
/// memory blocks with linearly allocated addresses; a `HashMap` models the
/// same associative lookup.
#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<i32, Child>,
}

/// The dynamic cluster tree of paper Fig. 4(a).
///
/// A root plus `l` layers; each root-to-leaf path spells out one hash code,
/// and each leaf records the cluster index allocated when that code was
/// first seen. Feeding the codes of a token sequence through the tree in
/// order yields the cluster table `CT` with first-appearance numbering.
///
/// This is the *reference* software implementation; the cycle-level model
/// of the Cluster Index Module in `cta-sim` replays the same logic with
/// `l` hardware threads and checks itself against this structure.
///
/// ```
/// use cta_lsh::ClusterTree;
///
/// let mut tree = ClusterTree::new(2);
/// assert_eq!(tree.assign(&[4, 7]), 0); // new code -> new cluster
/// assert_eq!(tree.assign(&[4, 8]), 1); // differs in last value
/// assert_eq!(tree.assign(&[4, 7]), 0); // existing leaf found again
/// assert_eq!(tree.cluster_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterTree {
    hash_length: usize,
    /// Arena of internal nodes; index 0 is the root.
    nodes: Vec<Node>,
    cluster_count: usize,
}

impl ClusterTree {
    /// Creates an empty tree for codes of length `hash_length`.
    ///
    /// # Panics
    ///
    /// Panics if `hash_length == 0`.
    pub fn new(hash_length: usize) -> Self {
        assert!(hash_length > 0, "hash length must be positive");
        Self { hash_length, nodes: vec![Node::default()], cluster_count: 0 }
    }

    /// Code length `l` this tree consumes.
    pub fn hash_length(&self) -> usize {
        self.hash_length
    }

    /// Number of clusters allocated so far.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Number of internal nodes (root included) — a hardware memory-budget
    /// proxy for the CIM layer memories.
    pub fn internal_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walks (and extends) the tree along `code`, returning the cluster
    /// index — existing if the leaf was already present, freshly allocated
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.hash_length()`.
    pub fn assign(&mut self, code: &[i32]) -> usize {
        assert_eq!(
            code.len(),
            self.hash_length,
            "hash code length mismatch: {} vs {}",
            code.len(),
            self.hash_length
        );
        let mut node = 0usize;
        // Layers 0..l-1: internal transitions (Fig. 4a lines 17-20).
        for &hv in &code[..self.hash_length - 1] {
            let next = self.nodes.len();
            let entry = self.nodes[node].children.entry(hv).or_insert(Child::Internal(next));
            match *entry {
                Child::Internal(idx) => {
                    if idx == next {
                        self.nodes.push(Node::default());
                    }
                    node = idx;
                }
                Child::Leaf(_) => unreachable!("leaf encountered before final layer"),
            }
        }
        // Final layer: leaf lookup or creation (Fig. 4a lines 7-15).
        let last = code[self.hash_length - 1];
        match self.nodes[node].children.get(&last) {
            Some(&Child::Leaf(idx)) => idx,
            Some(&Child::Internal(_)) => unreachable!("internal child in final layer"),
            None => {
                let idx = self.cluster_count;
                self.cluster_count += 1;
                self.nodes[node].children.insert(last, Child::Leaf(idx));
                idx
            }
        }
    }

    /// Assigns every code in sequence order and returns the cluster table.
    pub fn assign_all(&mut self, codes: &HashCodes) -> ClusterTable {
        assert_eq!(codes.hash_length(), self.hash_length, "hash length mismatch");
        let indices: Vec<usize> = codes.iter().map(|c| self.assign(c)).collect();
        ClusterTable::new(indices, self.cluster_count)
    }
}

/// Reference clustering via a flat code → index map.
///
/// Used to cross-check the tree: both must produce identical tables for
/// identical input order (first appearance ⇒ next dense index).
pub fn cluster_by_code_map(codes: &HashCodes) -> ClusterTable {
    let mut map: HashMap<&[i32], usize> = HashMap::new();
    let mut indices = Vec::with_capacity(codes.len());
    for code in codes.iter() {
        let next = map.len();
        let idx = *map.entry(code).or_insert(next);
        indices.push(idx);
    }
    ClusterTable::new(indices, map.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_tensor::MatrixRng;
    use proptest::prelude::*;

    #[test]
    fn first_appearance_numbering() {
        let mut tree = ClusterTree::new(3);
        assert_eq!(tree.assign(&[1, 2, 3]), 0);
        assert_eq!(tree.assign(&[1, 2, 4]), 1);
        assert_eq!(tree.assign(&[0, 2, 3]), 2);
        assert_eq!(tree.assign(&[1, 2, 3]), 0);
        assert_eq!(tree.cluster_count(), 3);
    }

    #[test]
    fn shared_prefixes_share_internal_nodes() {
        let mut tree = ClusterTree::new(3);
        tree.assign(&[5, 5, 1]);
        let nodes_after_first = tree.internal_node_count();
        tree.assign(&[5, 5, 2]); // same prefix, only a new leaf
        assert_eq!(tree.internal_node_count(), nodes_after_first);
        tree.assign(&[6, 5, 1]); // new prefix from the root
        assert!(tree.internal_node_count() > nodes_after_first);
    }

    #[test]
    fn negative_hash_values_are_valid_edges() {
        let mut tree = ClusterTree::new(2);
        assert_eq!(tree.assign(&[-3, -7]), 0);
        assert_eq!(tree.assign(&[-3, -7]), 0);
        assert_eq!(tree.assign(&[-3, 7]), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assign_rejects_wrong_length() {
        let mut tree = ClusterTree::new(2);
        let _ = tree.assign(&[1]);
    }

    #[test]
    fn assign_all_matches_reference_on_random_codes() {
        let mut rng = MatrixRng::new(77);
        for _ in 0..20 {
            let n = 1 + rng.index(64);
            let l = 1 + rng.index(6);
            let values: Vec<i32> = (0..n * l).map(|_| rng.index(4) as i32 - 2).collect();
            let codes = HashCodes::from_flat(n, l, values);
            let mut tree = ClusterTree::new(l);
            assert_eq!(tree.assign_all(&codes), cluster_by_code_map(&codes));
        }
    }

    #[test]
    fn hash_length_one_degenerates_to_value_map() {
        let codes = HashCodes::from_flat(4, 1, vec![9, 8, 9, 7]);
        let mut tree = ClusterTree::new(1);
        let ct = tree.assign_all(&codes);
        assert_eq!(ct.indices(), &[0, 1, 0, 2]);
    }

    proptest! {
        #[test]
        fn tree_equals_reference(
            n in 1usize..50,
            l in 1usize..6,
            seed in 0u64..1000,
        ) {
            let mut rng = MatrixRng::new(seed);
            let values: Vec<i32> = (0..n * l).map(|_| rng.index(3) as i32).collect();
            let codes = HashCodes::from_flat(n, l, values);
            let mut tree = ClusterTree::new(l);
            prop_assert_eq!(tree.assign_all(&codes), cluster_by_code_map(&codes));
        }

        #[test]
        fn cluster_count_bounded_by_tokens(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let mut rng = MatrixRng::new(seed);
            let l = 3;
            let values: Vec<i32> = (0..n * l).map(|_| rng.index(5) as i32).collect();
            let codes = HashCodes::from_flat(n, l, values);
            let mut tree = ClusterTree::new(l);
            let ct = tree.assign_all(&codes);
            prop_assert!(ct.cluster_count() <= n);
            prop_assert!(ct.cluster_count() >= 1);
        }
    }
}
