//! Token compression (paper §III-B): one-level for queries, two-level
//! residual for key/value tokens.

use cta_tensor::Matrix;

use crate::{aggregate_centroids, ClusterTable, ClusterTree, LshFamily};

/// The result of one level of LSH-based token compression: centroids, the
/// cluster table, and per-cluster populations.
///
/// `reconstruct()` expands centroids back to sequence length via the table,
/// giving the approximation `X_i ≈ C_{CT[i]}` (paper eq. 2, query side).
#[derive(Debug, Clone, PartialEq)]
pub struct Compression {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Token → cluster mapping.
    pub table: ClusterTable,
    /// Per-cluster populations.
    pub counts: Vec<usize>,
}

impl Compression {
    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Expands the centroids back to one row per token.
    pub fn reconstruct(&self) -> Matrix {
        self.centroids.gather_rows(self.table.indices())
    }

    /// Relative Frobenius error of approximating `original` by the
    /// reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn approximation_error(&self, original: &Matrix) -> f64 {
        cta_tensor::relative_error(&self.reconstruct(), original)
    }
}

/// Compresses a token matrix with a single LSH level (used for query tokens,
/// `LSH₀` in the paper).
///
/// # Panics
///
/// Panics if `tokens.cols() != family.dim()`.
pub fn compress(tokens: &Matrix, family: &LshFamily) -> Compression {
    let codes = family.hash_matrix(tokens);
    let mut tree = ClusterTree::new(family.hash_length());
    let table = tree.assign_all(&codes);
    let cents = aggregate_centroids(tokens, &table);
    Compression { centroids: cents.matrix, counts: cents.counts, table }
}

/// Two-level residual compression for key/value tokens (paper Fig. 3b).
///
/// Level 1 clusters the tokens themselves; level 2 clusters the *residuals*
/// `X_i − C¹_{CT₁[i]}`, so a token is approximated as the sum of its two
/// centroids: `X_i ≈ C¹_{CT₁[i]} + C²_{CT₂[i]}` (paper eq. 2, KV side).
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelCompression {
    /// Level-1 compression of the raw tokens (`C¹`, `CT₁`).
    pub level1: Compression,
    /// Level-2 compression of the residual tokens (`C²`, `CT₂`).
    pub level2: Compression,
}

impl TwoLevelCompression {
    /// `k₁` — level-1 cluster count.
    pub fn k1(&self) -> usize {
        self.level1.k()
    }

    /// `k₂` — level-2 cluster count.
    pub fn k2(&self) -> usize {
        self.level2.k()
    }

    /// Number of tokens compressed.
    pub fn len(&self) -> usize {
        self.level1.table.len()
    }

    /// Whether the compressed sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.level1.table.is_empty()
    }

    /// The concatenated centroid matrix `C^cat = [C¹; C²]`
    /// (`(k₁+k₂) × d`), the operand of the CTA key/value linears
    /// (paper eq. 3).
    pub fn concatenated_centroids(&self) -> Matrix {
        self.level1.centroids.vstack(&self.level2.centroids)
    }

    /// Expands back to one row per token: `C¹_{CT₁[i]} + C²_{CT₂[i]}`.
    pub fn reconstruct(&self) -> Matrix {
        self.level1.reconstruct().add(&self.level2.reconstruct())
    }

    /// Relative Frobenius error of the two-level approximation.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn approximation_error(&self, original: &Matrix) -> f64 {
        cta_tensor::relative_error(&self.reconstruct(), original)
    }
}

/// Runs two-level residual compression: `family1` on the tokens, `family2`
/// on the residuals.
///
/// # Panics
///
/// Panics if the family dimensions do not match the token dimension.
pub fn compress_two_level(
    tokens: &Matrix,
    family1: &LshFamily,
    family2: &LshFamily,
) -> TwoLevelCompression {
    let level1 = compress(tokens, family1);
    let residuals = tokens.sub(&level1.reconstruct());
    let level2 = compress(&residuals, family2);
    TwoLevelCompression { level1, level2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LshParams;
    use cta_tensor::MatrixRng;
    use proptest::prelude::*;

    fn clustered_tokens(
        seed: u64,
        clusters: usize,
        per_cluster: usize,
        d: usize,
        noise: f32,
    ) -> Matrix {
        let mut rng = MatrixRng::new(seed);
        let centers = rng.normal_matrix(clusters, d, 0.0, 4.0);
        let mut rows = Vec::new();
        for c in 0..clusters {
            for _ in 0..per_cluster {
                let jitter = rng.normal_matrix(1, d, 0.0, noise);
                rows.push(
                    centers
                        .row(c)
                        .iter()
                        .zip(jitter.row(0))
                        .map(|(&a, &b)| a + b)
                        .collect::<Vec<f32>>(),
                );
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn clustered_data_compresses_well() {
        let tokens = clustered_tokens(5, 4, 16, 8, 0.01);
        let fam = LshFamily::sample(8, LshParams::new(6, 2.0), 11);
        let comp = compress(&tokens, &fam);
        assert!(comp.k() < tokens.rows() / 2, "k = {} of n = {}", comp.k(), tokens.rows());
        assert!(comp.approximation_error(&tokens) < 0.05);
    }

    #[test]
    fn tiny_buckets_give_singletons_and_exact_reconstruction() {
        let tokens = clustered_tokens(6, 3, 4, 6, 0.5);
        let fam = LshFamily::sample(6, LshParams::new(6, 1e-4), 13);
        let comp = compress(&tokens, &fam);
        assert_eq!(comp.k(), tokens.rows());
        assert!(comp.reconstruct().approx_eq(&tokens, 1e-6));
        assert_eq!(comp.approximation_error(&tokens), 0.0);
    }

    #[test]
    fn huge_buckets_give_single_cluster() {
        let tokens = clustered_tokens(7, 3, 4, 6, 0.5);
        let fam = LshFamily::sample(6, LshParams::new(6, 1e6), 17);
        let comp = compress(&tokens, &fam);
        assert_eq!(comp.k(), 1);
        assert_eq!(comp.counts, vec![tokens.rows()]);
    }

    #[test]
    fn two_level_reduces_error_over_one_level() {
        let tokens = clustered_tokens(8, 4, 16, 8, 0.3);
        let params = LshParams::new(6, 3.0);
        let fam1 = LshFamily::sample(8, params, 21);
        let fam2 = LshFamily::sample(8, params, 22);
        let one = compress(&tokens, &fam1);
        let two = compress_two_level(&tokens, &fam1, &fam2);
        assert!(
            two.approximation_error(&tokens) <= one.approximation_error(&tokens) + 1e-9,
            "two-level {} should not exceed one-level {}",
            two.approximation_error(&tokens),
            one.approximation_error(&tokens)
        );
    }

    #[test]
    fn concatenated_centroids_stack_k1_then_k2() {
        let tokens = clustered_tokens(9, 2, 8, 4, 0.2);
        let params = LshParams::new(4, 2.0);
        let two = compress_two_level(
            &tokens,
            &LshFamily::sample(4, params, 31),
            &LshFamily::sample(4, params, 32),
        );
        let cat = two.concatenated_centroids();
        assert_eq!(cat.rows(), two.k1() + two.k2());
        assert_eq!(cat.slice_rows(0, two.k1()), two.level1.centroids);
        assert_eq!(cat.slice_rows(two.k1(), cat.rows()), two.level2.centroids);
    }

    #[test]
    fn identical_tokens_collapse_to_one_cluster_with_zero_error() {
        let tokens = Matrix::from_fn(10, 4, |_, c| c as f32 * 0.5);
        let fam = LshFamily::sample(4, LshParams::new(6, 1.0), 41);
        let comp = compress(&tokens, &fam);
        assert_eq!(comp.k(), 1);
        assert_eq!(comp.approximation_error(&tokens), 0.0);
    }

    proptest! {
        /// Two-level residual approximation error never exceeds level-1
        /// error alone: level 2 approximates the residual, and even the
        /// degenerate single-cluster level-2 subtracts the residual mean.
        #[test]
        fn residual_level_never_hurts(seed in 0u64..200) {
            let mut rng = MatrixRng::new(seed);
            let n = 12 + rng.index(20);
            let tokens = rng.normal_matrix(n, 4, 0.0, 1.0);
            let params = LshParams::new(3, 1.5);
            let fam1 = LshFamily::sample(4, params, seed.wrapping_mul(3) + 1);
            let fam2 = LshFamily::sample(4, params, seed.wrapping_mul(5) + 2);
            let one = compress(&tokens, &fam1);
            let two = compress_two_level(&tokens, &fam1, &fam2);
            prop_assert!(two.approximation_error(&tokens)
                <= one.approximation_error(&tokens) + 1e-5);
        }

        /// Extreme (but finite) token magnitudes survive the hash path:
        /// the p-stable projections are signed, and the float→i32 bucket
        /// conversion saturates at the rails instead of wrapping, so
        /// compression keeps its structural invariants all the way to
        /// magnitudes that floor far past the i32 range. (Non-finite
        /// tokens are rejected by `hash_value` with an explicit panic —
        /// pinned in the family tests.)
        #[test]
        fn extreme_token_magnitudes_keep_compression_well_formed(
            seed in 0u64..100,
            exponent in 0i32..16,
            sign in 0u8..2,
        ) {
            let mut rng = MatrixRng::new(seed);
            let n = 4 + rng.index(12);
            let scale = if sign == 1 { -1.0f32 } else { 1.0 } * 10f32.powi(exponent);
            let base = rng.normal_matrix(n, 4, 0.0, 1.0);
            let tokens = Matrix::from_fn(n, 4, |r, c| base.row(r)[c] * scale);
            let fam = LshFamily::sample(4, LshParams::new(3, 1.5), seed + 7);

            let comp = compress(&tokens, &fam);
            prop_assert!(comp.k() >= 1 && comp.k() <= n);
            prop_assert_eq!(comp.counts.iter().sum::<usize>(), n);
            prop_assert_eq!(comp.reconstruct().shape(), tokens.shape());
            // The hash path is deterministic even at the saturation rails.
            prop_assert_eq!(&compress(&tokens, &fam), &comp);
            // Centroids are population means of finite tokens: finite.
            for r in 0..comp.k() {
                for &v in comp.centroids.row(r) {
                    prop_assert!(v.is_finite(), "centroid entry {v} not finite");
                }
            }
        }

        /// Reconstruction always has the original shape and k <= n at both
        /// levels.
        #[test]
        fn shape_and_cardinality_invariants(seed in 0u64..200, n in 1usize..40) {
            let mut rng = MatrixRng::new(seed);
            let tokens = rng.normal_matrix(n, 6, 0.0, 2.0);
            let params = LshParams::new(4, 2.0);
            let two = compress_two_level(
                &tokens,
                &LshFamily::sample(6, params, seed + 100),
                &LshFamily::sample(6, params, seed + 200),
            );
            prop_assert_eq!(two.reconstruct().shape(), tokens.shape());
            prop_assert!(two.k1() <= n && two.k2() <= n);
            prop_assert_eq!(two.len(), n);
        }
    }
}
