//! p-stable locality-sensitive hash families (paper §III-A).

use cta_tensor::{KernelPolicy, Matrix, MatrixRng};

use crate::HashCodes;

/// Hyper-parameters for sampling an [`LshFamily`].
///
/// `hash_length` is the code length `l` (the paper uses `l = 6`);
/// `bucket_width` is the projection interval width `w`, the main knob
/// trading compression ratio against approximation accuracy — larger `w`
/// merges more tokens per cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshParams {
    /// Code length `l` (number of sampled directions).
    pub hash_length: usize,
    /// Bucket width `w` for the floor quantisation.
    pub bucket_width: f32,
}

impl LshParams {
    /// Creates parameters, validating them eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `hash_length == 0` or `bucket_width <= 0`.
    pub fn new(hash_length: usize, bucket_width: f32) -> Self {
        assert!(hash_length > 0, "hash_length must be positive");
        assert!(
            bucket_width > 0.0 && bucket_width.is_finite(),
            "bucket_width must be positive and finite"
        );
        Self { hash_length, bucket_width }
    }

    /// The paper's default code length, `l = 6` (§IV-C).
    pub fn with_paper_length(bucket_width: f32) -> Self {
        Self::new(6, bucket_width)
    }
}

/// A sampled p-stable LSH family.
///
/// Holds the direction matrix `A` (`l × d`, rows drawn from `N(0,1)`), the
/// bias vector `b` (entries drawn from `U[0, w)`) and the bucket width `w`.
/// A `d`-dimensional vector `x` hashes to the `l`-dimensional integer code
///
/// ```text
/// h(x) = floor((A·x + b) / w)        (paper eq. 1)
/// ```
///
/// Vectors whose codes are equal land in the same cluster.
///
/// ```
/// use cta_lsh::{LshFamily, LshParams};
///
/// let fam = LshFamily::sample(4, LshParams::new(6, 1.0), 42);
/// let x = [0.1, 0.2, 0.3, 0.4];
/// // Hash codes are deterministic for a given family.
/// assert_eq!(fam.hash_code(&x), fam.hash_code(&x));
/// ```
#[derive(Debug, Clone)]
pub struct LshFamily {
    /// `l × d` direction matrix; row `i` is direction `aᵢ`.
    a: Matrix,
    /// `l` biases.
    b: Vec<f32>,
    /// Bucket width.
    w: f32,
}

impl LshFamily {
    /// Samples a family for `dim`-dimensional inputs from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn sample(dim: usize, params: LshParams, seed: u64) -> Self {
        assert!(dim > 0, "input dimension must be positive");
        let mut rng = MatrixRng::new(seed);
        Self::sample_with(dim, params, &mut rng)
    }

    /// Samples a family using an existing random stream (so experiments can
    /// derive LSH₀, LSH₁, LSH₂ from one experiment seed).
    pub fn sample_with(dim: usize, params: LshParams, rng: &mut MatrixRng) -> Self {
        assert!(dim > 0, "input dimension must be positive");
        let a = rng.normal_matrix(params.hash_length, dim, 0.0, 1.0);
        let b = (0..params.hash_length).map(|_| rng.uniform(0.0, params.bucket_width)).collect();
        Self { a, b, w: params.bucket_width }
    }

    /// Builds a family from explicit parameters (used by tests and by the
    /// hardware simulator, which loads `A`, `b`, `1/w` from weight memory).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != a.rows()` or `w <= 0`.
    pub fn from_parts(a: Matrix, b: Vec<f32>, w: f32) -> Self {
        assert_eq!(b.len(), a.rows(), "bias length must equal the number of directions");
        assert!(w > 0.0 && w.is_finite(), "bucket width must be positive and finite");
        Self { a, b, w }
    }

    /// Code length `l`.
    pub fn hash_length(&self) -> usize {
        self.a.rows()
    }

    /// Input dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// Bucket width `w`.
    pub fn bucket_width(&self) -> f32 {
        self.w
    }

    /// The direction matrix `A` (`l × d`).
    pub fn directions(&self) -> &Matrix {
        &self.a
    }

    /// The bias vector `b`.
    pub fn biases(&self) -> &[f32] {
        &self.b
    }

    /// Hashes a single vector to its `l`-dimensional integer code.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn hash_code(&self, x: &[f32]) -> Vec<i32> {
        assert_eq!(x.len(), self.dim(), "vector dimension mismatch: {} vs {}", x.len(), self.dim());
        (0..self.hash_length()).map(|i| self.hash_value(i, x)).collect()
    }

    /// The `i`-th component of the hash code: `floor((⟨aᵢ,x⟩ + bᵢ)/w)`.
    ///
    /// Exposed separately because the hardware streams hash values one
    /// direction at a time out of the systolic array (§IV-B(1)).
    ///
    /// Bucket indices are `i32`. The float→int conversion *saturates* at
    /// the `i32` rails rather than wrapping, so a finite but astronomically
    /// large projection maps to `i32::MAX`/`i32::MIN` — distant outliers
    /// can only collide with each other at the rails, never alias back
    /// into interior buckets. On the hardware-representative path this is
    /// unreachable: Q6.7 tokens and Q3.9 LSH parameters bound `|proj/w|`
    /// far below 2³¹. Non-finite projections (NaN/inf tokens) have no
    /// bucket semantics at all — `NaN as i32` would silently produce
    /// bucket 0 and corrupt the cluster tables — so they are rejected
    /// eagerly here.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.hash_length()`, the dimension mismatches, or
    /// the projection is not finite (the token vector contains NaN/inf or
    /// overflows the dot product).
    pub fn hash_value(&self, i: usize, x: &[f32]) -> i32 {
        let proj = Matrix::dot(self.a.row(i), x) + self.b[i];
        assert!(
            proj.is_finite(),
            "LSH projection for direction {i} is not finite ({proj}): \
             token vector contains NaN/inf or overflows the dot product"
        );
        bucket_of(proj, self.w)
    }

    /// Hashes every row of a token matrix (paper eq. 1, `H = ⌊(A·Xᵀ+B)/w⌋`),
    /// returning one code per token, under the process-wide
    /// [`KernelPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens.cols() != self.dim()`.
    pub fn hash_matrix(&self, tokens: &Matrix) -> HashCodes {
        self.hash_matrix_with(tokens, KernelPolicy::current())
    }

    /// [`LshFamily::hash_matrix`] under an explicit [`KernelPolicy`].
    ///
    /// The scalar path hashes token by token, direction by direction;
    /// the blocked/SIMD paths batch all projections into one
    /// `X · Aᵀ` product — bitwise identical, because each projection is
    /// the same sequential-`d` dot product (f32 multiplication commutes
    /// bitwise) with the bias added afterwards in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.cols() != self.dim()`, or any projection is
    /// not finite.
    pub fn hash_matrix_with(&self, tokens: &Matrix, policy: KernelPolicy) -> HashCodes {
        assert_eq!(
            tokens.cols(),
            self.dim(),
            "token dimension mismatch: {} vs {}",
            tokens.cols(),
            self.dim()
        );
        let n = tokens.rows();
        let l = self.hash_length();
        let mut values = Vec::with_capacity(n * l);
        match policy {
            KernelPolicy::Scalar => {
                for t in 0..n {
                    let row = tokens.row(t);
                    for i in 0..l {
                        values.push(self.hash_value(i, row));
                    }
                }
            }
            KernelPolicy::Blocked | KernelPolicy::Simd => {
                let projections = tokens.matmul_transpose_b_with(&self.a, policy);
                for t in 0..n {
                    let proj_row = projections.row(t);
                    for (i, (&p, &bias)) in proj_row.iter().zip(&self.b).enumerate() {
                        let proj = p + bias;
                        assert!(
                            proj.is_finite(),
                            "LSH projection for direction {i} is not finite ({proj}): \
                             token vector contains NaN/inf or overflows the dot product"
                        );
                        values.push(bucket_of(proj, self.w));
                    }
                }
            }
        }
        HashCodes::from_flat(n, l, values)
    }
}

/// `⌊proj / w⌋` as a saturating `i32` bucket index.
///
/// The divide and floor happen in **f64**: above 2²⁴ the f32 quotient
/// has a spacing coarser than 1, so an f32 divide can round across an
/// integer boundary and mis-bucket a large-magnitude projection
/// relative to the documented `⌊(A·Xᵀ+B)/w⌋`. Both operands are exact
/// in f64, and every integer a finite f64 quotient can floor to is
/// representable, so the f64 result is the true floor of the rounded
/// quotient. `as` on float→int saturates (never wraps), so astronomic
/// quotients pin at the `i32` rails.
fn bucket_of(proj: f32, w: f32) -> i32 {
    (f64::from(proj) / f64::from(w)).floor() as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn family() -> LshFamily {
        LshFamily::sample(8, LshParams::new(6, 2.0), 123)
    }

    #[test]
    fn params_validate() {
        let p = LshParams::with_paper_length(1.5);
        assert_eq!(p.hash_length, 6);
        assert_eq!(p.bucket_width, 1.5);
    }

    #[test]
    #[should_panic(expected = "bucket_width")]
    fn params_reject_zero_width() {
        let _ = LshParams::new(6, 0.0);
    }

    #[test]
    fn identical_vectors_share_codes() {
        let fam = family();
        let x = vec![0.5; 8];
        assert_eq!(fam.hash_code(&x), fam.hash_code(&x));
    }

    #[test]
    fn hash_matrix_rows_match_hash_code() {
        let fam = family();
        let tokens = cta_tensor::standard_normal_matrix(7, 5, 8);
        let codes = fam.hash_matrix(&tokens);
        for t in 0..5 {
            assert_eq!(codes.code(t), fam.hash_code(tokens.row(t)).as_slice());
        }
    }

    #[test]
    fn bias_shifts_bucket_boundaries() {
        // With w=1, b=0.5 and a single direction (1.0), x=0.6 projects to
        // 1.1 -> bucket 1, while x=0.4 projects to 0.9 -> bucket 0.
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.5], 1.0);
        assert_eq!(fam.hash_code(&[0.6]), vec![1]);
        assert_eq!(fam.hash_code(&[0.4]), vec![0]);
    }

    #[test]
    fn negative_projections_floor_downwards() {
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.0], 1.0);
        assert_eq!(fam.hash_code(&[-0.5]), vec![-1]);
        assert_eq!(fam.hash_code(&[-1.0]), vec![-1]);
        assert_eq!(fam.hash_code(&[-1.5]), vec![-2]);
    }

    #[test]
    fn wider_buckets_collide_more() {
        // Two nearby points: with a tiny bucket they separate, with a huge
        // bucket they collide (statistically certain for these magnitudes).
        let narrow = LshFamily::sample(4, LshParams::new(8, 0.001), 9);
        let wide = LshFamily::sample(4, LshParams::new(8, 1000.0), 9);
        let x = [0.1, 0.2, 0.3, 0.4];
        let y = [0.11, 0.21, 0.29, 0.41];
        assert_ne!(narrow.hash_code(&x), narrow.hash_code(&y));
        assert_eq!(wide.hash_code(&x), wide.hash_code(&y));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn hash_code_rejects_wrong_dim() {
        let _ = family().hash_code(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn nan_tokens_rejected_not_hashed_to_bucket_zero() {
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.0], 1.0);
        let _ = fam.hash_code(&[f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn infinite_tokens_rejected() {
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.0], 1.0);
        let _ = fam.hash_code(&[f32::INFINITY]);
    }

    #[test]
    fn large_magnitude_projections_bucket_exactly_in_f64() {
        // Regression for the f32 divide+floor: with w = 1 − 2⁻²⁴ the
        // true quotient of a 2²⁴ projection is ≈ 16777217.00000006.
        // f32 spacing above 2²⁴ is 2, so an f32 divide rounds that to
        // 16777218 — one bucket too far. The f64 divide keeps it exact.
        let w = 1.0 - 2f32.powi(-24);
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.0], w);
        assert_eq!(fam.hash_code(&[16_777_216.0]), vec![16_777_217]);
        // Below zero the true quotient ≈ −16777217.00000006 floors one
        // further down — the exact answer, pinned for symmetry.
        assert_eq!(fam.hash_code(&[-16_777_216.0]), vec![-16_777_218]);
    }

    #[test]
    fn hash_matrix_policies_are_bitwise_identical() {
        let fam = family();
        let tokens = cta_tensor::standard_normal_matrix(7, 37, 8);
        let scalar = fam.hash_matrix_with(&tokens, KernelPolicy::Scalar);
        for policy in [KernelPolicy::Blocked, KernelPolicy::Simd] {
            assert_eq!(fam.hash_matrix_with(&tokens, policy), scalar, "{policy:?}");
        }
    }

    #[test]
    fn huge_finite_projections_saturate_at_the_i32_rails() {
        // |proj/w| far beyond 2^31: the conversion must pin at the rails,
        // not wrap into an interior bucket.
        let fam = LshFamily::from_parts(Matrix::from_rows(&[&[1.0]]), vec![0.0], 1.0);
        assert_eq!(fam.hash_code(&[1e38]), vec![i32::MAX]);
        assert_eq!(fam.hash_code(&[-1e38]), vec![i32::MIN]);
        // Interior values are still the exact floor.
        assert_eq!(fam.hash_code(&[2.5]), vec![2]);
        assert_eq!(fam.hash_code(&[-2.5]), vec![-3]);
    }

    proptest! {
        /// LSH locality: a point always collides with itself, and moving a
        /// point by less than w/(2·‖a‖·√d)... is hard to bound exactly, so
        /// we check the weaker structural property that collision is
        /// translation-covariant along bucket multiples of each direction.
        #[test]
        fn codes_are_deterministic(seed in 0u64..500) {
            let fam = LshFamily::sample(6, LshParams::new(4, 1.0), seed);
            let x: Vec<f32> = (0..6).map(|i| (i as f32) * 0.37 - 1.0).collect();
            prop_assert_eq!(fam.hash_code(&x), fam.hash_code(&x));
        }

        /// Closer pairs collide at least as often as far pairs on average —
        /// the defining property of a locality-sensitive family. Checked in
        /// aggregate over the family seed.
        #[test]
        fn locality_in_aggregate(base_seed in 0u64..20) {
            let mut near_hits = 0usize;
            let mut far_hits = 0usize;
            let trials = 40;
            for s in 0..trials {
                let fam = LshFamily::sample(4, LshParams::new(2, 4.0), base_seed * 1000 + s);
                let x = [0.0f32, 0.0, 0.0, 0.0];
                let near = [0.1f32, -0.1, 0.1, -0.1];
                let far = [3.0f32, -3.0, 3.0, -3.0];
                if fam.hash_code(&x) == fam.hash_code(&near) { near_hits += 1; }
                if fam.hash_code(&x) == fam.hash_code(&far) { far_hits += 1; }
            }
            prop_assert!(near_hits >= far_hits,
                "near collided {near_hits}, far collided {far_hits}");
        }
    }
}
