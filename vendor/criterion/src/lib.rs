//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the benchmark-harness surface its `benches/` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints the median ns/iteration. There is no
//! statistical analysis, HTML report, or baseline comparison — enough to
//! eyeball relative cost and keep `cargo bench` compiling and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark body repeatedly and times it.
pub struct Bencher {
    samples: usize,
    stats: Option<BenchStats>,
}

impl Bencher {
    /// Times `f`, choosing an iteration count so one sample takes ≳1 ms,
    /// and records `self.samples` samples. Like upstream criterion, the
    /// call returns `()`; the harness reads the recorded stats afterwards.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.stats = Some(BenchStats { median_ns: per_iter_ns[per_iter_ns.len() / 2], iters });
    }
}

/// Summary of one benchmark's timing.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Iterations per timed sample.
    pub iters: u64,
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { name: name.to_string(), samples: DEFAULT_SAMPLES }
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.samples = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.samples, f);
        self
    }

    /// Runs one parameterised benchmark; the input is passed by reference
    /// to the body.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (report separation only).
    pub fn finish(self) {
        println!();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, stats: None };
    print!("{name:<48}");
    let t0 = Instant::now();
    f(&mut b);
    let total = t0.elapsed();
    match b.stats {
        Some(s) => println!(
            " {:>12.1} ns/iter  ({:>10.3} ms total)",
            s.median_ns,
            total.as_secs_f64() * 1e3
        ),
        None => println!(" done in {:>10.3} ms", total.as_secs_f64() * 1e3),
    }
}

/// Declares a function running the listed benchmarks, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_median() {
        let mut b = Bencher { samples: 3, stats: None };
        b.iter(|| black_box(1u64.wrapping_add(2)));
        let stats = b.stats.expect("iter records stats");
        assert!(stats.median_ns >= 0.0);
        assert!(stats.iters >= 1);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("one", |b| {
            b.iter(|| black_box(3 * 7));
        });
        g.bench_with_input(BenchmarkId::new("two", 5), &5usize, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        g.finish();
        c.bench_function("top", |b| {
            b.iter(|| black_box(1 + 1));
        });
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("cta", 512).to_string(), "cta/512");
    }
}
