//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the subset of proptest it actually uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `pat in strategy` bindings over numeric ranges (`lo..hi`,
//!   `lo..=hi`), tuples of strategies, and [`Strategy::prop_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: inputs are drawn from a fixed-seed
//! deterministic generator (no `PROPTEST_*` environment handling), and
//! failing cases are **not shrunk** — the panic message reports the raw
//! failing input via the normal assertion text instead. Test *outcomes*
//! are reproducible run to run, which suits this repo's determinism
//! policy.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256\*\* source the runner hands to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the case generator; `case` indexes the test case so every
    /// case of a property sees a fresh stream.
    pub fn new(case: u64) -> Self {
        let mut x = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-property configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default; heavyweight properties in this workspace
        // lower it per-module via `with_cases`.
        Self { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::new(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Property-scoped assertion; in this stand-in it is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-scoped equality assertion (`assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-scoped inequality assertion (`assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(0);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(1usize..40), &mut rng);
            assert!((1..40).contains(&v));
            let f = crate::Strategy::generate(&(-15.0f32..15.0), &mut rng);
            assert!((-15.0..15.0).contains(&f));
            let i = crate::Strategy::generate(&(-4096i64..=4095), &mut rng);
            assert!((-4096..=4095).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let gen = |case| {
            let mut rng = crate::TestRng::new(case);
            crate::Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end, including tuples, map and
        /// trailing commas.
        fn macro_round_trip(
            (a, b) in (1usize..10, 1usize..10).prop_map(|(x, y)| (x, x + y)),
            c in 0.0f64..1.0,
        ) {
            prop_assert!(b > a);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a, b - (b - a));
            prop_assert_ne!(b, 0);
        }
    }
}
