//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the *exact* `rand` surface it consumes (see `cta-tensor`'s
//! `MatrixRng`): [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`], and
//! [`distributions::Distribution`]. The generator is xoshiro256\*\*
//! seeded through SplitMix64 — deterministic across runs and platforms,
//! which is all the workspace requires (every experiment seeds its own
//! stream; no code depends on upstream `StdRng`'s exact output).
//!
//! Statistical caveat: integer ranges use a modulo reduction, whose bias
//! is negligible for the small ranges used here but would matter for
//! ranges approaching `2^64`.

/// Low-level generator interface: a source of `u64`s (and narrower
/// integers derived from them).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers over their full range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = rng.gen();
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The named generators `rand` exposes; only [`StdRng`](rngs::StdRng) is
/// provided.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stand-in for upstream's
    /// ChaCha-based `StdRng`; same API, different — but still seeded and
    /// portable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution sampling, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A sampleable distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` for floats, full range for
    /// integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! std_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 explicit mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 explicit mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.gen_range(0..7usize) < 7);
            let v = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&v));
            let f = rng.gen_range(2.0f32..5.0);
            assert!((2.0..5.0).contains(&f));
            let i = rng.gen_range(-4096i64..=4095);
            assert!((-4096..=4095).contains(&i));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5usize);
    }
}
